//! Property tests for the simulation engine's core invariants.

use flash_simcore::stats::Histogram;
use flash_simcore::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order regardless of insertion
    /// order, and FIFO within a timestamp.
    #[test]
    fn event_queue_total_order(delays in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, d) in delays.iter().enumerate() {
            q.schedule_at(SimTime(*d), i);
        }
        let mut last_time = 0;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = q.pop() {
            prop_assert!(t.as_nanos() >= last_time);
            if t.as_nanos() == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(seq > prev, "FIFO violated within an instant");
                }
            } else {
                last_time = t.as_nanos();
            }
            last_seq_at_time = Some(seq);
            prop_assert_eq!(q.now(), t);
        }
        prop_assert!(q.is_empty());
    }

    /// The clock never runs backwards across interleaved schedule/pop.
    #[test]
    fn clock_is_monotone(ops in proptest::collection::vec(0u64..500, 1..100)) {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for d in ops {
            q.schedule_in(d, ());
            if d % 3 == 0 {
                if let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Histogram invariants: count, min ≤ mean ≤ max, quantile monotone,
    /// and every quantile within [min, 2*max] (log-bucket slack).
    #[test]
    fn histogram_moments(samples in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let min = *samples.iter().min().expect("nonempty");
        let max = *samples.iter().max().expect("nonempty");
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        prop_assert!(h.mean() >= min as f64 && h.mean() <= max as f64);
        let mut prev = 0;
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prop_assert!(v <= max.max(1) * 2, "q{q} = {v} beyond 2*max {max}");
            prev = v;
        }
    }
}
