//! Discrete-event simulation engine used by the Flash reproduction.
//!
//! This crate is deliberately independent of the web-server domain: it
//! provides simulated time ([`SimTime`]), a deterministic event queue
//! ([`event::EventQueue`]), a seedable random-number wrapper
//! ([`rng::SimRng`]), and statistics collectors ([`stats`]).
//!
//! The simulated OS (`flash-simos`) and the experiment drivers
//! (`flash-experiments`) build on these primitives. Everything is
//! deterministic given a seed, which is what lets the integration tests
//! assert the qualitative shapes of the paper's figures.

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use time::SimTime;
