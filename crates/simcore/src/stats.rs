//! Statistics collectors for simulation runs.
//!
//! Three collectors cover everything the experiments report:
//! [`Counter`] for totals, [`Histogram`] for latency-style distributions,
//! and [`TimeWeighted`] for quantities that have a value over time
//! (queue depth, cache occupancy).

use crate::time::{Nanos, SimTime, SEC};

/// A monotonically increasing event/byte counter with a rate helper.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    total: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Average rate per second over `elapsed` simulated time.
    pub fn rate_per_sec(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.total as f64 * SEC as f64 / elapsed as f64
    }

    /// Total interpreted as bytes, expressed in megabits per second.
    pub fn megabits_per_sec(&self, elapsed: Nanos) -> f64 {
        self.rate_per_sec(elapsed) * 8.0 / 1_000_000.0
    }
}

/// Log-bucketed histogram for durations (or any u64 quantity).
///
/// Buckets are powers of two, which is plenty of resolution for the
/// latency distributions the experiments report and keeps the collector
/// allocation-free after construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the q-quantile (q in `[0,1]`).
    ///
    /// Log-bucketing means this is an approximation with at most 2x error,
    /// which is fine for the order-of-magnitude latency reporting the
    /// experiments do.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if idx == 0 { 0 } else { 1u64 << idx };
            }
        }
        self.max
    }
}

/// Tracks the time-weighted average of a piecewise-constant quantity.
///
/// Call [`TimeWeighted::set`] whenever the value changes; the collector
/// integrates value × duration between updates.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_update: SimTime,
    integral: f64,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates a gauge starting at zero at t = 0.
    pub fn new() -> Self {
        TimeWeighted {
            value: 0.0,
            last_update: SimTime::ZERO,
            integral: 0.0,
            peak: 0.0,
        }
    }

    /// Sets the value at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_update) as f64;
        self.integral += self.value * dt;
        self.value = value;
        self.last_update = now;
        self.peak = self.peak.max(value);
    }

    /// Adjusts the value by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Peak value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[0, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.as_nanos() as f64;
        if total == 0.0 {
            return self.value;
        }
        let pending = self.value * now.since(self.last_update) as f64;
        (self.integral + pending) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        c.add(1000);
        assert_eq!(c.total(), 1000);
        // 1000 events over 2 seconds = 500/s.
        assert!((c.rate_per_sec(2 * SEC) - 500.0).abs() < 1e-9);
        // 1000 bytes over 1 second = 0.008 Mb/s.
        assert!((c.megabits_per_sec(SEC) - 0.008).abs() < 1e-9);
        assert_eq!(c.rate_per_sec(0), 0.0);
    }

    #[test]
    fn histogram_basic_moments() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 3.75).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!((256..=1024).contains(&q50), "q50={q50}");
    }

    #[test]
    fn histogram_empty_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new();
        // Value 2 for 10ns, then 4 for 10ns => average 3 at t=20.
        g.set(SimTime(0), 2.0);
        g.set(SimTime(10), 4.0);
        assert!((g.average(SimTime(20)) - 3.0).abs() < 1e-9);
        assert_eq!(g.peak(), 4.0);
        assert_eq!(g.current(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut g = TimeWeighted::new();
        g.add(SimTime(0), 1.0);
        g.add(SimTime(10), 1.0);
        g.add(SimTime(20), -2.0);
        assert_eq!(g.current(), 0.0);
        // 1 for 10ns, 2 for 10ns, 0 for 10ns => 1.0 average at t=30.
        assert!((g.average(SimTime(30)) - 1.0).abs() < 1e-9);
    }
}
