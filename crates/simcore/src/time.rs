//! Simulated time.
//!
//! Time is a monotone count of nanoseconds since simulation start. A newtype
//! keeps it from being confused with byte counts or identifiers, and gives a
//! single place for unit conversions used throughout the workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds as a plain integer, used for durations and cost constants.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICRO: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLI: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub Nanos);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * SEC)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MILLI)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * MICRO)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> Nanos {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> Nanos {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<Nanos> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Nanos) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<Nanos> for SimTime {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Nanos;

    fn sub(self, rhs: SimTime) -> Nanos {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= MILLI {
            write!(f, "{:.3}ms", self.0 as f64 / MILLI as f64)
        } else if self.0 >= MICRO {
            write!(f, "{:.3}us", self.0 as f64 / MICRO as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Converts a byte count and a per-byte cost into a duration.
///
/// Used for copy, checksum and wire-transfer costs where the model charges a
/// constant number of nanoseconds per byte.
pub fn per_byte(bytes: u64, ns_per_byte: f64) -> Nanos {
    (bytes as f64 * ns_per_byte).round() as Nanos
}

/// Duration to move `bytes` over a link of `bits_per_sec` capacity.
pub fn wire_time(bytes: u64, bits_per_sec: u64) -> Nanos {
    if bits_per_sec == 0 {
        return Nanos::MAX / 4;
    }
    ((bytes as u128 * 8 * SEC as u128) / bits_per_sec as u128) as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2 * SEC);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3 * MILLI);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7 * MICRO);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_is_saturating_on_subtraction() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b - a, 4 * MICRO);
        assert_eq!(a - b, 0);
        assert_eq!(a.since(b), 0);
        assert_eq!(b.since(a), 4 * MICRO);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 10;
        t += 5;
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn per_byte_costs() {
        assert_eq!(per_byte(1000, 30.0), 30_000);
        assert_eq!(per_byte(0, 30.0), 0);
        // Fractional per-byte costs round to the nearest nanosecond.
        assert_eq!(per_byte(3, 0.4), 1);
    }

    #[test]
    fn wire_time_matches_link_rate() {
        // 100 Mb/s moves 12.5 MB per second.
        let t = wire_time(12_500_000, 100_000_000);
        assert_eq!(t, SEC);
        // Zero-rate links never complete but must not panic or overflow.
        assert!(wire_time(1, 0) > SEC * 1000);
    }
}
