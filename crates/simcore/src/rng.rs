//! Deterministic randomness for simulations.
//!
//! Wraps a fixed PRNG so every component draws from an explicitly seeded
//! stream. All experiment drivers take a seed; re-running with the same seed
//! reproduces the run exactly.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable random stream used by all simulation components.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream (for a sub-component) from this
    /// stream. The child is a function of the parent's state, so a single
    /// top-level seed still determines everything.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        Uniform::new(lo, hi).sample(&mut self.inner)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF sampling; `1 - unit()` avoids ln(0).
        -mean * (1.0 - self.unit()).ln()
    }

    /// Pareto-distributed value with scale `xm` and shape `alpha`.
    ///
    /// Used for heavy-tailed file sizes (web content is famously
    /// heavy-tailed; see Crovella & Bestavros, SIGMETRICS'96, cited by the
    /// paper).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        xm / (1.0 - self.unit()).powf(1.0 / alpha)
    }

    /// Log-normal-ish body sampler: exp of a normal approximated by the sum
    /// of uniforms (Irwin–Hall with 12 terms has unit variance).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        let normal: f64 = (0..12).map(|_| self.unit()).sum::<f64>() - 6.0;
        (mu + sigma * normal).exp()
    }

    /// Access to the underlying `rand` RNG for distributions not wrapped
    /// here.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.uniform(0, 1000), b.uniform(0, 1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.uniform(0, 1000) == b.uniform(0, 1000));
        assert!(same.count() < 8);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::new(7).fork();
        let mut b = SimRng::new(7).fork();
        assert_eq!(a.uniform(0, u64::MAX - 1), b.uniform(0, u64::MAX - 1));
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = SimRng::new(9);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut r = SimRng::new(11);
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v = r.pareto(1.0, 1.2);
            assert!(v >= 1.0);
            max = max.max(v);
        }
        // With alpha=1.2 over 10k samples, the max should be far into the
        // tail — orders of magnitude above the scale parameter.
        assert!(max > 50.0, "max {max}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }
}
