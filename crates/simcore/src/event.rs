//! Deterministic future-event queue.
//!
//! A classic discrete-event simulation calendar: events are popped in
//! non-decreasing time order, and events scheduled for the same instant are
//! popped in insertion order (FIFO). The tie-break matters — it makes whole
//! simulations reproducible bit-for-bit for a given seed, which the
//! integration tests rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Nanos, SimTime};

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event calendar ordered by time, FIFO within an instant.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress/fuel measure).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; scheduling into the past would silently
    /// corrupt causality, which is a bug in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `delay` nanoseconds from now.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        q.schedule_in(7, ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(7));
        assert_eq!(q.now(), SimTime(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(10, "first");
        q.pop().unwrap();
        q.schedule_in(10, "second");
        assert_eq!(q.peek_time(), Some(SimTime(20)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop().unwrap();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(1, ());
        q.schedule_in(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
