//! One Criterion bench per paper figure, each running the corresponding
//! experiment driver at `Scale::Quick`. The measured quantity is the wall
//! time to simulate the experiment; the *scientific* outputs (the series
//! themselves) are produced by `cargo run --release --example
//! reproduce_figures` and archived in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion, SamplingMode};
use std::hint::black_box;
use std::time::Duration;

use flash_experiments::{ablation, breakdown, dataset_sweep, single_file, trace_bars, wan, Scale};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    // Each iteration simulates a full (quick-scale) experiment — seconds
    // of wall time — so sample sparsely and flat.
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));

    g.bench_function("fig06_single_file_solaris", |b| {
        b.iter(|| black_box(single_file::fig06(Scale::Quick)))
    });
    g.bench_function("fig07_single_file_freebsd", |b| {
        b.iter(|| black_box(single_file::fig07(Scale::Quick)))
    });
    g.bench_function("fig08_rice_traces", |b| {
        b.iter(|| black_box(trace_bars::fig08(Scale::Quick)))
    });
    g.bench_function("fig09_dataset_sweep_freebsd", |b| {
        b.iter(|| black_box(dataset_sweep::fig09(Scale::Quick)))
    });
    g.bench_function("fig10_dataset_sweep_solaris", |b| {
        b.iter(|| black_box(dataset_sweep::fig10(Scale::Quick)))
    });
    g.bench_function("fig11_optimization_breakdown", |b| {
        b.iter(|| black_box(breakdown::fig11(Scale::Quick)))
    });
    g.bench_function("fig12_wan_clients", |b| {
        b.iter(|| black_box(wan::fig12(Scale::Quick)))
    });
    g.bench_function("ablations", |b| {
        b.iter(|| black_box(ablation::all(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
