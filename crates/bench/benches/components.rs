//! Component microbenches: the hot paths of the substrate crates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::rc::Rc;

use flash_core::caches::{LruCache, MappedCache};
use flash_core::{deploy, ServerConfig, Site};
use flash_http::request::{ParseStatus, RequestParser};
use flash_http::response::{ResponseHeader, Status};
use flash_net::timer::TimerWheel;
use flash_simcore::{EventQueue, SimRng, SimTime};
use flash_simos::pagecache::PageCache;
use flash_simos::{FileId, MachineConfig, Simulation};
use flash_workload::{attach_fleet, ClientFleet, ConnMode, Trace, TraceConfig, Zipf};

fn bench_http(c: &mut Criterion) {
    let mut g = c.benchmark_group("http");
    let req = b"GET /~user13/d2/f97.html HTTP/1.1\r\nHost: cs.rice.edu\r\nConnection: keep-alive\r\nUser-Agent: bench\r\n\r\n";
    g.throughput(Throughput::Bytes(req.len() as u64));
    g.bench_function("parse_request", |b| {
        b.iter(|| {
            let mut p = RequestParser::new();
            match p.feed(black_box(req)) {
                ParseStatus::Done(r) => black_box(r),
                other => panic!("{other:?}"),
            }
        })
    });
    g.bench_function("build_padded_header", |b| {
        b.iter(|| {
            black_box(ResponseHeader::build(
                Status::Ok,
                "text/html",
                black_box(10_240),
                true,
                true,
            ))
        })
    });
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("caches");
    g.bench_function("lru_hit", |b| {
        let mut lru = LruCache::new(1024);
        for i in 0..1024u64 {
            lru.insert(i, i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 37) % 1024;
            black_box(lru.get(&i).copied())
        })
    });
    g.bench_function("lru_insert_evict", |b| {
        let mut lru = LruCache::new(512);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(lru.insert(i, i))
        })
    });
    g.bench_function("mapped_cache_map", |b| {
        let mut mc = MappedCache::new(32 * 1024 * 1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mc.map(FileId((i % 4096) as u32 + 1), 0, 8 * 1024))
        })
    });
    g.bench_function("page_cache_touch", |b| {
        let mut pc = PageCache::new(16 * 1024);
        for p in 0..16 * 1024u64 {
            pc.insert((FileId(1), p));
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 613) % (16 * 1024);
            black_box(pc.touch((FileId(1), p)))
        })
    });
    g.finish();
}

fn bench_timer_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("timer_wheel");
    // The shard loop's hot pattern: re-arm a connection's deadline on
    // forward progress. Must stay O(1) regardless of how many other
    // timers are parked.
    g.bench_function("rearm_among_10k_armed", |b| {
        let mut w = TimerWheel::new(std::time::Duration::from_millis(100));
        let now = std::time::Instant::now();
        for k in 0..10_000u64 {
            w.arm(k, now + std::time::Duration::from_secs(30));
        }
        let mut t = 0u32;
        b.iter(|| {
            t += 1;
            w.arm(
                5,
                now + std::time::Duration::from_secs(30)
                    + std::time::Duration::from_millis(u64::from(t % 4096)),
            );
            black_box(w.pending())
        })
    });
    // Expiry with nothing due: the per-wait cost of carrying 10k idle
    // connections' deadlines — the O(conns)-sweep replacement's win.
    g.bench_function("expire_none_due_10k_armed", |b| {
        let mut w = TimerWheel::new(std::time::Duration::from_millis(100));
        let now = std::time::Instant::now();
        for k in 0..10_000u64 {
            w.arm(k, now + std::time::Duration::from_secs(30));
        }
        let mut out = Vec::new();
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            w.expire(now + std::time::Duration::from_micros(step), &mut out);
            black_box(out.len())
        })
    });
    g.finish();
}

fn bench_simcore(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore");
    g.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        b.iter(|| {
            // Relative scheduling keeps every event in the future no
            // matter how far the pops advanced the clock.
            for i in 0..64 {
                q.schedule_in(1 + i * 7, i);
            }
            for _ in 0..64 {
                black_box(q.pop());
            }
        })
    });
    g.bench_function("zipf_sample", |b| {
        let z = Zipf::new(20_000, 0.78);
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    let cfg = TraceConfig {
        dataset_bytes: 16 * 1024 * 1024,
        n_requests: 20_000,
        ..TraceConfig::ece()
    };
    g.bench_function("trace_generate_16mb", |b| {
        b.iter(|| black_box(Trace::generate(&cfg, 3)))
    });
    let base = Trace::generate(&cfg, 3);
    g.bench_function("trace_truncate", |b| {
        b.iter(|| black_box(base.truncate_to_dataset(8 * 1024 * 1024)))
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.sampling_mode(criterion::SamplingMode::Flat);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    // End-to-end: one simulated second of Flash under 16 LAN clients on
    // a small cached site — the cost of simulating, not of serving.
    g.bench_function("flash_one_simulated_second", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(MachineConfig::freebsd());
            let trace = Rc::new(Trace::single_file(8 * 1024));
            let site = Site::build(&mut sim.kernel, &trace.specs);
            let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
            attach_fleet(
                &mut sim,
                server.listen,
                trace,
                &ClientFleet {
                    clients: 16,
                    mode: ConnMode::PerRequest,
                    ..ClientFleet::default()
                },
            );
            sim.run_until(SimTime::from_secs(1));
            black_box(sim.kernel.metrics.requests.total())
        })
    });
    g.finish();
}

criterion_group!(
    components,
    bench_http,
    bench_caches,
    bench_timer_wheel,
    bench_simcore,
    bench_workload,
    bench_simulation
);
criterion_main!(components);
