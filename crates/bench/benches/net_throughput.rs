//! Concurrent-client throughput of the real servers over loopback:
//! sharded AMPED (1 shard vs. N shards) against MT, so the multicore
//! speedup is measured rather than asserted — plus an accept-rate
//! scenario (short-lived connections, the single acceptor thread vs.
//! per-shard `SO_REUSEPORT` listeners), a large-file scenario pitting
//! the `sendfile(2)` tier against forcing the same body through the
//! in-memory cache + `writev` tier, a send-plane scenario (ranged 206
//! windows over the sendfile tier and precompressed `.gz` variants out
//! of the content cache), a dynamic-tier scenario (small worker
//! responses streamed back as chunked frames), and a
//! many-idle-connections scenario (64 active among 1024 registered)
//! pitting the edge-triggered `epoll` backend's O(ready fds) waits
//! against the `poll` backend's O(watched fds) scans.
//!
//! Run with `cargo bench -p flash-bench --bench net_throughput`; under
//! `cargo test` each configuration runs once as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use flash_net::event::{ensure_fd_limit, resolve, BackendChoice, BackendKind};
use flash_net::{
    AcceptMode, AcceptModeKind, BenchReport, MtServer, NetConfig, Server, ServerStats,
};

const CLIENTS: usize = 8;
const REQS_PER_CLIENT: usize = 50;

/// p50/p99 request latency in milliseconds, read off the server's own
/// log-bucketed histogram rather than client-side sampling — the same
/// numbers `/.flash/metrics` exports.
fn latency_percentiles(stats: &ServerStats) -> (Option<f64>, Option<f64>) {
    let s = stats.request_latency().summary();
    if s.count == 0 {
        return (None, None);
    }
    (
        Some(s.p50_nanos as f64 / 1e6),
        Some(s.p99_nanos as f64 / 1e6),
    )
}

/// Builds a docroot of a few small cacheable files.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for i in 0..8 {
        std::fs::write(
            dir.join(format!("f{i}.html")),
            vec![b'a' + i as u8; 2048 + 512 * i],
        )
        .unwrap();
    }
    dir
}

/// Reads one keep-alive response off `reader` — status asserted 200
/// or 206 (the range scenario streams windows), headers scanned for
/// `Content-Length`, body read into `body` — and returns the body
/// length. The one place bench clients parse HTTP.
fn read_keepalive_response(reader: &mut impl std::io::BufRead, body: &mut Vec<u8>) -> usize {
    let mut len: usize = 0;
    let mut line = String::new();
    let mut first = true;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("read header line");
        if first {
            assert!(
                line.starts_with("HTTP/1.1 200 OK")
                    || line.starts_with("HTTP/1.1 206 Partial Content"),
                "{line}"
            );
            first = false;
        }
        if let Some(v) = line.strip_prefix("Content-Length: ") {
            len = v.trim().parse().unwrap();
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    body.resize(len, 0);
    reader.read_exact(body).expect("read body");
    len
}

/// One client: a persistent keep-alive connection issuing sequential
/// requests and fully reading each response through a buffered reader
/// (so the *server*, not client syscalls, is what gets measured).
fn client_run(addr: SocketAddr, id: usize, requests: usize) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).ok();
    let mut writer = s.try_clone().expect("clone");
    let mut reader = std::io::BufReader::with_capacity(16 * 1024, s);
    let mut body = Vec::with_capacity(8192);
    for r in 0..requests {
        let path = format!("/f{}.html", (id + r) % 8);
        writer
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").as_bytes())
            .expect("send");
        read_keepalive_response(&mut reader, &mut body);
    }
}

/// Drives `CLIENTS` concurrent keep-alive clients to completion.
fn storm(addr: SocketAddr) {
    let threads: Vec<_> = (0..CLIENTS)
        .map(|id| std::thread::spawn(move || client_run(addr, id, REQS_PER_CLIENT)))
        .collect();
    for t in threads {
        t.join().expect("client");
    }
}

fn bench_net_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_throughput");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements((CLIENTS * REQS_PER_CLIENT) as u64));
    let mut report = BenchReport::new();

    let root = docroot("amped1");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root).with_event_loops(1)).unwrap();
    let addr = server.addr();
    let t0 = std::time::Instant::now();
    g.bench_function("amped_1_shard", |b| b.iter(|| storm(addr)));
    let (p50, p99) = latency_percentiles(server.stats());
    report.record_full(
        "net_throughput/amped_1_shard",
        server.stats().requests(),
        t0.elapsed().as_secs_f64(),
        false,
        None,
        p50,
        p99,
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    let shards = flash_net::server::default_event_loops().max(4);
    let root = docroot("ampedN");
    let server = Server::start(
        "127.0.0.1:0",
        NetConfig::new(&root).with_event_loops(shards),
    )
    .unwrap();
    let addr = server.addr();
    let t0 = std::time::Instant::now();
    g.bench_function(&format!("amped_{shards}_shards"), |b| {
        b.iter(|| storm(addr))
    });
    let (p50, p99) = latency_percentiles(server.stats());
    report.record_full(
        &format!("net_throughput/amped_{shards}_shards"),
        server.stats().requests(),
        t0.elapsed().as_secs_f64(),
        false,
        None,
        p50,
        p99,
    );
    let spread: Vec<u64> = server
        .stats()
        .per_shard()
        .iter()
        .map(|s| s.requests.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    println!("per-shard requests after amped_{shards}_shards: {spread:?}");
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    let root = docroot("mt");
    let server = MtServer::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let addr = server.addr();
    let t0 = std::time::Instant::now();
    g.bench_function("mt_thread_per_conn", |b| b.iter(|| storm(addr)));
    let (p50, p99) = latency_percentiles(server.stats());
    report.record_full(
        "net_throughput/mt_thread_per_conn",
        server.stats().requests(),
        t0.elapsed().as_secs_f64(),
        false,
        None,
        p50,
        p99,
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    g.finish();
    match report.write() {
        Ok(path) => println!("recorded net_throughput scenarios to {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}

const LARGE_FILE_BYTES: usize = 1024 * 1024;
const LARGE_CLIENTS: usize = 4;
const LARGE_REQS: usize = 8;

/// Builds a docroot holding one large (1 MiB) file.
fn docroot_large(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("large.bin"), vec![0x5A; LARGE_FILE_BYTES]).unwrap();
    dir
}

/// One keep-alive client fetching the large file repeatedly.
fn client_large(addr: SocketAddr, requests: usize) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.set_nodelay(true).ok();
    let mut writer = s.try_clone().expect("clone");
    let mut reader = std::io::BufReader::with_capacity(64 * 1024, s);
    let mut body = vec![0u8; LARGE_FILE_BYTES];
    for _ in 0..requests {
        writer
            .write_all(b"GET /large.bin HTTP/1.1\r\nHost: b\r\n\r\n")
            .expect("send");
        let len = read_keepalive_response(&mut reader, &mut body);
        assert_eq!(len, LARGE_FILE_BYTES);
    }
}

fn storm_large(addr: SocketAddr) {
    let threads: Vec<_> = (0..LARGE_CLIENTS)
        .map(|_| std::thread::spawn(move || client_large(addr, LARGE_REQS)))
        .collect();
    for t in threads {
        t.join().expect("client");
    }
}

/// The same 1 MiB body through both tiers: `sendfile(2)` from the page
/// cache (default threshold) versus forced through the content cache
/// and `writev` (threshold raised above the file size).
fn bench_large_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_large_file");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Bytes(
        (LARGE_CLIENTS * LARGE_REQS * LARGE_FILE_BYTES) as u64,
    ));

    let root = docroot_large("sendfile");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root).with_event_loops(1)).unwrap();
    let addr = server.addr();
    g.bench_function("amped_1mib_sendfile", |b| b.iter(|| storm_large(addr)));
    assert!(
        server.stats().sendfile_calls() > 0,
        "large bodies must take the sendfile tier"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    let root = docroot_large("cached");
    let server = Server::start(
        "127.0.0.1:0",
        NetConfig::new(&root)
            .with_event_loops(1)
            .with_sendfile_threshold(16 * 1024 * 1024),
    )
    .unwrap();
    let addr = server.addr();
    g.bench_function("amped_1mib_cached_writev", |b| b.iter(|| storm_large(addr)));
    assert_eq!(server.stats().sendfile_calls(), 0);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    g.finish();
}

const PLANE_CLIENTS: usize = 8;
const PLANE_REQS: usize = 40;
const RANGE_WINDOW: usize = 64 * 1024;
const GZ_BODY_BYTES: usize = 1024;

/// Docroot for the send-plane scenarios: the 1 MiB file for ranged
/// sendfile windows plus small pages with precompressed `.gz`
/// siblings. The gzip bytes are opaque to the server — it negotiates
/// and serves the sibling, it never inflates it — so a fixed pattern
/// of a known length stands in for real compressor output.
fn docroot_plane(tag: &str) -> std::path::PathBuf {
    let dir = docroot_large(tag);
    for i in 0..8 {
        std::fs::write(dir.join(format!("f{i}.html")), vec![b'a' + i as u8; 4096]).unwrap();
        std::fs::write(
            dir.join(format!("f{i}.html.gz")),
            vec![b'A' + i as u8; GZ_BODY_BYTES],
        )
        .unwrap();
    }
    dir
}

/// One keep-alive client issuing 64 KiB `Range` windows that march
/// around the 1 MiB file; every response must be a 206 of exactly the
/// requested window.
fn client_range(addr: SocketAddr, id: usize, requests: usize) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.set_nodelay(true).ok();
    let mut writer = s.try_clone().expect("clone");
    let mut reader = std::io::BufReader::with_capacity(64 * 1024, s);
    let mut body = vec![0u8; RANGE_WINDOW];
    let windows = LARGE_FILE_BYTES / RANGE_WINDOW;
    for r in 0..requests {
        let start = ((id * 7 + r) % windows) * RANGE_WINDOW;
        let end = start + RANGE_WINDOW - 1;
        writer
            .write_all(
                format!("GET /large.bin HTTP/1.1\r\nHost: b\r\nRange: bytes={start}-{end}\r\n\r\n")
                    .as_bytes(),
            )
            .expect("send");
        let len = read_keepalive_response(&mut reader, &mut body);
        assert_eq!(len, RANGE_WINDOW);
    }
}

/// One keep-alive client fetching small pages with
/// `Accept-Encoding: gzip`; every response must be the precompressed
/// sibling (its exact length proves the variant was served).
fn client_gz(addr: SocketAddr, id: usize, requests: usize) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).ok();
    let mut writer = s.try_clone().expect("clone");
    let mut reader = std::io::BufReader::with_capacity(16 * 1024, s);
    let mut body = Vec::with_capacity(GZ_BODY_BYTES);
    for r in 0..requests {
        let path = format!("/f{}.html", (id + r) % 8);
        writer
            .write_all(
                format!("GET {path} HTTP/1.1\r\nHost: b\r\nAccept-Encoding: gzip\r\n\r\n")
                    .as_bytes(),
            )
            .expect("send");
        let len = read_keepalive_response(&mut reader, &mut body);
        assert_eq!(len, GZ_BODY_BYTES);
    }
}

/// The send plane under its two new body shapes: 64 KiB `Range`
/// windows carved out of a 1 MiB file — each 206 rides the sendfile
/// tier, because the *representation*, not the window, picks the tier
/// — and precompressed `.gz` variants served out of the content cache
/// to `Accept-Encoding: gzip` clients.
fn bench_send_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_send_plane");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    let mut report = BenchReport::new();

    let root = docroot_plane("range-sendfile");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root).with_event_loops(1)).unwrap();
    let addr = server.addr();
    g.throughput(Throughput::Bytes(
        (PLANE_CLIENTS * PLANE_REQS * RANGE_WINDOW) as u64,
    ));
    let t0 = std::time::Instant::now();
    g.bench_function("range_sendfile", |b| {
        b.iter(|| {
            let threads: Vec<_> = (0..PLANE_CLIENTS)
                .map(|id| std::thread::spawn(move || client_range(addr, id, PLANE_REQS)))
                .collect();
            for t in threads {
                t.join().expect("range client");
            }
        })
    });
    assert!(
        server.stats().sendfile_calls() > 0,
        "ranged windows of a 1 MiB file must ride the sendfile tier"
    );
    assert!(server.stats().range_requests() > 0);
    assert_eq!(server.stats().range_unsatisfiable(), 0);
    let (p50, p99) = latency_percentiles(server.stats());
    report.record_full(
        "net_send_plane/range_sendfile",
        server.stats().requests(),
        t0.elapsed().as_secs_f64(),
        false,
        None,
        p50,
        p99,
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    let root = docroot_plane("precompressed");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root).with_event_loops(1)).unwrap();
    let addr = server.addr();
    g.throughput(Throughput::Elements((PLANE_CLIENTS * PLANE_REQS) as u64));
    let t0 = std::time::Instant::now();
    g.bench_function("precompressed_hit", |b| {
        b.iter(|| {
            let threads: Vec<_> = (0..PLANE_CLIENTS)
                .map(|id| std::thread::spawn(move || client_gz(addr, id, PLANE_REQS)))
                .collect();
            for t in threads {
                t.join().expect("gzip client");
            }
        })
    });
    assert!(
        server.stats().cache_hits() > 0,
        "repeat gzip fetches must hit the variant cache"
    );
    let (p50, p99) = latency_percentiles(server.stats());
    report.record_full(
        "net_send_plane/precompressed_hit",
        server.stats().requests(),
        t0.elapsed().as_secs_f64(),
        false,
        None,
        p50,
        p99,
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    g.finish();
    match report.write() {
        Ok(path) => println!("recorded net_send_plane scenarios to {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}

const DYN_CLIENTS: usize = 8;
const DYN_REQS: usize = 40;

/// Reads one chunked keep-alive response off `reader` — status
/// asserted 200, header scanned past, chunk frames consumed through
/// the terminator — and returns the decoded body length.
fn read_chunked_keepalive(reader: &mut impl std::io::BufRead) -> usize {
    let mut line = String::new();
    let mut first = true;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("read header line");
        if first {
            assert!(line.starts_with("HTTP/1.1 200 OK"), "{line}");
            first = false;
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut total = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("read chunk size");
        let n = usize::from_str_radix(line.trim(), 16).expect("hex chunk size");
        // Chunk payload plus its trailing CRLF (the terminator's blank
        // line for the zero chunk).
        let mut buf = vec![0u8; n + 2];
        std::io::Read::read_exact(reader, &mut buf).expect("read chunk");
        if n == 0 {
            return total;
        }
        total += n;
    }
}

/// One keep-alive client issuing small dynamic requests; every
/// response streams back from the persistent worker pool as chunked
/// frames.
fn client_dynamic(addr: SocketAddr, id: usize, requests: usize) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.set_nodelay(true).ok();
    let mut writer = s.try_clone().expect("clone");
    let mut reader = std::io::BufReader::with_capacity(16 * 1024, s);
    for r in 0..requests {
        writer
            .write_all(format!("GET /app/{id}/{r} HTTP/1.1\r\nHost: b\r\n\r\n").as_bytes())
            .expect("send");
        assert!(
            read_chunked_keepalive(&mut reader) > 0,
            "empty dynamic body"
        );
    }
}

/// The dynamic tier under load: small responses produced by the
/// built-in echo worker, streamed back as chunked frames through the
/// shard's streaming completion path. What this measures is the full
/// request → worker checkout → frame relay → chunked encode loop, not
/// the worker's own compute.
fn bench_dynamic_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_dynamic");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements((DYN_CLIENTS * DYN_REQS) as u64));
    let mut report = BenchReport::new();

    let root = docroot("dynamic-small");
    let cfg = NetConfig::builder(&root)
        .event_loops(1)
        .dynamic_prefix("/app/")
        .build()
        .expect("consistent config");
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();
    let t0 = std::time::Instant::now();
    g.bench_function("dynamic_small", |b| {
        b.iter(|| {
            let threads: Vec<_> = (0..DYN_CLIENTS)
                .map(|id| std::thread::spawn(move || client_dynamic(addr, id, DYN_REQS)))
                .collect();
            for t in threads {
                t.join().expect("dynamic client");
            }
        })
    });
    assert!(server.stats().dynamic_requests() > 0);
    assert_eq!(
        server.stats().worker_respawns(),
        0,
        "the echo workers must survive the whole run"
    );
    let wait = server.stats().worker_wait().summary();
    println!(
        "dynamic_small: {} requests, worker-wait p50 {:.3} ms / p99 {:.3} ms",
        server.stats().dynamic_requests(),
        wait.p50_nanos as f64 / 1e6,
        wait.p99_nanos as f64 / 1e6,
    );
    let (p50, p99) = latency_percentiles(server.stats());
    report.record_full(
        "net_dynamic/dynamic_small",
        server.stats().dynamic_requests(),
        t0.elapsed().as_secs_f64(),
        false,
        None,
        p50,
        p99,
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    g.finish();
    match report.write() {
        Ok(path) => println!("recorded net_dynamic scenarios to {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}

const CHURN_CLIENTS: usize = 8;
const CHURN_CONNS_PER_CLIENT: usize = 40;

/// One churn client: short-lived connections, one HTTP/1.0 request
/// each — every request pays the full connection-setup cost, so the
/// accept path dominates what this measures.
fn client_churn(addr: SocketAddr, conns: usize) {
    use std::io::Read;
    for _ in 0..conns {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /f0.html HTTP/1.0\r\n\r\n").expect("send");
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).expect("read");
        assert!(resp.starts_with(b"HTTP/1.1 200 OK\r\n"));
    }
}

fn storm_churn(addr: SocketAddr) {
    let threads: Vec<_> = (0..CHURN_CLIENTS)
        .map(|_| std::thread::spawn(move || client_churn(addr, CHURN_CONNS_PER_CLIENT)))
        .collect();
    for t in threads {
        t.join().expect("churn client");
    }
}

/// Connection-setup rate: many short-lived connections against the
/// single acceptor thread (every accept funneled through one thread
/// and dealt over a channel) versus per-shard `SO_REUSEPORT` listeners
/// (the kernel load-balances accepts straight into the shards).
fn bench_accept_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_accept_rate");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(
        (CHURN_CLIENTS * CHURN_CONNS_PER_CLIENT) as u64,
    ));
    let mut report = BenchReport::new();

    for mode in [AcceptMode::Single, AcceptMode::ReusePort] {
        let root = docroot("accept-rate");
        let server = Server::start(
            "127.0.0.1:0",
            NetConfig::new(&root)
                .with_event_loops(4)
                .with_accept_mode(mode),
        )
        .unwrap();
        let resolved = server.accept_mode();
        if mode == AcceptMode::ReusePort && resolved != AcceptModeKind::ReusePort {
            // Platform floor degraded the mode: the second scenario
            // would re-measure the first.
            server.stop();
            let _ = std::fs::remove_dir_all(&root);
            continue;
        }
        let addr = server.addr();
        let t0 = std::time::Instant::now();
        g.bench_function(&format!("short_conns_4_shards_{}", resolved.name()), |b| {
            b.iter(|| storm_churn(addr))
        });
        let (p50, p99) = latency_percentiles(server.stats());
        report.record_full(
            &format!("net_accept_rate/short_conns_4_shards_{}", resolved.name()),
            server.stats().requests(),
            t0.elapsed().as_secs_f64(),
            true,
            None,
            p50,
            p99,
        );
        println!(
            "accept mode {}: {} accepted, backpressure events {}",
            resolved.name(),
            server.stats().accepted(),
            server.stats().accept_backpressure(),
        );
        server.stop();
        let _ = std::fs::remove_dir_all(&root);
    }
    g.finish();
    match report.write() {
        Ok(path) => println!("recorded net_accept_rate scenarios to {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}

const IDLE_CONNS: usize = 960;
const IDLE_ACTIVE_CLIENTS: usize = 64;
const IDLE_REQS: usize = 25;

/// The workload the epoll backend exists for: a shard whose watch set
/// is dominated by idle keep-alive connections (64 active among 1024
/// registered). The poll backend hands all ~1k descriptors to the
/// kernel on every wait; the epoll backend pays only for the ready
/// ones, so its per-request cost stays flat as the idle population
/// grows.
fn bench_many_idle_connections(c: &mut Criterion) {
    // Server + client ends live in this one process: ~2x descriptors.
    if !ensure_fd_limit(((IDLE_CONNS + IDLE_ACTIVE_CLIENTS) * 2 + 256) as u64) {
        eprintln!("skipping net_many_idle: cannot raise RLIMIT_NOFILE");
        return;
    }
    let mut g = c.benchmark_group("net_many_idle");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(
        (IDLE_ACTIVE_CLIENTS * IDLE_REQS) as u64,
    ));

    let backends: &[BackendChoice] = if resolve(BackendChoice::Epoll) == BackendKind::Epoll {
        &[BackendChoice::Epoll, BackendChoice::Poll]
    } else {
        &[BackendChoice::Poll]
    };
    for &choice in backends {
        let root = docroot("many-idle");
        let server = Server::start(
            "127.0.0.1:0",
            NetConfig::new(&root)
                .with_event_loops(1)
                .with_backend(choice)
                // The idle population must survive the whole
                // measurement; reaping is its own benchmark-distorting
                // event, so it is off here.
                .with_idle_timeout(None),
        )
        .unwrap();
        let addr = server.addr();
        let kind = server.backend();

        // Park the idle population: each completes one request (so it
        // is fully registered, in Reading state) and then goes silent.
        let idle: Vec<TcpStream> = (0..IDLE_CONNS)
            .map(|_| {
                let mut s = TcpStream::connect(addr).expect("idle connect");
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s.write_all(b"GET /f0.html HTTP/1.1\r\nHost: b\r\n\r\n")
                    .expect("idle send");
                let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
                let mut body = Vec::new();
                read_keepalive_response(&mut reader, &mut body);
                s
            })
            .collect();

        g.bench_function(
            &format!(
                "{}_active_{IDLE_ACTIVE_CLIENTS}_among_{}",
                kind.name(),
                IDLE_CONNS + IDLE_ACTIVE_CLIENTS
            ),
            |b| {
                b.iter(|| {
                    let threads: Vec<_> = (0..IDLE_ACTIVE_CLIENTS)
                        .map(|id| std::thread::spawn(move || client_run(addr, id, IDLE_REQS)))
                        .collect();
                    for t in threads {
                        t.join().expect("active client");
                    }
                })
            },
        );
        println!(
            "{} backend: {} conns registered idle, events/wait gauge {:.2}",
            kind.name(),
            idle.len(),
            server.stats().events_per_wait(),
        );
        drop(idle);
        server.stop();
        let _ = std::fs::remove_dir_all(&root);
    }
    g.finish();
}

criterion_group!(
    net_throughput,
    bench_net_throughput,
    bench_accept_rate,
    bench_large_file,
    bench_send_plane,
    bench_dynamic_small,
    bench_many_idle_connections
);
criterion_main!(net_throughput);
