//! Concurrent-client throughput of the real servers over loopback:
//! sharded AMPED (1 shard vs. N shards) against MT, so the multicore
//! speedup is measured rather than asserted — plus a large-file
//! scenario pitting the `sendfile(2)` tier against forcing the same
//! body through the in-memory cache + `writev` tier.
//!
//! Run with `cargo bench -p flash-bench --bench net_throughput`; under
//! `cargo test` each configuration runs once as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use flash_net::{MtServer, NetConfig, Server};

const CLIENTS: usize = 8;
const REQS_PER_CLIENT: usize = 50;

/// Builds a docroot of a few small cacheable files.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for i in 0..8 {
        std::fs::write(
            dir.join(format!("f{i}.html")),
            vec![b'a' + i as u8; 2048 + 512 * i],
        )
        .unwrap();
    }
    dir
}

/// One client: a persistent keep-alive connection issuing sequential
/// requests and fully reading each response through a buffered reader
/// (so the *server*, not client syscalls, is what gets measured).
fn client_run(addr: SocketAddr, id: usize, requests: usize) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).ok();
    let mut writer = s.try_clone().expect("clone");
    let mut reader = std::io::BufReader::with_capacity(16 * 1024, s);
    let mut body = Vec::with_capacity(8192);
    for r in 0..requests {
        let path = format!("/f{}.html", (id + r) % 8);
        writer
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").as_bytes())
            .expect("send");
        let mut len: usize = 0;
        let mut line = String::new();
        let mut first = true;
        loop {
            line.clear();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("read header line");
            if first {
                assert!(line.starts_with("HTTP/1.1 200 OK"), "{line}");
                first = false;
            }
            if let Some(v) = line.strip_prefix("Content-Length: ") {
                len = v.trim().parse().unwrap();
            }
            if line == "\r\n" || line == "\n" {
                break;
            }
        }
        body.resize(len, 0);
        reader.read_exact(&mut body).expect("read body");
    }
}

/// Drives `CLIENTS` concurrent keep-alive clients to completion.
fn storm(addr: SocketAddr) {
    let threads: Vec<_> = (0..CLIENTS)
        .map(|id| std::thread::spawn(move || client_run(addr, id, REQS_PER_CLIENT)))
        .collect();
    for t in threads {
        t.join().expect("client");
    }
}

fn bench_net_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_throughput");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements((CLIENTS * REQS_PER_CLIENT) as u64));

    let root = docroot("amped1");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root).with_event_loops(1)).unwrap();
    let addr = server.addr();
    g.bench_function("amped_1_shard", |b| b.iter(|| storm(addr)));
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    let shards = flash_net::server::default_event_loops().max(4);
    let root = docroot("ampedN");
    let server = Server::start(
        "127.0.0.1:0",
        NetConfig::new(&root).with_event_loops(shards),
    )
    .unwrap();
    let addr = server.addr();
    g.bench_function(&format!("amped_{shards}_shards"), |b| {
        b.iter(|| storm(addr))
    });
    let spread: Vec<u64> = server
        .stats()
        .per_shard()
        .iter()
        .map(|s| s.requests.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    println!("per-shard requests after amped_{shards}_shards: {spread:?}");
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    let root = docroot("mt");
    let server = MtServer::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let addr = server.addr();
    g.bench_function("mt_thread_per_conn", |b| b.iter(|| storm(addr)));
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    g.finish();
}

const LARGE_FILE_BYTES: usize = 1024 * 1024;
const LARGE_CLIENTS: usize = 4;
const LARGE_REQS: usize = 8;

/// Builds a docroot holding one large (1 MiB) file.
fn docroot_large(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("large.bin"), vec![0x5A; LARGE_FILE_BYTES]).unwrap();
    dir
}

/// One keep-alive client fetching the large file repeatedly.
fn client_large(addr: SocketAddr, requests: usize) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.set_nodelay(true).ok();
    let mut writer = s.try_clone().expect("clone");
    let mut reader = std::io::BufReader::with_capacity(64 * 1024, s);
    let mut body = vec![0u8; LARGE_FILE_BYTES];
    for _ in 0..requests {
        writer
            .write_all(b"GET /large.bin HTTP/1.1\r\nHost: b\r\n\r\n")
            .expect("send");
        let mut len: usize = 0;
        let mut line = String::new();
        let mut first = true;
        loop {
            line.clear();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("read header line");
            if first {
                assert!(line.starts_with("HTTP/1.1 200 OK"), "{line}");
                first = false;
            }
            if let Some(v) = line.strip_prefix("Content-Length: ") {
                len = v.trim().parse().unwrap();
            }
            if line == "\r\n" || line == "\n" {
                break;
            }
        }
        assert_eq!(len, LARGE_FILE_BYTES);
        reader.read_exact(&mut body).expect("read body");
    }
}

fn storm_large(addr: SocketAddr) {
    let threads: Vec<_> = (0..LARGE_CLIENTS)
        .map(|_| std::thread::spawn(move || client_large(addr, LARGE_REQS)))
        .collect();
    for t in threads {
        t.join().expect("client");
    }
}

/// The same 1 MiB body through both tiers: `sendfile(2)` from the page
/// cache (default threshold) versus forced through the content cache
/// and `writev` (threshold raised above the file size).
fn bench_large_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_large_file");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Bytes(
        (LARGE_CLIENTS * LARGE_REQS * LARGE_FILE_BYTES) as u64,
    ));

    let root = docroot_large("sendfile");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root).with_event_loops(1)).unwrap();
    let addr = server.addr();
    g.bench_function("amped_1mib_sendfile", |b| b.iter(|| storm_large(addr)));
    assert!(
        server.stats().sendfile_calls() > 0,
        "large bodies must take the sendfile tier"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    let root = docroot_large("cached");
    let server = Server::start(
        "127.0.0.1:0",
        NetConfig::new(&root)
            .with_event_loops(1)
            .with_sendfile_threshold(16 * 1024 * 1024),
    )
    .unwrap();
    let addr = server.addr();
    g.bench_function("amped_1mib_cached_writev", |b| b.iter(|| storm_large(addr)));
    assert_eq!(server.stats().sendfile_calls(), 0);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);

    g.finish();
}

criterion_group!(net_throughput, bench_net_throughput, bench_large_file);
criterion_main!(net_throughput);
