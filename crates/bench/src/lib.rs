//! Benchmark crate: Criterion benches regenerating each paper figure at
//! reduced scale (`benches/figures.rs`) plus component microbenches
//! (`benches/components.rs`). The full-scale figure regeneration lives in
//! the root example `reproduce_figures`.
