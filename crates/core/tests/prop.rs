//! Property tests: model-check the generic LRU against a reference
//! implementation, and the mapped-file cache's byte bound.

use flash_core::caches::{LruCache, MappedCache, CHUNK_BYTES};
use flash_simos::FileId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u32),
    Get(u8),
    Pop,
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Get),
        Just(Op::Pop),
    ]
}

/// Reference LRU: a Vec ordered least→most recently used.
#[derive(Default)]
struct Model {
    items: Vec<(u8, u32)>,
    cap: usize,
}

impl Model {
    fn insert(&mut self, k: u8, v: u32) -> Option<(u8, u32)> {
        if let Some(pos) = self.items.iter().position(|(mk, _)| *mk == k) {
            let old = self.items.remove(pos);
            self.items.push((k, v));
            return Some(old);
        }
        let evicted = if self.items.len() >= self.cap {
            Some(self.items.remove(0))
        } else {
            None
        };
        self.items.push((k, v));
        evicted
    }

    fn get(&mut self, k: u8) -> Option<u32> {
        let pos = self.items.iter().position(|(mk, _)| *mk == k)?;
        let item = self.items.remove(pos);
        self.items.push(item);
        Some(item.1)
    }

    fn pop(&mut self) -> Option<(u8, u32)> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items.remove(0))
        }
    }
}

proptest! {
    /// Every operation on the real LRU agrees with the reference model.
    #[test]
    fn lru_matches_reference_model(
        cap in 1usize..12,
        script in proptest::collection::vec(ops(), 1..400),
    ) {
        let mut real = LruCache::new(cap);
        let mut model = Model { items: Vec::new(), cap };
        for op in script {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(real.insert(k, v), model.insert(k, v));
                }
                Op::Get(k) => {
                    prop_assert_eq!(real.get(&k).copied(), model.get(k));
                }
                Op::Pop => {
                    prop_assert_eq!(real.pop_lru(), model.pop());
                }
            }
            prop_assert_eq!(real.len(), model.items.len());
            prop_assert!(real.len() <= cap);
        }
    }

    /// The mapped-file cache never exceeds its byte bound, and a freshly
    /// mapped chunk is always a hit immediately afterwards.
    #[test]
    fn mapped_cache_byte_bound(
        cap_chunks in 1u64..8,
        maps in proptest::collection::vec((1u32..64, 0u64..16, 1u64..2_000_000), 1..200),
    ) {
        let cap = cap_chunks * CHUNK_BYTES;
        let mut mc = MappedCache::new(cap);
        for (f, chunk, size) in maps {
            let offset = chunk * CHUNK_BYTES;
            if offset >= size {
                continue;
            }
            mc.map(FileId(f), offset, size);
            prop_assert!(mc.mapped_bytes() <= cap, "bound violated: {} > {}", mc.mapped_bytes(), cap);
            prop_assert!(mc.hit(FileId(f), offset), "fresh mapping must hit");
        }
    }
}
