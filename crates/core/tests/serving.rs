//! End-to-end serving tests: every architecture from the shared code base
//! accepts connections, serves files, and exhibits its paper-documented
//! behaviour (helpers for AMPED, whole-process stalls for SPED, per-worker
//! isolation for MP/MT).

use std::cell::Cell;
use std::rc::Rc;

use flash_core::{deploy, FileKind, FileSpec, ServerConfig, Site, KEEP_ALIVE_BIT};
use flash_simcore::SimTime;
use flash_simos::kernel::{AgentEvent, Kernel};
use flash_simos::{Agent, AgentId, ConnId, ListenId, MachineConfig, Simulation};

/// A benchmark client: requests tokens in sequence as fast as the server
/// answers. Non-persistent by default; persistent when `keep_alive`.
struct TestClient {
    id: AgentId,
    listen: ListenId,
    tokens: Vec<u64>,
    next: usize,
    keep_alive: bool,
    done: Rc<Cell<u64>>,
}

impl TestClient {
    fn send_next(&mut self, k: &mut Kernel, conn: ConnId) {
        let mut t = self.tokens[self.next % self.tokens.len()];
        self.next += 1;
        if self.keep_alive {
            t |= KEEP_ALIVE_BIT;
        }
        k.agent_send(conn, 200, t);
    }
}

impl Agent for TestClient {
    fn on_event(&mut self, k: &mut Kernel, ev: AgentEvent) {
        match ev {
            AgentEvent::Connected(conn) => self.send_next(k, conn),
            AgentEvent::ResponseComplete { conn } => {
                self.done.set(self.done.get() + 1);
                if self.keep_alive {
                    self.send_next(k, conn);
                }
            }
            AgentEvent::Closed(_) => {
                if !self.keep_alive {
                    k.agent_connect(self.id, self.listen, 100_000_000, 200_000);
                }
            }
            AgentEvent::Data { .. } | AgentEvent::Timer(_) => {}
        }
    }
}

fn attach_clients(
    sim: &mut Simulation,
    listen: ListenId,
    n: usize,
    tokens: Vec<u64>,
    keep_alive: bool,
) -> Rc<Cell<u64>> {
    let done = Rc::new(Cell::new(0u64));
    for i in 0..n {
        let d = Rc::clone(&done);
        let toks = tokens.clone();
        // Large stride declusters the clients' request streams; without
        // it all clients march through the same files in lockstep.
        let start = (i * 997) % toks.len().max(1);
        let id = sim.add_agent(move |id| {
            Box::new(TestClient {
                id,
                listen,
                tokens: toks,
                next: start,
                keep_alive,
                done: d,
            })
        });
        sim.kernel.agent_connect(id, listen, 100_000_000, 200_000);
    }
    done
}

fn small_site(sim: &mut Simulation) -> Rc<Site> {
    let specs: Vec<FileSpec> = (0..20)
        .map(|i| FileSpec::file(format!("/docs/page{i}.html"), 2048 + i * 1024))
        .collect();
    Site::build(&mut sim.kernel, &specs)
}

fn serve_count(cfg: &ServerConfig, machine: MachineConfig, secs: u64) -> u64 {
    let mut sim = Simulation::new(machine);
    let site = small_site(&mut sim);
    let server = deploy(&mut sim, cfg, site).expect("deploy");
    let done = attach_clients(&mut sim, server.listen, 8, (0..20).collect(), false);
    sim.run_until_guarded(SimTime::from_secs(secs), 40_000_000);
    // The server counts a response when its last writev completes; the
    // client counts on delivery. At the cutoff, up to one response per
    // client can be in flight between the two.
    let served = server.total_stat(|s| s.requests_done);
    assert!(
        served >= done.get() && served - done.get() <= 8,
        "server {served} vs clients {} completed responses",
        done.get()
    );
    done.get()
}

#[test]
fn flash_amped_serves_requests() {
    let n = serve_count(&ServerConfig::flash(), MachineConfig::freebsd(), 2);
    assert!(n > 1000, "Flash served only {n} requests in 2s");
}

#[test]
fn flash_sped_serves_requests() {
    let n = serve_count(&ServerConfig::flash_sped(), MachineConfig::freebsd(), 2);
    assert!(n > 1000, "SPED served only {n}");
}

#[test]
fn flash_mp_serves_requests() {
    let n = serve_count(&ServerConfig::flash_mp(), MachineConfig::freebsd(), 2);
    assert!(n > 1000, "MP served only {n}");
}

#[test]
fn flash_mt_serves_requests_on_solaris() {
    let n = serve_count(&ServerConfig::flash_mt(), MachineConfig::solaris(), 2);
    assert!(n > 400, "MT served only {n}");
}

#[test]
fn apache_like_serves_requests_slower_than_flash() {
    let apache = serve_count(&ServerConfig::apache_like(), MachineConfig::freebsd(), 2);
    let flash = serve_count(&ServerConfig::flash(), MachineConfig::freebsd(), 2);
    assert!(apache > 500, "Apache served only {apache}");
    assert!(
        flash as f64 > apache as f64 * 1.3,
        "Flash ({flash}) should clearly beat Apache ({apache})"
    );
}

#[test]
fn zeus_like_serves_requests() {
    let n = serve_count(&ServerConfig::zeus_like(1), MachineConfig::freebsd(), 2);
    assert!(n > 1000, "Zeus served only {n}");
}

#[test]
fn mt_requires_kernel_threads() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let site = small_site(&mut sim);
    let err = match deploy(&mut sim, &ServerConfig::flash_mt(), site) {
        Err(e) => e,
        Ok(_) => panic!("MT deploy must fail without kernel threads"),
    };
    assert_eq!(err, flash_core::DeployError::NoKernelThreads);
}

#[test]
fn amped_uses_helpers_for_cold_content() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let site = small_site(&mut sim);
    let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
    let done = attach_clients(&mut sim, server.listen, 4, (0..20).collect(), false);
    sim.run_until(SimTime::from_millis(500));
    assert!(done.get() > 0);
    // Cold cache: translations and first reads must have gone to helpers.
    assert!(server.total_stat(|s| s.helper_jobs) >= 20 * 2 - 4);
    assert!(server.total_stat(|s| s.mincore_missing) >= 15);
    // Once warm, mincore mostly reports resident.
    assert!(server.total_stat(|s| s.mincore_resident) > server.total_stat(|s| s.mincore_missing));
}

#[test]
fn caches_hit_after_warmup() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let site = small_site(&mut sim);
    let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
    let _ = attach_clients(&mut sim, server.listen, 4, (0..20).collect(), false);
    sim.run_until(SimTime::from_secs(1));
    let hits = server.total_stat(|s| s.path_hits);
    let misses = server.total_stat(|s| s.path_misses);
    // Cold misses can exceed the file count: several in-flight requests
    // for the same file can all miss before the first translation lands.
    assert!(misses <= 100, "expected only cold misses, got {misses}");
    assert!(hits > 20 * misses, "hits {hits} vs misses {misses}");
    assert!(server.total_stat(|s| s.header_hits) > 0);
    assert!(server.total_stat(|s| s.mmap_hits) > 0);
}

#[test]
fn persistent_connections_serve_many_requests_per_conn() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let site = small_site(&mut sim);
    let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
    let done = attach_clients(&mut sim, server.listen, 4, (0..20).collect(), true);
    sim.run_until(SimTime::from_secs(1));
    assert!(done.get() > 500, "persistent clients got {}", done.get());
    // Only the initial 4 connections should ever have been accepted.
    assert_eq!(sim.kernel.metrics.conns_accepted.total(), 4);
}

#[test]
fn large_files_stream_in_chunks() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let specs = vec![FileSpec::file("/big.tar", 1_500_000)];
    let site = Site::build(&mut sim.kernel, &specs);
    let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
    let done = attach_clients(&mut sim, server.listen, 2, vec![0], false);
    sim.run_until(SimTime::from_secs(2));
    assert!(done.get() >= 10, "only {} large responses", done.get());
    let bytes = sim.kernel.metrics.bytes_out.total();
    assert!(bytes >= done.get() * 1_500_000);
}

#[test]
fn cgi_requests_run_in_application_processes() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let specs = vec![
        FileSpec::file("/index.html", 4096),
        FileSpec {
            path: "/cgi-bin/report".into(),
            size: 0,
            kind: FileKind::Cgi {
                compute_ns: 3_000_000,
                output_bytes: 10_000,
            },
        },
    ];
    let site = Site::build(&mut sim.kernel, &specs);
    let mut cfg = ServerConfig::flash();
    cfg.cgi_apps = 2;
    let server = deploy(&mut sim, &cfg, site).expect("deploy");
    let done = attach_clients(&mut sim, server.listen, 3, vec![0, 1], false);
    sim.run_until(SimTime::from_secs(1));
    assert!(done.get() > 50);
    let cgi = server.total_stat(|s| s.cgi_requests);
    assert!(cgi > 20, "only {cgi} CGI requests");
    // CGI output bytes flowed to clients alongside static content.
    assert!(sim.kernel.metrics.bytes_out.total() > cgi * 10_000);
}

#[test]
fn sped_blocks_whole_server_on_disk_but_amped_does_not() {
    // Disk-bound comparison in the regime the paper evaluates: skewed
    // popularity, so most requests hit the cache but misses are steady.
    // Every SPED miss stalls the whole event loop (~9 ms) and with it all
    // the cache-hit requests it could have served; AMPED serves them
    // while helpers wait on the disk (§4.1).
    let run = |cfg: &ServerConfig| {
        let mut machine = MachineConfig::freebsd();
        machine.memory.total_bytes = 48 * 1024 * 1024; // shrink cache
        let mut sim = Simulation::new(machine);
        let specs: Vec<FileSpec> = (0..2000)
            .map(|i| FileSpec::file(format!("/data/f{i}.html"), 30_000))
            .collect(); // 60 MB dataset
        let site = Site::build(&mut sim.kernel, &specs);
        let server = deploy(&mut sim, cfg, site).expect("deploy");
        // 90% of requests target a hot 150-file (~4.5 MB) subset that
        // stays cached; 10% sweep the full 60 MB dataset.
        let tokens: Vec<u64> = (0..4000u64)
            .map(|i| {
                if i % 10 == 0 {
                    (i * 131) % 2000
                } else {
                    (i * 7) % 150
                }
            })
            .collect();
        let server_listen = server.listen;
        let done = attach_clients(&mut sim, server_listen, 16, tokens, false);
        sim.run_until(SimTime::from_secs(4));
        done.get()
    };
    let amped = run(&ServerConfig::flash());
    let sped = run(&ServerConfig::flash_sped());
    assert!(
        amped as f64 > sped as f64 * 1.2,
        "disk-bound: AMPED {amped} should beat SPED {sped}"
    );
}
