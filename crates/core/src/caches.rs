//! Flash's three application-level caches (§5.2–§5.4).
//!
//! * **Pathname-translation cache** — maps requested names to files,
//!   avoiding `stat`/translation-helper work on every request (§5.2).
//! * **Response-header cache** — reuses rendered HTTP response headers for
//!   repeatedly requested files (§5.3).
//! * **Mapped-file cache** — keeps `mmap` chunks alive across requests,
//!   with an LRU free list and lazy unmapping (§5.4): small files are one
//!   chunk, large files are split into [`CHUNK_BYTES`] chunks.
//!
//! All three are built on a generic O(1) [`LruCache`]. A shared
//! [`CacheStats`] records hits and misses so the Figure 11 breakdown
//! experiment (and the tests) can attribute costs.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

use flash_simos::FileId;

/// Mapped-file chunk size in bytes (64 KB: 16 pages).
pub const CHUNK_BYTES: u64 = 64 * 1024;

const NIL: u32 = u32::MAX;

struct Node<K, V> {
    key: K,
    // `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: u32,
    next: u32,
}

/// A generic LRU cache with O(1) get/insert/evict, bounded by entry count.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, u32>,
    slab: Vec<Node<K, V>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; use `Option<LruCache>` to model a
    /// disabled cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity LruCache; use None instead");
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    ///
    /// Accepts any borrowed form of the key (`Borrow<Q>`), so a
    /// `String`-keyed cache is queried with a plain `&str` — no
    /// per-lookup key allocation on the hot path.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        self.slab[idx as usize].value.as_ref()
    }

    /// Looks up `key` mutably, promoting it to most-recently-used on a
    /// hit — for callers that keep per-entry bookkeeping (validation
    /// stamps) alongside the cached value.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        self.slab[idx as usize].value.as_mut()
    }

    /// Looks up without promoting (for tests/introspection).
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = *self.map.get(key)?;
        self.slab[idx as usize].value.as_ref()
    }

    /// Inserts `key → value`. Returns the entry this displaced — either
    /// the previous value of the same key, or the evicted LRU entry when
    /// the cache was full — so callers can release its resources (Flash
    /// unmaps evicted chunks; the net server's cache adjusts its byte
    /// accounting).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            let old = self.slab[idx as usize].value.replace(value);
            self.unlink(idx);
            self.push_front(idx);
            return old.map(|v| (key, v));
        }
        let evicted = if self.map.len() >= self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Node {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Node {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                });
                (self.slab.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key`, returning its value. O(1), any recency position
    /// — the targeted-invalidation counterpart of [`Self::pop_lru`]
    /// (the net server's content cache drops entries whose backing
    /// file changed on disk).
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.slab[idx as usize].value.take()
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        self.unlink(idx);
        self.free.push(idx);
        let node = &mut self.slab[idx as usize];
        let key = node.key.clone();
        let value = node.value.take().expect("live node holds a value");
        self.map.remove(&key);
        Some((key, value))
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.slab[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let n = &mut self.slab[idx as usize];
        n.prev = NIL;
        n.next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        let old = self.head;
        {
            let n = &mut self.slab[idx as usize];
            n.prev = NIL;
            n.next = old;
        }
        if old != NIL {
            self.slab[old as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A pathname-translation cache entry: the result of resolving a
/// requested name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEntry {
    /// Resolved file.
    pub fid: FileId,
    /// File size (for the response header and send loop).
    pub size: u64,
}

/// A response-header cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderEntry {
    /// Rendered header length in bytes.
    pub len: u64,
    /// Whether the header is §5.5 alignment-padded.
    pub aligned: bool,
}

/// The mapped-file chunk cache: bounded by total mapped bytes, LRU,
/// lazily unmapped (evictions are returned so the caller can charge
/// `munmap` cost).
pub struct MappedCache {
    lru: LruCache<(FileId, u64), u64>,
    capacity_bytes: u64,
    mapped_bytes: u64,
}

impl MappedCache {
    /// Creates a cache bounded to `capacity_bytes` of mappings.
    pub fn new(capacity_bytes: u64) -> Self {
        MappedCache {
            // The byte bound is enforced below; the LRU entry bound only
            // needs to be unreachable. A mapping covers at least one page,
            // so bytes/page entries can never be exceeded.
            lru: LruCache::new((capacity_bytes / 4096) as usize + 1),
            capacity_bytes,
            mapped_bytes: 0,
        }
    }

    /// Total currently mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_bytes
    }

    /// The chunk index covering byte `offset`.
    pub fn chunk_of(offset: u64) -> u64 {
        offset / CHUNK_BYTES
    }

    /// True (and promoted) if the chunk holding `offset` of `file` is
    /// mapped.
    pub fn hit(&mut self, file: FileId, offset: u64) -> bool {
        self.lru.get(&(file, Self::chunk_of(offset))).is_some()
    }

    /// Maps the chunk holding `offset` of a file of `file_size` bytes.
    /// Returns the number of chunks unmapped to stay under the byte
    /// bound (the caller charges `munmap` cost per eviction).
    pub fn map(&mut self, file: FileId, offset: u64, file_size: u64) -> u32 {
        let chunk = Self::chunk_of(offset);
        let start = chunk * CHUNK_BYTES;
        let bytes = (file_size - start.min(file_size)).clamp(1, CHUNK_BYTES);
        let mut evicted = 0;
        if let Some((_, b)) = self.lru.insert((file, chunk), bytes) {
            self.mapped_bytes -= b;
            evicted += 1;
        }
        self.mapped_bytes += bytes;
        while self.mapped_bytes > self.capacity_bytes {
            match self.lru.pop_lru() {
                Some((_, b)) => {
                    self.mapped_bytes -= b;
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// Hit/miss counters for the three caches plus helper activity.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    /// Pathname cache hits.
    pub path_hits: u64,
    /// Pathname cache misses (each one costs translation work).
    pub path_misses: u64,
    /// Header cache hits.
    pub header_hits: u64,
    /// Header cache misses (each one costs header generation).
    pub header_misses: u64,
    /// Mapped-file cache hits.
    pub mmap_hits: u64,
    /// Mapped-file cache misses (each one costs an `mmap`).
    pub mmap_misses: u64,
    /// Chunks lazily unmapped on eviction.
    pub unmaps: u64,
    /// Jobs dispatched to AMPED helper processes.
    pub helper_jobs: u64,
    /// `mincore` checks that found the data resident.
    pub mincore_resident: u64,
    /// `mincore` checks that found data missing (→ helper read).
    pub mincore_missing: u64,
    /// Requests fully served.
    pub requests_done: u64,
    /// CGI requests forwarded to application processes.
    pub cgi_requests: u64,
}

/// The cache set of one server process (or the shared set of an MT
/// server). `None` means the optimization is disabled — that is how the
/// Figure 11 breakdown turns individual caches off.
pub struct Caches {
    /// Pathname-translation cache, keyed by request token.
    pub path: Option<LruCache<u64, PathEntry>>,
    /// Response-header cache, keyed by (token, keep_alive).
    pub header: Option<LruCache<(u64, bool), HeaderEntry>>,
    /// Mapped-file chunk cache.
    pub mmap: Option<MappedCache>,
    /// Counters.
    pub stats: CacheStats,
}

impl Caches {
    /// Builds a cache set: `path_entries == 0`, `header == false` or
    /// `mmap_bytes == 0` disable the respective cache.
    pub fn build(
        path_entries: usize,
        header: bool,
        header_entries: usize,
        mmap_bytes: u64,
    ) -> Self {
        Caches {
            path: (path_entries > 0).then(|| LruCache::new(path_entries)),
            header: (header && header_entries > 0).then(|| LruCache::new(header_entries)),
            mmap: (mmap_bytes > 0).then(|| MappedCache::new(mmap_bytes)),
            stats: CacheStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_get_promotes() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)), "b was LRU after touching a");
        assert_eq!(c.len(), 2);
        assert!(c.peek(&"a").is_some());
    }

    #[test]
    fn lru_insert_existing_updates_value_and_returns_old() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        assert_eq!(c.insert("a", 9), Some(("a", 1)));
        assert_eq!(c.get(&"a"), Some(&9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_pop_order() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&1);
        assert_eq!(c.pop_lru().map(|(k, _)| k), Some(2));
        assert_eq!(c.pop_lru().map(|(k, _)| k), Some(3));
        assert_eq!(c.pop_lru().map(|(k, _)| k), Some(1));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_slot_reuse_after_eviction() {
        let mut c = LruCache::new(2);
        for i in 0..100u32 {
            c.insert(i, i * 10);
            assert!(c.len() <= 2);
        }
        assert_eq!(c.get(&99), Some(&990));
        assert_eq!(c.get(&98), Some(&980));
        assert_eq!(c.get(&97), None);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn lru_zero_capacity_panics() {
        let _ = LruCache::<u32, ()>::new(0);
    }

    #[test]
    fn lru_values_drop_exactly_once() {
        use std::rc::Rc;
        let v = Rc::new(());
        {
            let mut c = LruCache::new(1);
            c.insert(1, v.clone());
            c.insert(2, v.clone()); // evicts (1), dropping its Rc
            assert_eq!(Rc::strong_count(&v), 2);
            let popped = c.pop_lru().unwrap();
            drop(popped);
            assert_eq!(Rc::strong_count(&v), 1);
        }
        assert_eq!(Rc::strong_count(&v), 1);
    }

    #[test]
    fn mapped_cache_respects_byte_bound() {
        let mut m = MappedCache::new(4 * CHUNK_BYTES);
        let f = FileId(1);
        // Map 6 full chunks of a large file: at most 4 stay mapped.
        let mut evictions = 0;
        for i in 0..6 {
            evictions += m.map(f, i * CHUNK_BYTES, 10 * CHUNK_BYTES);
        }
        assert!(m.mapped_bytes() <= 4 * CHUNK_BYTES);
        assert_eq!(evictions, 2);
        assert!(m.hit(f, 5 * CHUNK_BYTES));
        assert!(!m.hit(f, 0));
    }

    #[test]
    fn mapped_cache_small_files_use_their_size() {
        let mut m = MappedCache::new(2 * CHUNK_BYTES);
        // 32 files of 2 KB each: 64 KB total, all fit despite being 32
        // entries, because small files occupy one small chunk each (§5.4).
        for i in 0..32 {
            m.map(FileId(i), 0, 2048);
        }
        assert_eq!(m.mapped_bytes(), 32 * 2048);
        assert!(m.hit(FileId(0), 0));
    }

    #[test]
    fn mapped_cache_chunk_indexing() {
        assert_eq!(MappedCache::chunk_of(0), 0);
        assert_eq!(MappedCache::chunk_of(CHUNK_BYTES - 1), 0);
        assert_eq!(MappedCache::chunk_of(CHUNK_BYTES), 1);
        assert_eq!(MappedCache::chunk_of(10 * CHUNK_BYTES + 5), 10);
    }

    #[test]
    fn caches_build_respects_disables() {
        let c = Caches::build(0, false, 0, 0);
        assert!(c.path.is_none() && c.header.is_none() && c.mmap.is_none());
        let c = Caches::build(10, true, 10, CHUNK_BYTES);
        assert!(c.path.is_some() && c.header.is_some() && c.mmap.is_some());
    }
}
