//! Deploying a configured server into a simulation.
//!
//! [`deploy`] spawns the processes/threads/helpers a [`ServerConfig`]
//! describes and returns a [`ServerHandle`] with the listen socket and
//! cache handles (for stats inspection). It fails with
//! [`DeployError::NoKernelThreads`] when an MT server is deployed on an
//! OS profile without kernel-thread support — FreeBSD 2.2.6 in the paper,
//! which is why Figure 9 has no MT line.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use flash_simos::proc::ProcKind;
use flash_simos::{ListenId, Pid, Simulation};

use crate::caches::Caches;
use crate::cgi::CgiAppLogic;
use crate::config::{Architecture, ServerConfig};
use crate::eventloop::EventLoopServer;
use crate::helper::HelperLogic;
use crate::seq::SeqWorker;
use crate::site::Site;

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The OS profile has no kernel threads (MT requires them, §3.2).
    NoKernelThreads,
    /// CGI applications require a single event-driven server process.
    CgiNeedsSingleEventProcess,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::NoKernelThreads => {
                f.write_str("MT architecture requires kernel threads, which this OS lacks")
            }
            DeployError::CgiNeedsSingleEventProcess => {
                f.write_str("CGI applications are supported with a single event-driven process")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// A deployed server.
pub struct ServerHandle {
    /// Display name from the config.
    pub name: String,
    /// The socket clients connect to.
    pub listen: ListenId,
    /// Cache sets (one per MP worker / event process; a single shared set
    /// for MT and AMPED) for stats inspection after a run.
    pub caches: Vec<Rc<RefCell<Caches>>>,
    /// Pids of the main server processes (not helpers).
    pub server_pids: Vec<Pid>,
}

impl ServerHandle {
    /// Sums a statistic across all cache sets.
    pub fn total_stat(&self, f: impl Fn(&crate::caches::CacheStats) -> u64) -> u64 {
        self.caches.iter().map(|c| f(&c.borrow().stats)).sum()
    }
}

/// Estimated application memory of one cache set (pathname + header
/// entries; mapped chunks are page-cache pages and not double-counted).
fn cache_mem(cfg: &ServerConfig) -> u64 {
    let path = cfg.path_cache_entries as u64 * 96;
    let header = if cfg.header_cache {
        cfg.header_cache_entries as u64 * 64
    } else {
        0
    };
    path + header
}

/// Spawns the server described by `cfg` into `sim`, serving `site`.
pub fn deploy(
    sim: &mut Simulation,
    cfg: &ServerConfig,
    site: Rc<Site>,
) -> Result<ServerHandle, DeployError> {
    let cfg = Rc::new(cfg.clone());
    let listen = sim.kernel.add_listen();
    let mut handle = ServerHandle {
        name: cfg.name.clone(),
        listen,
        caches: Vec::new(),
        server_pids: Vec::new(),
    };
    match cfg.arch {
        Architecture::Amped => {
            let caches = Rc::new(RefCell::new(Caches::build(
                cfg.path_cache_entries,
                cfg.header_cache,
                cfg.header_cache_entries,
                cfg.mmap_cache_bytes,
            )));
            let done_pipe = (cfg.helpers > 0 || cfg.cgi_apps > 0).then(|| sim.kernel.add_pipe());
            let helper_pipes: Vec<_> = (0..cfg.helpers).map(|_| sim.kernel.add_pipe()).collect();
            let cgi_pipes: Vec<_> = (0..cfg.cgi_apps).map(|_| sim.kernel.add_pipe()).collect();
            let logic = EventLoopServer::new(
                Rc::clone(&cfg),
                Rc::clone(&site),
                listen,
                Rc::clone(&caches),
                helper_pipes.clone(),
                cgi_pipes.clone(),
                done_pipe,
            );
            let pid = sim.add_process(
                ProcKind::Process,
                None,
                cfg.main_mem + cache_mem(&cfg),
                format!("{}-main", cfg.name),
                Box::new(logic),
            );
            handle.server_pids.push(pid);
            handle.caches.push(caches);
            let done = done_pipe.expect("AMPED has workers");
            for (i, job) in helper_pipes.into_iter().enumerate() {
                sim.add_process(
                    ProcKind::Process,
                    None,
                    cfg.helper_mem,
                    format!("{}-helper-{i}", cfg.name),
                    Box::new(HelperLogic::new(job, done)),
                );
            }
            for (i, job) in cgi_pipes.into_iter().enumerate() {
                sim.add_process(
                    ProcKind::Process,
                    None,
                    512 * 1024,
                    format!("{}-cgi-{i}", cfg.name),
                    Box::new(CgiAppLogic::new(job, done, Rc::clone(&site))),
                );
            }
        }
        Architecture::Sped => {
            if cfg.cgi_apps > 0 && cfg.workers != 1 {
                return Err(DeployError::CgiNeedsSingleEventProcess);
            }
            for w in 0..cfg.workers.max(1) {
                let caches = Rc::new(RefCell::new(Caches::build(
                    cfg.path_cache_entries,
                    cfg.header_cache,
                    cfg.header_cache_entries,
                    cfg.mmap_cache_bytes,
                )));
                let done_pipe = (w == 0 && cfg.cgi_apps > 0).then(|| sim.kernel.add_pipe());
                let cgi_pipes: Vec<_> = if w == 0 {
                    (0..cfg.cgi_apps).map(|_| sim.kernel.add_pipe()).collect()
                } else {
                    Vec::new()
                };
                let logic = EventLoopServer::new(
                    Rc::clone(&cfg),
                    Rc::clone(&site),
                    listen,
                    Rc::clone(&caches),
                    Vec::new(),
                    cgi_pipes.clone(),
                    done_pipe,
                );
                let pid = sim.add_process(
                    ProcKind::Process,
                    None,
                    cfg.main_mem + cache_mem(&cfg),
                    format!("{}-sped-{w}", cfg.name),
                    Box::new(logic),
                );
                handle.server_pids.push(pid);
                handle.caches.push(caches);
                if let Some(done) = done_pipe {
                    for (i, job) in cgi_pipes.into_iter().enumerate() {
                        sim.add_process(
                            ProcKind::Process,
                            None,
                            512 * 1024,
                            format!("{}-cgi-{i}", cfg.name),
                            Box::new(CgiAppLogic::new(job, done, Rc::clone(&site))),
                        );
                    }
                }
            }
        }
        Architecture::Mp => {
            for w in 0..cfg.workers.max(1) {
                let caches = Rc::new(RefCell::new(Caches::build(
                    cfg.path_cache_entries,
                    cfg.header_cache,
                    cfg.header_cache_entries,
                    cfg.mmap_cache_bytes,
                )));
                // The first process carries the shared text/data footprint;
                // the rest add their private resident set.
                let mem = cfg.per_worker_mem + if w == 0 { cfg.main_mem } else { 0 };
                let logic = SeqWorker::new(
                    Rc::clone(&cfg),
                    Rc::clone(&site),
                    listen,
                    Rc::clone(&caches),
                );
                let pid = sim.add_process(
                    ProcKind::Process,
                    None,
                    mem + cache_mem(&cfg),
                    format!("{}-mp-{w}", cfg.name),
                    Box::new(logic),
                );
                handle.server_pids.push(pid);
                handle.caches.push(caches);
            }
        }
        Architecture::Mt => {
            if !sim.kernel.cfg.os.kernel_threads {
                return Err(DeployError::NoKernelThreads);
            }
            let caches = Rc::new(RefCell::new(Caches::build(
                cfg.path_cache_entries,
                cfg.header_cache,
                cfg.header_cache_entries,
                cfg.mmap_cache_bytes,
            )));
            let group = sim.kernel.new_group();
            for w in 0..cfg.workers.max(1) {
                let mem = cfg.per_worker_mem
                    + if w == 0 {
                        cfg.main_mem + cache_mem(&cfg)
                    } else {
                        0
                    };
                let logic = SeqWorker::new(
                    Rc::clone(&cfg),
                    Rc::clone(&site),
                    listen,
                    Rc::clone(&caches),
                );
                let pid = sim.add_process(
                    ProcKind::Thread,
                    Some(group),
                    mem,
                    format!("{}-mt-{w}", cfg.name),
                    Box::new(logic),
                );
                handle.server_pids.push(pid);
            }
            handle.caches.push(caches);
        }
    }
    Ok(handle)
}
