//! The served site: the mapping between request tokens and files.
//!
//! Workload generators produce a list of [`FileSpec`]s; [`Site::build`]
//! creates the corresponding files in the simulated filesystem and
//! pre-renders the information servers need (header lengths, MIME types).
//! Clients request file *i* by sending token *i* on a connection; the
//! server resolves the token through its pathname-translation cache (or
//! pays translation cost on a miss).

use std::rc::Rc;

use flash_http::mime;
use flash_http::response::{ResponseHeader, Status};
use flash_simcore::time::Nanos;
use flash_simos::kernel::Kernel;
use flash_simos::FileId;

/// How a file is produced when requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// Static content read from disk.
    Static,
    /// Dynamic content produced by a CGI application.
    Cgi {
        /// CPU/compute time the application spends per request.
        compute_ns: Nanos,
        /// Response body size it produces.
        output_bytes: u64,
    },
}

/// Specification of one site file, as produced by workload generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSpec {
    /// URL path ("/users/bob/index.html").
    pub path: String,
    /// Body size in bytes (for CGI, the size of the generated output).
    pub size: u64,
    /// Static or CGI.
    pub kind: FileKind,
}

impl FileSpec {
    /// A static file.
    pub fn file(path: impl Into<String>, size: u64) -> Self {
        FileSpec {
            path: path.into(),
            size,
            kind: FileKind::Static,
        }
    }
}

/// One resolvable site entry (a [`FileSpec`] realized in the filesystem).
#[derive(Debug, Clone)]
pub struct SiteFile {
    /// URL path.
    pub path: String,
    /// Body size in bytes.
    pub size: u64,
    /// Backing file (static files only; CGI output is not file-backed).
    pub fid: Option<FileId>,
    /// Pathname component count (drives translation cost).
    pub components: u32,
    /// Content kind.
    pub kind: FileKind,
    /// Bytes of a padded (aligned) response header for this file.
    pub hdr_len_aligned: u64,
    /// Bytes of an unpadded response header for this file.
    pub hdr_len_raw: u64,
}

/// The full site: index by request token.
#[derive(Debug)]
pub struct Site {
    files: Vec<SiteFile>,
}

impl Site {
    /// Realizes `specs` in the kernel's filesystem and returns the site.
    pub fn build(kernel: &mut Kernel, specs: &[FileSpec]) -> Rc<Site> {
        let files = specs
            .iter()
            .map(|spec| {
                let components = spec
                    .path
                    .split('/')
                    .filter(|s| !s.is_empty())
                    .count()
                    .max(1) as u32;
                let fid = match spec.kind {
                    FileKind::Static => Some(kernel.fs.create(spec.size, components)),
                    FileKind::Cgi { .. } => None,
                };
                let ctype = mime::content_type(&spec.path);
                // The real servers stamp Last-Modified on every 200
                // with a known mtime, so the simulated header length
                // must include the field too; IMF-fixdate is
                // fixed-width, so any mtime gives the right length.
                let hdr_len_aligned = ResponseHeader::build_with_last_modified(
                    Status::Ok,
                    ctype,
                    spec.size,
                    true,
                    true,
                    0,
                )
                .len() as u64;
                let hdr_len_raw = ResponseHeader::build_with_last_modified(
                    Status::Ok,
                    ctype,
                    spec.size,
                    true,
                    false,
                    0,
                )
                .len() as u64;
                SiteFile {
                    path: spec.path.clone(),
                    size: spec.size,
                    fid,
                    components,
                    kind: spec.kind.clone(),
                    hdr_len_aligned,
                    hdr_len_raw,
                }
            })
            .collect();
        Rc::new(Site { files })
    }

    /// Site entry for a request token.
    pub fn file(&self, token: u64) -> &SiteFile {
        &self.files[token as usize]
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the site has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total static bytes (the dataset size).
    pub fn dataset_bytes(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.kind == FileKind::Static)
            .map(|f| f.size)
            .sum()
    }

    /// Approximate request size in bytes for token `t` (method + path +
    /// headers), used by client agents.
    pub fn request_bytes(&self, token: u64) -> u64 {
        140 + self.files[token as usize].path.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_simos::MachineConfig;

    #[test]
    fn build_realizes_static_files() {
        let mut k = Kernel::new(MachineConfig::freebsd());
        let site = Site::build(
            &mut k,
            &[
                FileSpec::file("/a/b.html", 10_000),
                FileSpec::file("/c.gif", 500),
            ],
        );
        assert_eq!(site.len(), 2);
        assert_eq!(site.dataset_bytes(), 10_500);
        let f0 = site.file(0);
        assert_eq!(f0.components, 2);
        assert!(f0.fid.is_some());
        assert_eq!(k.fs.len(), 2);
    }

    #[test]
    fn cgi_files_have_no_backing_fid() {
        let mut k = Kernel::new(MachineConfig::freebsd());
        let site = Site::build(
            &mut k,
            &[FileSpec {
                path: "/cgi-bin/report".into(),
                size: 8_192,
                kind: FileKind::Cgi {
                    compute_ns: 1_000_000,
                    output_bytes: 8_192,
                },
            }],
        );
        assert!(site.file(0).fid.is_none());
        assert_eq!(k.fs.len(), 0);
        assert_eq!(site.dataset_bytes(), 0);
    }

    #[test]
    fn header_lengths_are_plausible_and_aligned() {
        let mut k = Kernel::new(MachineConfig::freebsd());
        let site = Site::build(&mut k, &[FileSpec::file("/x.html", 12_345)]);
        let f = site.file(0);
        assert_eq!(f.hdr_len_aligned % 32, 0);
        assert!(f.hdr_len_raw > 100 && f.hdr_len_raw < 400);
        assert!(f.hdr_len_aligned >= f.hdr_len_raw);
    }

    #[test]
    fn request_bytes_scale_with_path() {
        let mut k = Kernel::new(MachineConfig::freebsd());
        let site = Site::build(
            &mut k,
            &[
                FileSpec::file("/a", 1),
                FileSpec::file("/a/very/long/path/to/content.html", 1),
            ],
        );
        assert!(site.request_bytes(1) > site.request_bytes(0));
    }
}
