//! AMPED helper processes and the pipe protocol they speak (§3.4, §5.1).
//!
//! Helpers are separate processes (chosen over kernel threads for
//! portability, §5.1) that perform the operations that may block on disk:
//! pathname translation (`stat`) and bringing file pages into memory
//! (touching an `mmap`'d range). They wait synchronously on a job pipe,
//! handle one job at a time, and return only a *completion notification* —
//! never data — over a shared done-pipe, minimizing IPC (§5.1).

use flash_simos::kernel::Kernel;
use flash_simos::syscall::{Blocking, Completion, PipeMsg};
use flash_simos::{FileId, Pid, PipeId, ProcessLogic};

/// Job: translate a pathname (helper performs `stat`).
pub const OP_TRANSLATE: u32 = 1;
/// Job: read a file chunk into the page cache (helper touches pages).
pub const OP_CHUNK: u32 = 2;
/// Job: run a CGI request (sent to a CGI application process).
pub const OP_CGI: u32 = 3;
/// Notification: translation finished.
pub const OP_TRANSLATE_DONE: u32 = 11;
/// Notification: chunk read finished.
pub const OP_CHUNK_DONE: u32 = 12;
/// Notification: CGI output ready.
pub const OP_CGI_DONE: u32 = 13;

/// Packs a worker (helper/CGI slot) index and connection id into the `a`
/// operand so completions identify both.
pub fn pack_a(slot: usize, conn: u32) -> u64 {
    ((slot as u64) << 40) | conn as u64
}

/// Inverse of [`pack_a`].
pub fn unpack_a(a: u64) -> (usize, u32) {
    ((a >> 40) as usize, (a & 0xFFFF_FFFF) as u32)
}

/// Packs a byte offset (< 2^43) and length (< 2^21) into the `c` operand.
pub fn pack_c(offset: u64, len: u64) -> u64 {
    debug_assert!(len < (1 << 21));
    (offset << 21) | len
}

/// Inverse of [`pack_c`].
pub fn unpack_c(c: u64) -> (u64, u64) {
    (c >> 21, c & ((1 << 21) - 1))
}

/// The logic of one helper process.
pub struct HelperLogic {
    job_pipe: PipeId,
    done_pipe: PipeId,
    current: Option<PipeMsg>,
}

impl HelperLogic {
    /// Creates a helper reading jobs from `job_pipe` and acknowledging on
    /// `done_pipe`.
    pub fn new(job_pipe: PipeId, done_pipe: PipeId) -> Self {
        HelperLogic {
            job_pipe,
            done_pipe,
            current: None,
        }
    }
}

impl ProcessLogic for HelperLogic {
    fn on_run(&mut self, _pid: Pid, k: &mut Kernel, completion: Completion) {
        match completion {
            // Idle (startup or just acknowledged): wait for the next job.
            Completion::Start | Completion::PipeSent => {
                k.sys_pipe_recv(self.job_pipe, Blocking::Yes);
            }
            // A job arrived: perform the potentially blocking operation.
            Completion::PipeMsg { msg, .. } => {
                self.current = Some(msg);
                match msg.op {
                    OP_TRANSLATE => k.sys_stat(FileId(msg.b as u32)),
                    OP_CHUNK => {
                        let (offset, len) = unpack_c(msg.c);
                        // Touch pages only (no copy): the server transmits
                        // straight from the shared mapping (§3.4).
                        k.sys_file_read(FileId(msg.b as u32), offset, len, false);
                    }
                    other => panic!("helper received unknown op {other}"),
                }
            }
            // Blocking operation finished: notify the server.
            Completion::Stated { .. } => {
                let job = self.current.take().expect("completion without a job");
                k.sys_pipe_send(
                    self.done_pipe,
                    PipeMsg {
                        op: OP_TRANSLATE_DONE,
                        ..job
                    },
                );
            }
            Completion::FileRead { .. } => {
                let job = self.current.take().expect("completion without a job");
                k.sys_pipe_send(
                    self.done_pipe,
                    PipeMsg {
                        op: OP_CHUNK_DONE,
                        ..job
                    },
                );
            }
            other => panic!("helper got unexpected completion {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_round_trips() {
        for (slot, conn) in [(0usize, 0u32), (7, 12345), (255, u32::MAX)] {
            assert_eq!(unpack_a(pack_a(slot, conn)), (slot, conn));
        }
    }

    #[test]
    fn pack_c_round_trips() {
        for (off, len) in [
            (0u64, 0u64),
            (150 * 1024 * 1024, 65536),
            (1 << 40, (1 << 21) - 1),
        ] {
            assert_eq!(unpack_c(pack_c(off, len)), (off, len));
        }
    }
}
