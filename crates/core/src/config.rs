//! Server configuration and the architecture presets from the paper.
//!
//! §6 of the paper builds four servers from the same code base — AMPED
//! ("Flash"), SPED ("Flash-SPED"), MP ("Flash-MP") and MT ("Flash-MT") —
//! plus external baselines Apache 1.3.1 (MP, without Flash's aggressive
//! optimizations) and Zeus 1.30 (SPED, with its own quirks). Each is a
//! [`ServerConfig`] preset here. User-level CPU costs (parsing, header
//! generation) are architecture-independent because every server shares
//! the code base; kernel costs come from the OS profile.

use flash_simcore::time::Nanos;

/// Concurrency architecture (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// Asymmetric Multi-Process Event-Driven: one event-driven process
    /// plus helper processes for blocking disk operations.
    Amped,
    /// Single-Process Event-Driven.
    Sped,
    /// One process per concurrent request, blocking calls.
    Mp,
    /// One kernel thread per concurrent request, shared address space.
    Mt,
}

/// Complete description of a server to deploy in the simulator.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Display name used in experiment output ("Flash", "Apache", ...).
    pub name: String,
    /// Concurrency architecture.
    pub arch: Architecture,
    /// MP processes / MT threads / SPED event processes.
    pub workers: usize,
    /// AMPED helper-pool size (ignored by other architectures).
    pub helpers: usize,
    /// Pathname-translation cache entries (0 disables; §5.2).
    pub path_cache_entries: usize,
    /// Response-header cache on/off (§5.3).
    pub header_cache: bool,
    /// Response-header cache entry bound (independent of the pathname
    /// cache so the Figure 11 breakdown can toggle them separately).
    pub header_cache_entries: usize,
    /// Mapped-file cache capacity in bytes (0 disables; §5.4).
    pub mmap_cache_bytes: u64,
    /// Serve file data via `mmap` (Flash/Zeus) or `read()`+copy (Apache).
    pub use_mmap: bool,
    /// Check `mincore` before sending and route misses to helpers
    /// (AMPED); off for SPED, which simply risks blocking.
    pub use_mincore: bool,
    /// §5.7 fallback for OSes without a usable `mincore`: predict
    /// residency from the server's own mapped-file LRU instead of asking
    /// the kernel. Cheaper per request than `mincore` but can mispredict
    /// (an occasional blocking fault) under memory pressure.
    pub residency_heuristic: bool,
    /// §5.5 byte-position alignment padding of response headers.
    pub aligned_headers: bool,
    /// Zeus's small-document priority: service ready connections with the
    /// least remaining data first (discussed around Figure 9).
    pub small_doc_priority: bool,
    /// Resident memory of the main process (event loop) or of each MP
    /// worker's shared text/data.
    pub main_mem: u64,
    /// Additional resident memory per worker (MP process / MT stack).
    pub per_worker_mem: u64,
    /// Resident memory per helper process.
    pub helper_mem: u64,
    /// User CPU to parse a request.
    pub parse_ns: Nanos,
    /// User CPU for per-request bookkeeping (logging, event loop).
    pub request_user_ns: Nanos,
    /// User CPU to generate a response header (on header-cache miss).
    pub header_gen_ns: Nanos,
    /// Lock acquire+release cost for shared caches (MT only).
    pub lock_ns: Nanos,
    /// Extra per-request user CPU modelling a less optimized code base
    /// (Apache).
    pub extra_request_ns: Nanos,
    /// Number of persistent CGI application processes to pre-spawn
    /// (event-driven architectures only).
    pub cgi_apps: usize,
}

impl ServerConfig {
    /// Flash: the AMPED server with all optimizations (the paper's
    /// flagship configuration: 32 MB mapped-file cache, 6000-entry
    /// pathname cache).
    pub fn flash() -> Self {
        ServerConfig {
            name: "Flash".into(),
            arch: Architecture::Amped,
            workers: 1,
            helpers: 32,
            path_cache_entries: 6000,
            header_cache: true,
            header_cache_entries: 6000,
            mmap_cache_bytes: 32 * 1024 * 1024,
            use_mmap: true,
            use_mincore: true,
            residency_heuristic: false,
            aligned_headers: true,
            small_doc_priority: false,
            main_mem: 1_200_000,
            per_worker_mem: 0,
            helper_mem: 128 * 1024,
            parse_ns: 45_000,
            request_user_ns: 55_000,
            header_gen_ns: 45_000,
            lock_ns: 0,
            extra_request_ns: 0,
            cgi_apps: 0,
        }
    }

    /// Flash-SPED: same code, no helpers, no residency checks — blocks
    /// on any disk access.
    pub fn flash_sped() -> Self {
        ServerConfig {
            name: "Flash-SPED".into(),
            arch: Architecture::Sped,
            helpers: 0,
            use_mincore: false,
            ..Self::flash()
        }
    }

    /// Flash-MP: 32 processes, each with private (smaller) caches —
    /// 2 MB mapped-file cache and 200 pathname entries per process.
    pub fn flash_mp() -> Self {
        ServerConfig {
            name: "Flash-MP".into(),
            arch: Architecture::Mp,
            workers: 32,
            helpers: 0,
            path_cache_entries: 200,
            header_cache_entries: 200,
            mmap_cache_bytes: 2 * 1024 * 1024,
            use_mincore: false,
            main_mem: 1_200_000,
            per_worker_mem: 300_000,
            ..Self::flash()
        }
    }

    /// Flash-MT: 32 kernel threads sharing one cache set, with lock
    /// costs on shared state.
    pub fn flash_mt() -> Self {
        ServerConfig {
            name: "Flash-MT".into(),
            arch: Architecture::Mt,
            workers: 32,
            helpers: 0,
            use_mincore: false,
            per_worker_mem: 96 * 1024,
            lock_ns: 4_000,
            ..Self::flash()
        }
    }

    /// Apache-like baseline: MP architecture without the aggressive
    /// optimizations — no caches, `read()`+copy instead of `mmap`,
    /// unaligned headers, and a less tuned per-request code path.
    pub fn apache_like() -> Self {
        ServerConfig {
            name: "Apache".into(),
            arch: Architecture::Mp,
            workers: 32,
            helpers: 0,
            path_cache_entries: 0,
            header_cache: false,
            header_cache_entries: 0,
            mmap_cache_bytes: 0,
            use_mmap: false,
            use_mincore: false,
            residency_heuristic: false,
            aligned_headers: false,
            small_doc_priority: false,
            main_mem: 1_600_000,
            per_worker_mem: 500_000,
            helper_mem: 0,
            parse_ns: 70_000,
            request_user_ns: 70_000,
            header_gen_ns: 80_000,
            lock_ns: 0,
            extra_request_ns: 70_000,
            cgi_apps: 0,
        }
    }

    /// Zeus-like baseline: optimized SPED server with the two quirks the
    /// paper observed — unpadded (misaligned) response headers and
    /// small-document priority. `workers` is 1 for the synthetic tests
    /// and 2 for the trace tests, per the vendor's advice quoted in §6.
    pub fn zeus_like(workers: usize) -> Self {
        ServerConfig {
            name: "Zeus".into(),
            arch: Architecture::Sped,
            workers,
            helpers: 0,
            use_mincore: false,
            aligned_headers: false,
            small_doc_priority: true,
            ..Self::flash()
        }
    }

    /// Flash-Heuristic: the §5.7 variant for operating systems without a
    /// usable `mincore` — residency is predicted from the mapped-file
    /// cache itself, with helpers still absorbing predicted misses.
    pub fn flash_heuristic() -> Self {
        ServerConfig {
            name: "Flash-Heuristic".into(),
            use_mincore: false,
            residency_heuristic: true,
            ..Self::flash()
        }
    }

    /// The fixed user CPU on the fast path (all caches hot), used by
    /// calibration tests.
    pub fn fast_path_user_ns(&self) -> Nanos {
        self.parse_ns + self.request_user_ns + self.extra_request_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_architectures() {
        assert_eq!(ServerConfig::flash().arch, Architecture::Amped);
        assert_eq!(ServerConfig::flash_sped().arch, Architecture::Sped);
        assert_eq!(ServerConfig::flash_mp().arch, Architecture::Mp);
        assert_eq!(ServerConfig::flash_mt().arch, Architecture::Mt);
        assert_eq!(ServerConfig::apache_like().arch, Architecture::Mp);
        assert_eq!(ServerConfig::zeus_like(2).arch, Architecture::Sped);
    }

    #[test]
    fn flash_has_helpers_and_mincore_sped_does_not() {
        let f = ServerConfig::flash();
        let s = ServerConfig::flash_sped();
        assert!(f.helpers > 0 && f.use_mincore);
        assert!(s.helpers == 0 && !s.use_mincore);
    }

    #[test]
    fn mp_caches_are_smaller_replicas() {
        let f = ServerConfig::flash();
        let mp = ServerConfig::flash_mp();
        assert!(mp.path_cache_entries < f.path_cache_entries);
        assert!(mp.mmap_cache_bytes < f.mmap_cache_bytes);
        assert_eq!(mp.workers, 32);
    }

    #[test]
    fn apache_lacks_every_optimization() {
        let a = ServerConfig::apache_like();
        assert_eq!(a.path_cache_entries, 0);
        assert!(!a.header_cache);
        assert_eq!(a.mmap_cache_bytes, 0);
        assert!(!a.use_mmap);
        assert!(!a.aligned_headers);
        assert!(a.fast_path_user_ns() > ServerConfig::flash().fast_path_user_ns());
    }

    #[test]
    fn zeus_quirks_match_paper() {
        let z = ServerConfig::zeus_like(1);
        assert!(!z.aligned_headers, "byte-alignment problem (§5.5, Fig 7)");
        assert!(z.small_doc_priority, "small-document priority (Fig 9)");
        assert_eq!(ServerConfig::zeus_like(2).workers, 2);
    }
}
