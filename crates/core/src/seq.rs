//! The sequential blocking worker: MP and MT servers (§3.1, §3.2).
//!
//! Each worker executes the basic request-processing steps (§2) in order
//! with blocking system calls, handling one request at a time. Deployed
//! as N full processes it is the MP architecture (Flash-MP, Apache); as N
//! kernel threads sharing one cache set it is the MT architecture
//! (Flash-MT). The OS overlaps disk, CPU and network by switching among
//! workers — at context-switch and memory cost.
//!
//! The Apache-like baseline runs the same worker with every cache
//! disabled and the `read()`+copy (non-mmap) send path.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use flash_simos::kernel::{Kernel, SendSrc};
use flash_simos::syscall::{Blocking, Completion};
use flash_simos::{ConnId, FileId, ListenId, Pid, ProcessLogic};

use crate::caches::{Caches, HeaderEntry, PathEntry, CHUNK_BYTES};
use crate::config::ServerConfig;
use crate::eventloop::KEEP_ALIVE_BIT;
use crate::site::{FileKind, Site};

/// Worker state across blocking syscalls.
#[derive(Debug)]
enum SeqPhase {
    /// Blocked in `accept`.
    Accepting,
    /// Blocked reading a request.
    Reading(ConnId),
    /// Blocked in `stat` (pathname translation).
    Translating(ConnId),
    /// Blocked in `read(2)` filling the copy buffer (non-mmap path).
    FillingBuffer(ConnId),
    /// Blocked in (or about to retry) `writev`.
    Sending(ConnId),
    /// Blocked in `close`.
    Closing(ConnId),
}

/// Per-request scratch (the worker serves one request at a time).
#[derive(Debug, Default)]
struct SeqCtx {
    token: u64,
    keep_alive: bool,
    fid: Option<FileId>,
    size: u64,
    hdr_left: u64,
    aligned: bool,
    offset: u64,
    /// Bytes already `read()` into the user buffer (non-mmap path).
    buffered: u64,
    pending_tokens: VecDeque<u64>,
}

/// One sequential worker (an MP process or an MT thread).
pub struct SeqWorker {
    cfg: Rc<ServerConfig>,
    site: Rc<Site>,
    listen: ListenId,
    /// Private caches (MP) or the shared cache set (MT).
    caches: Rc<RefCell<Caches>>,
    phase: SeqPhase,
    ctx: SeqCtx,
}

impl SeqWorker {
    /// Creates a worker; for MT all workers share one `caches`.
    pub fn new(
        cfg: Rc<ServerConfig>,
        site: Rc<Site>,
        listen: ListenId,
        caches: Rc<RefCell<Caches>>,
    ) -> Self {
        SeqWorker {
            cfg,
            site,
            listen,
            caches,
            phase: SeqPhase::Accepting,
            ctx: SeqCtx::default(),
        }
    }

    /// Lock cost for one shared-cache access (MT only; 0 elsewhere).
    fn lock(&self, k: &mut Kernel) {
        if self.cfg.lock_ns > 0 {
            k.cpu(self.cfg.lock_ns);
        }
    }

    /// Starts a parsed request; returns the next phase after issuing the
    /// appropriate syscall.
    fn begin_request(&mut self, k: &mut Kernel, conn: ConnId, token: u64) -> SeqPhase {
        k.cpu(self.cfg.parse_ns + self.cfg.request_user_ns + self.cfg.extra_request_ns);
        let keep_alive = token & KEEP_ALIVE_BIT != 0;
        let token = token & !KEEP_ALIVE_BIT;
        let f = self.site.file(token);
        self.ctx.token = token;
        self.ctx.keep_alive = keep_alive;
        self.ctx.offset = 0;
        self.ctx.buffered = 0;
        if let FileKind::Cgi { .. } = f.kind {
            // Sequential workers have no CGI plumbing in this build; they
            // answer with a fixed-size error page (the paper's evaluation
            // is static-only for MP/MT). See DESIGN.md.
            self.caches.borrow_mut().stats.cgi_requests += 1;
            self.ctx.fid = None;
            self.ctx.size = 512;
            self.ctx.hdr_left = 160;
            self.ctx.aligned = self.cfg.aligned_headers;
            k.cpu(self.cfg.header_gen_ns);
            return self.send_step(k, conn);
        }
        self.lock(k);
        let hit = {
            let mut caches = self.caches.borrow_mut();
            match caches.path.as_mut() {
                Some(cache) => {
                    let hit = cache.get(&token).cloned();
                    if hit.is_some() {
                        caches.stats.path_hits += 1;
                    } else {
                        caches.stats.path_misses += 1;
                    }
                    hit
                }
                None => None,
            }
        };
        match hit {
            Some(entry) => {
                self.setup_response(k, entry.fid, entry.size);
                self.send_step(k, conn)
            }
            None => {
                // Blocking translation: only this worker stalls on a
                // metadata miss.
                k.sys_stat(f.fid.expect("static file"));
                SeqPhase::Translating(conn)
            }
        }
    }

    fn setup_response(&mut self, k: &mut Kernel, fid: FileId, size: u64) {
        let f = self.site.file(self.ctx.token);
        let aligned = self.cfg.aligned_headers;
        let len = if aligned {
            f.hdr_len_aligned
        } else {
            f.hdr_len_raw
        };
        self.lock(k);
        let key = (self.ctx.token, self.ctx.keep_alive);
        let entry = {
            let mut caches = self.caches.borrow_mut();
            let Caches { header, stats, .. } = &mut *caches;
            match header.as_mut() {
                Some(cache) => match cache.get(&key) {
                    Some(e) => {
                        stats.header_hits += 1;
                        *e
                    }
                    None => {
                        stats.header_misses += 1;
                        k.cpu(self.cfg.header_gen_ns);
                        let e = HeaderEntry { len, aligned };
                        cache.insert(key, e);
                        e
                    }
                },
                None => {
                    k.cpu(self.cfg.header_gen_ns);
                    HeaderEntry { len, aligned }
                }
            }
        };
        self.ctx.fid = Some(fid);
        self.ctx.size = size;
        self.ctx.hdr_left = entry.len;
        self.ctx.aligned = entry.aligned;
    }

    /// Issues the next step of the response: a buffer fill (`read(2)`
    /// path), or a blocking `writev`. Returns the phase to wait in.
    fn send_step(&mut self, k: &mut Kernel, conn: ConnId) -> SeqPhase {
        let remaining = self.ctx.size - self.ctx.offset.min(self.ctx.size);
        let chunk = remaining.min(CHUNK_BYTES);
        let Some(fid) = self.ctx.fid else {
            // CGI error page / memory-backed body.
            k.sys_send(
                conn,
                self.ctx.hdr_left,
                SendSrc::Mem { len: chunk },
                self.ctx.aligned,
                Blocking::Yes,
            );
            return SeqPhase::Sending(conn);
        };
        if chunk == 0 {
            // Only header bytes left.
            k.sys_send(
                conn,
                self.ctx.hdr_left,
                SendSrc::Mem { len: 0 },
                self.ctx.aligned,
                Blocking::Yes,
            );
            return SeqPhase::Sending(conn);
        }
        if !self.cfg.use_mmap {
            // Apache path: read() into a user buffer (may block on disk),
            // then write from memory.
            if self.ctx.buffered == 0 {
                k.sys_file_read(fid, self.ctx.offset, chunk, true);
                return SeqPhase::FillingBuffer(conn);
            }
            let n = self.ctx.buffered.min(chunk);
            k.sys_send(
                conn,
                self.ctx.hdr_left,
                SendSrc::Mem { len: n },
                self.ctx.aligned,
                Blocking::Yes,
            );
            return SeqPhase::Sending(conn);
        }
        // mmap path with the §5.4 chunk cache; the writev may block on a
        // page fault — acceptable here, only this worker stalls.
        let os_mmap = k.cfg.os.mmap_ns;
        let os_munmap = k.cfg.os.munmap_ns;
        self.lock(k);
        {
            let mut caches = self.caches.borrow_mut();
            match caches.mmap.as_mut() {
                Some(mc) => {
                    if mc.hit(fid, self.ctx.offset) {
                        caches.stats.mmap_hits += 1;
                    } else {
                        let evicted = mc.map(fid, self.ctx.offset, self.ctx.size);
                        caches.stats.mmap_misses += 1;
                        caches.stats.unmaps += u64::from(evicted);
                        k.cpu(os_mmap + u64::from(evicted) * os_munmap);
                    }
                }
                None => k.cpu(os_mmap + os_munmap),
            }
        }
        k.sys_send(
            conn,
            self.ctx.hdr_left,
            SendSrc::File {
                file: fid,
                offset: self.ctx.offset,
                len: chunk,
            },
            self.ctx.aligned,
            Blocking::Yes,
        );
        SeqPhase::Sending(conn)
    }

    /// A response is fully sent: log it and move on.
    fn finish_response(&mut self, k: &mut Kernel, conn: ConnId) -> SeqPhase {
        k.mark_response_boundary(conn);
        self.caches.borrow_mut().stats.requests_done += 1;
        if self.ctx.keep_alive {
            if let Some(t) = self.ctx.pending_tokens.pop_front() {
                return self.begin_request(k, conn, t);
            }
            k.sys_conn_read(conn, Blocking::Yes);
            SeqPhase::Reading(conn)
        } else {
            k.sys_close(conn);
            SeqPhase::Closing(conn)
        }
    }
}

impl ProcessLogic for SeqWorker {
    fn on_run(&mut self, _pid: Pid, k: &mut Kernel, completion: Completion) {
        self.phase = match (&self.phase, completion) {
            // Start of life, or back from a close: accept the next
            // connection (blocking).
            (SeqPhase::Accepting, Completion::Accepted(conn)) => {
                k.sys_conn_read(conn, Blocking::Yes);
                SeqPhase::Reading(conn)
            }
            (SeqPhase::Accepting, _) => {
                k.sys_accept(self.listen, Blocking::Yes);
                SeqPhase::Accepting
            }
            (SeqPhase::Reading(conn), Completion::ConnRead { bytes, tokens, .. }) => {
                let conn = *conn;
                if bytes == 0 {
                    // Peer closed (persistent connection ended).
                    k.sys_close(conn);
                    SeqPhase::Closing(conn)
                } else if tokens.is_empty() {
                    // Partial request: keep reading.
                    k.sys_conn_read(conn, Blocking::Yes);
                    SeqPhase::Reading(conn)
                } else {
                    self.ctx.pending_tokens.extend(tokens);
                    let t = self.ctx.pending_tokens.pop_front().expect("nonempty");
                    self.begin_request(k, conn, t)
                }
            }
            (SeqPhase::Translating(conn), Completion::Stated { file }) => {
                let conn = *conn;
                let size = self.site.file(self.ctx.token).size;
                let fid = file;
                self.lock(k);
                {
                    let mut caches = self.caches.borrow_mut();
                    if let Some(cache) = caches.path.as_mut() {
                        cache.insert(self.ctx.token, PathEntry { fid, size });
                    }
                }
                self.setup_response(k, fid, size);
                self.send_step(k, conn)
            }
            (SeqPhase::FillingBuffer(conn), Completion::FileRead { bytes, .. }) => {
                let conn = *conn;
                self.ctx.buffered = bytes;
                self.send_step(k, conn)
            }
            (
                SeqPhase::Sending(conn),
                Completion::Written {
                    hdr_bytes,
                    body_bytes,
                    ..
                },
            ) => {
                let conn = *conn;
                self.ctx.hdr_left -= hdr_bytes;
                self.ctx.offset += body_bytes;
                if self.ctx.buffered > 0 {
                    self.ctx.buffered -= body_bytes.min(self.ctx.buffered);
                }
                if self.ctx.hdr_left == 0 && self.ctx.offset >= self.ctx.size {
                    self.finish_response(k, conn)
                } else {
                    self.send_step(k, conn)
                }
            }
            // A blocking write was parked on a full buffer and woken.
            (SeqPhase::Sending(conn), Completion::WouldBlock) => {
                let conn = *conn;
                self.send_step(k, conn)
            }
            (SeqPhase::Closing(conn), Completion::Closed(closed)) => {
                debug_assert_eq!(*conn, closed, "close completion for the wrong socket");
                self.ctx = SeqCtx::default();
                k.sys_accept(self.listen, Blocking::Yes);
                SeqPhase::Accepting
            }
            (phase, completion) => {
                panic!("SeqWorker: unexpected completion {completion:?} in phase {phase:?}")
            }
        };
    }
}
