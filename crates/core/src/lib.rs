//! The Flash web server (Pai, Druschel, Zwaenepoel; USENIX ATC 1999):
//! the AMPED architecture and its SPED/MP/MT siblings, built from one
//! code base, on top of the `flash-simos` simulated operating system.
//!
//! # Architecture map (paper §3 → modules)
//!
//! | Paper | Module |
//! |---|---|
//! | AMPED event loop + helpers (Fig. 5) | [`eventloop`], [`helper`] |
//! | SPED (Fig. 4) | [`eventloop`] with helpers disabled |
//! | MP (Fig. 2) / MT (Fig. 3) | [`seq`] |
//! | Pathname/header/mapped-file caches (§5.2–5.4) | [`caches`] |
//! | Byte-position alignment (§5.5) | `flash-http` + send paths |
//! | CGI handling (§5.6) | [`cgi`] |
//! | mincore residency testing (§5.7) | [`eventloop`] send path |
//!
//! Baselines: `ServerConfig::apache_like()` (MP without the aggressive
//! optimizations) and `ServerConfig::zeus_like()` (SPED with misaligned
//! headers and small-document priority).
//!
//! # Quick start
//!
//! ```
//! use std::rc::Rc;
//! use flash_core::{deploy, ServerConfig, Site, FileSpec};
//! use flash_simos::{MachineConfig, Simulation};
//!
//! let mut sim = Simulation::new(MachineConfig::freebsd());
//! let site = Site::build(&mut sim.kernel, &[FileSpec::file("/index.html", 8192)]);
//! let server = deploy(&mut sim, &ServerConfig::flash(), Rc::clone(&site)).unwrap();
//! assert_eq!(server.name, "Flash");
//! // Attach client agents (see `flash-workload`) and run the simulation.
//! ```

pub mod caches;
pub mod cgi;
pub mod config;
pub mod deploy;
pub mod eventloop;
pub mod helper;
pub mod seq;
pub mod site;

pub use caches::{CacheStats, Caches, CHUNK_BYTES};
pub use config::{Architecture, ServerConfig};
pub use deploy::{deploy, DeployError, ServerHandle};
pub use eventloop::KEEP_ALIVE_BIT;
pub use site::{FileKind, FileSpec, Site, SiteFile};
