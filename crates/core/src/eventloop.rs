//! The event-driven server: AMPED ("Flash") and SPED from one code base.
//!
//! A single process multiplexes all connections through `select`,
//! processing one basic step (§2) per readiness event. The two
//! architectures differ in exactly two switches, mirroring the paper's
//! methodology of building every server from the same code:
//!
//! * **AMPED** (`use_mincore = true`, `helpers > 0`): before sending
//!   file data the server checks residency with `mincore`; misses are
//!   routed to helper processes, so the event loop itself never faults.
//!   Pathname-translation misses also go to helpers.
//! * **SPED** (`use_mincore = false`, `helpers = 0`): the server calls
//!   `stat` and `writev` directly and simply *blocks the whole process*
//!   when disk I/O is needed — the weakness the paper demonstrates.
//!
//! The Zeus-like baseline is SPED plus unaligned headers and
//! small-document priority (see `ServerConfig::zeus_like`).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use flash_simos::kernel::{Kernel, SendSrc};
use flash_simos::syscall::{Blocking, Completion, PipeMsg};
use flash_simos::{ConnId, Fd, FileId, ListenId, Pid, PipeId, ProcessLogic};

use crate::caches::{Caches, HeaderEntry, PathEntry, CHUNK_BYTES};
use crate::config::ServerConfig;
use crate::helper::{
    pack_a, pack_c, unpack_a, OP_CGI, OP_CGI_DONE, OP_CHUNK, OP_CHUNK_DONE, OP_TRANSLATE,
    OP_TRANSLATE_DONE,
};
use crate::site::{FileKind, Site};

/// Per-connection request state.
#[derive(Debug)]
struct Ctx {
    conn: ConnId,
    phase: Phase,
    token: u64,
    keep_alive: bool,
    fid: Option<FileId>,
    size: u64,
    hdr_left: u64,
    aligned: bool,
    offset: u64,
    want_write: bool,
    /// Set when a helper just brought the current chunk into memory, so
    /// the next send skips the residency check (crucial for the §5.7
    /// heuristic, which cannot observe the helper's page touches).
    resident_hint: bool,
    pending_tokens: VecDeque<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for (more) request bytes.
    ReadRequest,
    /// SPED: a blocking `stat` is in flight.
    Translating,
    /// AMPED: waiting for a helper or CGI app notification.
    WaitExternal,
    /// Transmitting header/body.
    Send,
    /// `close` issued.
    Closing,
}

/// Work items queued between syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Work {
    Accept,
    Read(u32),
    Continue(u32),
    Close(u32),
    DrainPipe,
    SendJob,
}

/// An external-worker slot (helper or CGI application process).
struct Slot {
    job_pipe: PipeId,
    busy: bool,
}

/// A queued job for an external worker.
#[derive(Debug, Clone, Copy)]
enum Job {
    Translate {
        conn: u32,
        token: u64,
    },
    Chunk {
        conn: u32,
        fid: FileId,
        offset: u64,
        len: u64,
    },
    Cgi {
        conn: u64,
        token: u64,
    },
}

/// The event-driven server process logic.
pub struct EventLoopServer {
    cfg: Rc<ServerConfig>,
    site: Rc<Site>,
    listen: ListenId,
    caches: Rc<RefCell<Caches>>,
    conns: BTreeMap<u32, Ctx>,
    work: VecDeque<Work>,
    cur_work: Option<Work>,
    helpers: Vec<Slot>,
    cgi_apps: Vec<Slot>,
    done_pipe: Option<PipeId>,
    pending_jobs: VecDeque<Job>,
    stat_conn: Option<u32>,
}

impl EventLoopServer {
    /// Creates the event-loop logic. `helpers`/`cgi_apps` are the job
    /// pipes of the already-spawned worker processes; `done_pipe` is the
    /// shared notification pipe (present iff there are workers).
    pub fn new(
        cfg: Rc<ServerConfig>,
        site: Rc<Site>,
        listen: ListenId,
        caches: Rc<RefCell<Caches>>,
        helpers: Vec<PipeId>,
        cgi_apps: Vec<PipeId>,
        done_pipe: Option<PipeId>,
    ) -> Self {
        assert!(
            (helpers.is_empty() && cgi_apps.is_empty()) == done_pipe.is_none(),
            "done pipe must exist exactly when external workers do"
        );
        EventLoopServer {
            cfg,
            site,
            listen,
            caches,
            conns: BTreeMap::new(),
            work: VecDeque::new(),
            cur_work: None,
            helpers: helpers
                .into_iter()
                .map(|p| Slot {
                    job_pipe: p,
                    busy: false,
                })
                .collect(),
            cgi_apps: cgi_apps
                .into_iter()
                .map(|p| Slot {
                    job_pipe: p,
                    busy: false,
                })
                .collect(),
            done_pipe,
            pending_jobs: VecDeque::new(),
            stat_conn: None,
        }
    }

    // -------------------------------------------------------------
    // Handle phase: interpret the last syscall's completion. No
    // syscalls may be issued here — only state updates, CPU charges
    // and work-queue pushes.
    // -------------------------------------------------------------

    fn handle(&mut self, k: &mut Kernel, completion: Completion) {
        match completion {
            Completion::Start => {}
            Completion::SelectReady(fds) => self.on_select_ready(fds),
            Completion::Accepted(conn) => {
                self.conns.insert(
                    conn.0,
                    Ctx {
                        conn,
                        phase: Phase::ReadRequest,
                        token: 0,
                        keep_alive: false,
                        fid: None,
                        size: 0,
                        hdr_left: 0,
                        aligned: true,
                        offset: 0,
                        want_write: false,
                        resident_hint: false,
                        pending_tokens: VecDeque::new(),
                    },
                );
                // Keep accepting until the queue drains (WouldBlock).
                self.work.push_back(Work::Accept);
            }
            Completion::WouldBlock => {
                // Which operation found nothing is in cur_work; readiness
                // interest (select) covers every case, so nothing to do
                // except note a full send buffer.
                if let Some(Work::Continue(c)) = self.cur_work {
                    if let Some(ctx) = self.conns.get_mut(&c) {
                        if ctx.phase == Phase::Send {
                            ctx.want_write = true;
                        }
                    }
                }
            }
            Completion::ConnRead {
                conn,
                bytes,
                tokens,
            } => self.on_conn_read(k, conn, bytes, tokens),
            Completion::Stated { .. } => {
                let c = self
                    .stat_conn
                    .take()
                    .expect("Stated completion without an in-flight stat");
                if let Some(ctx) = self.conns.get_mut(&c) {
                    debug_assert_eq!(ctx.phase, Phase::Translating);
                    let token = ctx.token;
                    self.finish_translation(k, c, token);
                    self.work.push_back(Work::Continue(c));
                }
            }
            Completion::Written {
                conn,
                hdr_bytes,
                body_bytes,
            } => self.on_written(k, conn, hdr_bytes, body_bytes),
            Completion::Closed(conn) => {
                self.conns.remove(&conn.0);
            }
            Completion::PipeMsg { msg, .. } => self.on_notification(k, msg),
            Completion::PipeSent => {
                // Job handed to a worker; nothing more to record.
            }
            other => panic!("event loop got unexpected completion {other:?}"),
        }
    }

    fn on_select_ready(&mut self, fds: Vec<Fd>) {
        let mut items: Vec<Work> = Vec::with_capacity(fds.len());
        for fd in fds {
            match fd {
                Fd::Listen(_) => items.push(Work::Accept),
                Fd::Pipe(_) => items.push(Work::DrainPipe),
                Fd::ConnRead(c) => items.push(Work::Read(c.0)),
                Fd::ConnWrite(c) => {
                    if let Some(ctx) = self.conns.get_mut(&c.0) {
                        ctx.want_write = false;
                        items.push(Work::Continue(c.0));
                    }
                }
            }
        }
        if self.cfg.small_doc_priority {
            // Zeus quirk: service connections with the least remaining
            // data first, which under load starves large documents.
            items.sort_by_key(|w| match w {
                Work::Accept | Work::DrainPipe | Work::SendJob => 0,
                Work::Read(_) => 1,
                Work::Continue(c) | Work::Close(c) => self
                    .conns
                    .get(c)
                    .map(|ctx| 2 + ctx.size.saturating_sub(ctx.offset))
                    .unwrap_or(2),
            });
        }
        self.work.extend(items);
    }

    fn on_conn_read(&mut self, k: &mut Kernel, conn: ConnId, bytes: u64, tokens: Vec<u64>) {
        let Some(ctx) = self.conns.get_mut(&conn.0) else {
            return;
        };
        if bytes == 0 {
            // Peer closed.
            self.work.push_back(Work::Close(conn.0));
            return;
        }
        if tokens.is_empty() {
            return; // partial request; select will fire again
        }
        ctx.pending_tokens.extend(tokens);
        if ctx.phase == Phase::ReadRequest {
            let t = ctx.pending_tokens.pop_front().expect("just extended");
            self.begin_request(k, conn.0, t);
            self.work.push_back(Work::Continue(conn.0));
        }
    }

    fn on_written(&mut self, k: &mut Kernel, conn: ConnId, hdr: u64, body: u64) {
        let Some(ctx) = self.conns.get_mut(&conn.0) else {
            return;
        };
        ctx.hdr_left -= hdr;
        ctx.offset += body;
        if ctx.hdr_left == 0 && ctx.offset >= ctx.size {
            k.mark_response_boundary(conn);
            self.caches.borrow_mut().stats.requests_done += 1;
            if ctx.keep_alive {
                if let Some(t) = ctx.pending_tokens.pop_front() {
                    self.begin_request(k, conn.0, t);
                    self.work.push_back(Work::Continue(conn.0));
                } else {
                    ctx.phase = Phase::ReadRequest;
                }
            } else {
                self.work.push_back(Work::Close(conn.0));
            }
        } else {
            self.work.push_back(Work::Continue(conn.0));
        }
    }

    fn on_notification(&mut self, k: &mut Kernel, msg: PipeMsg) {
        match msg.op {
            OP_TRANSLATE_DONE => {
                let (slot, conn) = unpack_a(msg.a);
                self.helpers[slot].busy = false;
                if self.conns.contains_key(&conn) {
                    self.finish_translation(k, conn, msg.c);
                    self.work.push_back(Work::Continue(conn));
                }
            }
            OP_CHUNK_DONE => {
                let (slot, conn) = unpack_a(msg.a);
                self.helpers[slot].busy = false;
                if let Some(ctx) = self.conns.get_mut(&conn) {
                    debug_assert_eq!(ctx.phase, Phase::WaitExternal);
                    ctx.phase = Phase::Send;
                    ctx.resident_hint = true;
                    self.work.push_back(Work::Continue(conn));
                }
            }
            OP_CGI_DONE => {
                let (slot, conn) = unpack_a(msg.a);
                self.cgi_apps[slot].busy = false;
                if let Some(ctx) = self.conns.get_mut(&conn) {
                    // Output is ready on the app pipe; send it like
                    // static content (but from memory, not a file).
                    ctx.size = msg.c;
                    ctx.fid = None;
                    k.cpu(self.cfg.header_gen_ns);
                    let f = self.site.file(msg.b);
                    ctx.hdr_left = if self.cfg.aligned_headers {
                        f.hdr_len_aligned
                    } else {
                        f.hdr_len_raw
                    };
                    ctx.aligned = self.cfg.aligned_headers;
                    ctx.phase = Phase::Send;
                    self.work.push_back(Work::Continue(conn));
                }
            }
            other => panic!("server got unknown notification op {other}"),
        }
        if !self.pending_jobs.is_empty() {
            self.work.push_front(Work::SendJob);
        }
        // There may be more notifications queued behind this one.
        self.work.push_back(Work::DrainPipe);
    }

    /// Starts processing a parsed request: resolves the token through the
    /// pathname cache or schedules translation. Handle-phase only.
    fn begin_request(&mut self, k: &mut Kernel, conn: u32, token: u64) {
        k.cpu(self.cfg.parse_ns + self.cfg.request_user_ns + self.cfg.extra_request_ns);
        // Clients encode "use a persistent connection" in the token's
        // high bit (the paper uses persistent connections in the WAN
        // experiment only).
        let keep_alive = token & KEEP_ALIVE_BIT != 0;
        let token = token & !KEEP_ALIVE_BIT;
        let f = self.site.file(token);
        {
            let ctx = self.conns.get_mut(&conn).expect("request on live conn");
            ctx.token = token;
            ctx.offset = 0;
            ctx.hdr_left = 0;
            ctx.keep_alive = keep_alive;
        }
        if let FileKind::Cgi { .. } = f.kind {
            self.caches.borrow_mut().stats.cgi_requests += 1;
            self.conns.get_mut(&conn).unwrap().phase = Phase::WaitExternal;
            self.pending_jobs.push_back(Job::Cgi {
                conn: conn as u64,
                token,
            });
            self.work.push_front(Work::SendJob);
            return;
        }
        // Pathname translation (§5.2).
        let hit = {
            let mut caches = self.caches.borrow_mut();
            match caches.path.as_mut() {
                Some(cache) => {
                    let hit = cache.get(&token).cloned();
                    if hit.is_some() {
                        caches.stats.path_hits += 1;
                    } else {
                        caches.stats.path_misses += 1;
                    }
                    hit
                }
                None => None,
            }
        };
        match hit {
            Some(entry) => {
                self.setup_response(k, conn, token, entry.fid, entry.size);
            }
            None => {
                if self.helpers.is_empty() {
                    // SPED: translate inline; the stat may block the whole
                    // process on a metadata read.
                    self.conns.get_mut(&conn).unwrap().phase = Phase::Translating;
                } else {
                    // AMPED: hand translation to a helper.
                    self.conns.get_mut(&conn).unwrap().phase = Phase::WaitExternal;
                    self.pending_jobs.push_back(Job::Translate { conn, token });
                    self.work.push_front(Work::SendJob);
                }
            }
        }
    }

    /// Records a finished translation in the cache and moves to sending.
    fn finish_translation(&mut self, k: &mut Kernel, conn: u32, token: u64) {
        let f = self.site.file(token);
        let fid = f.fid.expect("translated a static file");
        let size = f.size;
        {
            let mut caches = self.caches.borrow_mut();
            if let Some(cache) = caches.path.as_mut() {
                cache.insert(token, PathEntry { fid, size });
            }
        }
        self.setup_response(k, conn, token, fid, size);
    }

    /// Fills header state (cache or generation) and enters the send
    /// phase. Handle-phase only (charges CPU, no syscalls).
    fn setup_response(&mut self, k: &mut Kernel, conn: u32, token: u64, fid: FileId, size: u64) {
        let f = self.site.file(token);
        let ctx = self.conns.get_mut(&conn).expect("live conn");
        let key = (token, ctx.keep_alive);
        let aligned = self.cfg.aligned_headers;
        let fresh = HeaderEntry {
            len: if aligned {
                f.hdr_len_aligned
            } else {
                f.hdr_len_raw
            },
            aligned,
        };
        let entry = {
            let mut caches = self.caches.borrow_mut();
            let Caches { header, stats, .. } = &mut *caches;
            match header.as_mut() {
                Some(cache) => match cache.get(&key) {
                    Some(e) => {
                        stats.header_hits += 1;
                        *e
                    }
                    None => {
                        stats.header_misses += 1;
                        k.cpu(self.cfg.header_gen_ns);
                        cache.insert(key, fresh);
                        fresh
                    }
                },
                None => {
                    k.cpu(self.cfg.header_gen_ns);
                    fresh
                }
            }
        };
        let ctx = self.conns.get_mut(&conn).expect("live conn");
        ctx.fid = Some(fid);
        ctx.size = size;
        ctx.hdr_left = entry.len;
        ctx.aligned = entry.aligned;
        ctx.offset = 0;
        ctx.phase = Phase::Send;
    }

    // -------------------------------------------------------------
    // Issue phase: perform exactly one syscall (looping over queued
    // work until one is issued; falling back to select).
    // -------------------------------------------------------------

    fn issue(&mut self, k: &mut Kernel) {
        loop {
            let Some(w) = self.work.pop_front() else {
                self.cur_work = None;
                let interests = self.interests();
                k.sys_select(interests);
                return;
            };
            self.cur_work = Some(w);
            match w {
                Work::Accept => {
                    k.sys_accept(self.listen, Blocking::No);
                    return;
                }
                Work::Read(c) => {
                    if let Some(ctx) = self.conns.get(&c) {
                        if ctx.phase != Phase::Closing {
                            k.sys_conn_read(ctx.conn, Blocking::No);
                            return;
                        }
                    }
                }
                Work::DrainPipe => {
                    if let Some(p) = self.done_pipe {
                        k.sys_pipe_recv(p, Blocking::No);
                        return;
                    }
                }
                Work::Continue(c) => {
                    if self.advance_conn(k, c) {
                        return;
                    }
                }
                Work::Close(c) => {
                    if let Some(ctx) = self.conns.get_mut(&c) {
                        if ctx.phase != Phase::Closing {
                            ctx.phase = Phase::Closing;
                            k.sys_close(ctx.conn);
                            return;
                        }
                    }
                }
                Work::SendJob => {
                    if self.dispatch_job(k) {
                        return;
                    }
                }
            }
        }
    }

    /// Tries to advance a connection in the send pipeline; returns true
    /// if a syscall was issued.
    fn advance_conn(&mut self, k: &mut Kernel, c: u32) -> bool {
        let Some(ctx) = self.conns.get(&c) else {
            return false;
        };
        match ctx.phase {
            Phase::Translating => {
                if self.stat_conn.is_some() {
                    // One blocking stat at a time (it stalls the whole
                    // process anyway); retry after it finishes.
                    self.work.push_back(Work::Continue(c));
                    return false;
                }
                let token = ctx.token;
                let fid = self.site.file(token).fid.expect("static file");
                self.stat_conn = Some(c);
                k.sys_stat(fid);
                true
            }
            Phase::Send => self.advance_send(k, c),
            // Waiting on helpers/CGI or idle: nothing to issue.
            Phase::ReadRequest | Phase::WaitExternal | Phase::Closing => false,
        }
    }

    fn advance_send(&mut self, k: &mut Kernel, c: u32) -> bool {
        let (conn, fid, size, offset, hdr_left, aligned, hint) = {
            let ctx = self.conns.get_mut(&c).expect("live conn");
            let hint = std::mem::take(&mut ctx.resident_hint);
            (
                ctx.conn,
                ctx.fid,
                ctx.size,
                ctx.offset,
                ctx.hdr_left,
                ctx.aligned,
                hint,
            )
        };
        let chunk = (size - offset.min(size)).min(CHUNK_BYTES);
        let (Some(fid), true) = (fid, chunk > 0) else {
            // CGI output, or nothing left but header bytes: app-memory
            // send that can never fault on file pages.
            k.sys_send(
                conn,
                hdr_left,
                SendSrc::Mem { len: chunk },
                aligned,
                Blocking::No,
            );
            return true;
        };
        // AMPED: test residency before sending; a miss becomes helper
        // work instead of a page fault in the event loop (§3.4). Either
        // ask the kernel (`mincore`, §5.7) or — on systems without a
        // usable mincore — predict from the server's own mapped-file LRU
        // (the paper's §5.7 fallback). The prediction costs no syscall
        // but can be wrong, in which case the writev below blocks like
        // SPED would.
        if (self.cfg.use_mincore || self.cfg.residency_heuristic) && chunk > 0 && !hint {
            let resident = if self.cfg.use_mincore {
                let os = &k.cfg.os;
                let pages = chunk.div_ceil(flash_simos::PAGE_SIZE);
                k.cpu(os.mincore_ns + pages * os.mincore_per_page_ns);
                k.residency(fid, offset, chunk)
            } else {
                let mut caches = self.caches.borrow_mut();
                caches.mmap.as_mut().is_some_and(|m| m.hit(fid, offset))
            };
            let mut caches = self.caches.borrow_mut();
            if resident {
                caches.stats.mincore_resident += 1;
            } else {
                caches.stats.mincore_missing += 1;
                drop(caches);
                self.conns.get_mut(&c).unwrap().phase = Phase::WaitExternal;
                self.pending_jobs.push_back(Job::Chunk {
                    conn: c,
                    fid,
                    offset,
                    len: chunk,
                });
                return self.dispatch_job(k);
            }
        }
        // Mapped-file cache (§5.4).
        if chunk > 0 {
            let os_mmap = k.cfg.os.mmap_ns;
            let os_munmap = k.cfg.os.munmap_ns;
            let mut caches = self.caches.borrow_mut();
            match caches.mmap.as_mut() {
                Some(mc) => {
                    if mc.hit(fid, offset) {
                        caches.stats.mmap_hits += 1;
                    } else {
                        let evicted = mc.map(fid, offset, size);
                        caches.stats.mmap_misses += 1;
                        caches.stats.unmaps += u64::from(evicted);
                        k.cpu(os_mmap + u64::from(evicted) * os_munmap);
                    }
                }
                None => {
                    // No cache: map and lazily unmap around every send.
                    k.cpu(os_mmap + os_munmap);
                }
            }
        }
        k.sys_send(
            conn,
            hdr_left,
            SendSrc::File {
                file: fid,
                offset,
                len: chunk,
            },
            aligned,
            Blocking::No,
        );
        true
    }

    /// Sends the oldest pending job to an idle worker; returns true if a
    /// syscall was issued.
    fn dispatch_job(&mut self, k: &mut Kernel) -> bool {
        let Some(job) = self.pending_jobs.front().copied() else {
            return false;
        };
        let (slots, msg) = match job {
            Job::Translate { conn, token } => (
                &mut self.helpers,
                PipeMsg {
                    op: OP_TRANSLATE,
                    a: conn as u64,
                    // The helper needs the file to stat; the done handler
                    // needs the token back, so both travel in the message.
                    b: self.site.file(token).fid.expect("static").0 as u64,
                    c: token,
                },
            ),
            Job::Chunk {
                conn,
                fid,
                offset,
                len,
            } => (
                &mut self.helpers,
                PipeMsg {
                    op: OP_CHUNK,
                    a: conn as u64,
                    b: fid.0 as u64,
                    c: pack_c(offset, len),
                },
            ),
            Job::Cgi { conn, token } => (
                &mut self.cgi_apps,
                PipeMsg {
                    op: OP_CGI,
                    a: conn,
                    b: token,
                    c: 0,
                },
            ),
        };
        let Some(idx) = slots.iter().position(|s| !s.busy) else {
            return false; // all workers busy; retried on next notification
        };
        slots[idx].busy = true;
        let pipe = slots[idx].job_pipe;
        self.pending_jobs.pop_front();
        let msg = PipeMsg {
            a: pack_a(idx, (msg.a & 0xFFFF_FFFF) as u32),
            ..msg
        };
        self.caches.borrow_mut().stats.helper_jobs += 1;
        k.sys_pipe_send(pipe, msg);
        true
    }

    /// Select interest set: listen, the notification pipe, and every
    /// connection that is waiting to read or blocked on send-buffer space.
    fn interests(&self) -> Vec<Fd> {
        let mut v = Vec::with_capacity(self.conns.len() + 2);
        v.push(Fd::Listen(self.listen));
        if let Some(p) = self.done_pipe {
            v.push(Fd::Pipe(p));
        }
        for ctx in self.conns.values() {
            match ctx.phase {
                Phase::ReadRequest => v.push(Fd::ConnRead(ctx.conn)),
                Phase::Send if ctx.want_write => v.push(Fd::ConnWrite(ctx.conn)),
                _ => {}
            }
        }
        v
    }
}

/// Token flag requesting a persistent (keep-alive) connection.
pub const KEEP_ALIVE_BIT: u64 = 1 << 63;

impl ProcessLogic for EventLoopServer {
    fn on_run(&mut self, _pid: Pid, k: &mut Kernel, completion: Completion) {
        self.handle(k, completion);
        self.issue(k);
    }
}
