//! Persistent CGI application processes (§5.6).
//!
//! Dynamic requests are forwarded to auxiliary application processes over
//! pipes. Applications are persistent (FastCGI-style, §5.6), so process
//! creation is amortized; they can compute arbitrarily long without
//! affecting the server process. The application signals output-ready via
//! the done pipe; the server then transmits the output like static
//! content, reading from the pipe descriptor.

use std::rc::Rc;

use flash_simos::kernel::Kernel;
use flash_simos::syscall::{Blocking, Completion, PipeMsg};
use flash_simos::{Pid, PipeId, ProcessLogic};

use crate::helper::{OP_CGI, OP_CGI_DONE};
use crate::site::{FileKind, Site};

/// The logic of one persistent CGI application process.
pub struct CgiAppLogic {
    job_pipe: PipeId,
    done_pipe: PipeId,
    site: Rc<Site>,
    current: Option<PipeMsg>,
}

impl CgiAppLogic {
    /// Creates an application process serving jobs from `job_pipe`.
    pub fn new(job_pipe: PipeId, done_pipe: PipeId, site: Rc<Site>) -> Self {
        CgiAppLogic {
            job_pipe,
            done_pipe,
            site,
            current: None,
        }
    }
}

impl ProcessLogic for CgiAppLogic {
    fn on_run(&mut self, _pid: Pid, k: &mut Kernel, completion: Completion) {
        match completion {
            Completion::Start | Completion::PipeSent => {
                k.sys_pipe_recv(self.job_pipe, Blocking::Yes);
            }
            Completion::PipeMsg { msg, .. } => {
                assert_eq!(msg.op, OP_CGI, "CGI app received non-CGI job");
                self.current = Some(msg);
                let f = self.site.file(msg.b);
                let FileKind::Cgi { compute_ns, .. } = f.kind else {
                    panic!("CGI job for a static file {}", f.path);
                };
                // The application computes (or blocks on its own I/O) for
                // its configured time, then announces output.
                k.sys_sleep(compute_ns);
            }
            Completion::TimerFired => {
                let job = self.current.take().expect("timer without a job");
                let f = self.site.file(job.b);
                let FileKind::Cgi { output_bytes, .. } = f.kind else {
                    unreachable!("validated on receipt");
                };
                k.sys_pipe_send(
                    self.done_pipe,
                    PipeMsg {
                        op: OP_CGI_DONE,
                        a: job.a,
                        b: job.b,
                        c: output_bytes,
                    },
                );
            }
            other => panic!("CGI app got unexpected completion {other:?}"),
        }
    }
}
