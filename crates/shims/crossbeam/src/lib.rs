//! Minimal std-only shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with cloneable senders *and*
//! receivers (the part `std::sync::mpsc` lacks), implemented as a
//! mutex-protected queue with a condvar. Disconnection semantics
//! match the real crate: `recv` fails once the queue is empty and all
//! senders are gone; `send` fails once all receivers are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely (each message goes to exactly
    /// one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // Decrement and notify under the queue mutex: `recv` checks
            // the sender count while holding it, so doing this lock-free
            // could slot the notify between a receiver's check (sees 1)
            // and its wait — a lost wakeup that parks it forever.
            let _q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of queued messages (racy; for diagnostics).
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// True when no messages are queued (racy; for diagnostics).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_never_misses_the_disconnect_wakeup() {
        // Regression: the last sender's drop used to decrement and
        // notify without the queue lock, so a receiver could check the
        // count, miss the notify, and park forever. Race the two with
        // no sleep; a lost wakeup hangs this test.
        for _ in 0..1000 {
            let (tx, rx) = unbounded::<u32>();
            let t = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn cloned_receivers_share_work() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        let b = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut all = a.join().unwrap();
        all.extend(b.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
