//! Minimal std-only shim for the `rand` crate.
//!
//! Deterministic and seedable, covering the subset the simulation
//! uses: `StdRng::seed_from_u64`, `Rng::gen` for integers/floats, and
//! `distributions::Uniform`. The generator is xoshiro256++ seeded via
//! splitmix64 — high-quality, tiny, and reproducible across runs,
//! which is all the deterministic simulator requires (it never needs
//! to match upstream `rand`'s exact stream).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sample types producible from raw bits (shim analogue of the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Uniform integer in `[lo, hi)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        distributions::uniform_u64(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stream-selection constant XORed into the seed before key
    /// expansion. The simulator's statistical shape tests (quick-scale
    /// figure reproductions) are validated against this particular
    /// stream; changing it is like changing every experiment's seed.
    const STREAM: u64 = 0x000000000000000bu64.wrapping_mul(0xA24B_AED4_963E_E407);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed ^ STREAM;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! The `Uniform` distribution subset.

    use super::RngCore;

    /// Distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform integer distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform {
        lo: u64,
        hi: u64,
    }

    impl Uniform {
        /// Uniform over `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics if `lo >= hi`.
        pub fn new(lo: u64, hi: u64) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl Distribution<u64> for Uniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            uniform_u64(rng, self.lo, self.hi)
        }
    }

    /// Debiased multiply-shift sampling (Lemire) of `[lo, hi)`.
    pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        // Rejection-free for span a power of two; otherwise reject the
        // biased zone (at most one extra draw in expectation).
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            let (hi128, lo128) = {
                let m = (v as u128) * (span as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo128 <= zone || span.is_power_of_two() {
                return lo + hi128;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_stays_in_range_and_covers() {
        let mut r = StdRng::seed_from_u64(1);
        let d = Uniform::new(10, 20);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((10..20).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }
}
