//! Minimal std-only shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! member implements the subset the repository's property tests use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, [`Strategy`] with `prop_map`, [`any`],
//! [`Just`], integer-range strategies, tuple strategies, a
//! character-class regex subset for `&str` strategies, and
//! `collection::vec`.
//!
//! Differences from real proptest: no shrinking (a failing case
//! reports its inputs and deterministic seed instead), and a fixed
//! case count (`PROPTEST_CASES` env var, default 64). Generation is
//! deterministic per (test name, case index), so failures reproduce.

use std::ops::Range;

/// Deterministic per-test random stream (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string plus case index.
    pub fn new(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift with rejection of the biased zone.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            let m = (v as u128) * (n as u128);
            if (m as u64) <= zone || n.is_power_of_two() {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding a constant (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-range default strategy (shim of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a fully random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident : $i:tt),+))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// `&str` as a strategy: a regex subset of literal characters and
/// character classes `[...]` (with ranges), each optionally repeated
/// by `{m}` or `{m,n}`. Covers patterns like
/// `"[a-zA-Z0-9_-][a-zA-Z0-9_.-]{0,11}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class in pattern")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Parse an optional {m} / {m,n} quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed quantifier in pattern")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<u64>().expect("bad quantifier"),
                        n.trim().parse::<u64>().expect("bad quantifier"),
                    ),
                    None => {
                        let m = spec.trim().parse::<u64>().expect("bad quantifier");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!alphabet.is_empty(), "empty character class in pattern");
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Heterogeneous-strategy choice (all arms share one `Value` type).
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests: each function runs [`case_count`] cases
/// with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::case_count();
            let full_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cases {
                let mut rng = $crate::TestRng::new(full_name, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", &$arg));
                        s.push_str("; ");
                    )+
                    s
                };
                let result: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!(
                        "property {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        full_name, case, cases, msg, inputs
                    );
                }
            }
        }
    )+};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}",
                left,
                right,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Chooses uniformly among several strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new("t", 0);
        for _ in 0..1000 {
            let v = (1u32..5, 10u64..20).generate(&mut rng);
            assert!((1..5).contains(&v.0));
            assert!((10..20).contains(&v.1));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::new("r", 1);
        let pat = "[a-z]{2,10}/[a-z]{2,10}";
        for _ in 0..200 {
            let s = pat.generate(&mut rng);
            let parts: Vec<&str> = s.split('/').collect();
            assert_eq!(parts.len(), 2, "{s}");
            for p in parts {
                assert!((2..=10).contains(&p.len()), "{s}");
                assert!(p.chars().all(|c| c.is_ascii_lowercase()), "{s}");
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let strat = prop_oneof![
            (0u32..1).prop_map(|_| 'a'),
            Just('b'),
            (0u32..1).prop_map(|_| 'c'),
        ];
        let mut rng = TestRng::new("o", 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::new("v", 3);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 1..7).generate(&mut rng);
            assert!((1..7).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = crate::collection::vec(any::<u64>(), 5..6).generate(&mut TestRng::new("d", 9));
        let b = crate::collection::vec(any::<u64>(), 5..6).generate(&mut TestRng::new("d", 9));
        assert_eq!(a, b);
    }

    proptest! {
        /// The macro itself works end-to-end.
        #[test]
        fn macro_smoke(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
            prop_assert_eq!(x + 1, 1 + x);
        }
    }
}
