//! Minimal std-only shim for the `criterion` benchmark harness.
//!
//! Mirrors criterion's execution model for the API subset the bench
//! targets use: under `cargo bench` (cargo passes `--bench`) each
//! benchmark is warmed up and measured, reporting mean time per
//! iteration and optional throughput; under `cargo test` (no
//! `--bench` argument) each benchmark runs exactly once as a smoke
//! test, exactly like real criterion's test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How samples are collected (accepted, ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Criterion picks.
    Auto,
    /// Linearly increasing iteration counts.
    Linear,
    /// Equal iteration counts.
    Flat,
}

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    /// Full measurement (cargo bench) vs. single-pass smoke (cargo test).
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Registers a free-standing benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(
            self.measure,
            id,
            None,
            Duration::from_millis(500),
            Duration::from_secs(2),
            f,
        );
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the sampling mode (accepted for API compatibility).
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            self.criterion.measure,
            &full,
            self.throughput,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the requested number of iterations, timing them.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    measure: bool,
    id: &str,
    throughput: Option<Throughput>,
    warm_up: Duration,
    window: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    if !measure {
        // Test mode: one iteration proves the benchmark runs.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {id}: ok (test mode, 1 iteration)");
        return;
    }
    // Warm up while estimating per-iteration cost, doubling counts.
    let mut iters = 1u64;
    let mut per_iter;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if warm_start.elapsed() >= warm_up {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 30);
    }
    // One measured batch sized to fill the measurement window.
    let target = (window.as_secs_f64() / per_iter.max(1e-9)) as u64;
    let iters = target.clamp(1, 1 << 32);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(", {:.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!(", {:.0} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "bench {id}: {:.3} us/iter ({} iters{rate})",
        per_iter * 1e6,
        iters
    );
    record_scenario(id, iters, throughput, b.elapsed);
}

/// When `FLASH_BENCH_JSON` names a trajectory file, merge this
/// measurement into it as a scenario — the same single-object-per-line
/// document `flash_net::report::BenchReport` writes, latest numbers
/// winning per name — so `cargo bench` runs land next to the smoke
/// harnesses' numbers instead of only scrolling by. Unset (the
/// default), this is a no-op, exactly like real criterion.
fn record_scenario(id: &str, iters: u64, throughput: Option<Throughput>, elapsed: Duration) {
    let Some(path) = std::env::var_os("FLASH_BENCH_JSON") else {
        return;
    };
    // "Requests" per the scenario's own unit of work: declared
    // elements per iteration when given, else iterations.
    let requests = match throughput {
        Some(Throughput::Elements(n)) => iters.saturating_mul(n),
        _ => iters,
    };
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    };
    let name: String = id
        .chars()
        .map(|c| {
            if c == '"' || c == '\\' || (c as u32) < 0x20 {
                '_'
            } else {
                c
            }
        })
        .collect();
    let line = format!(
        "{{\"name\": \"{name}\", \"requests\": {requests}, \"elapsed_secs\": {secs:.6}, \
         \"requests_per_sec\": {rate:.1}}}"
    );
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let mut lines: Vec<String> = existing
        .lines()
        .map(str::trim)
        .filter(|l| {
            l.starts_with("{\"name\": \"") && !l.starts_with(&format!("{{\"name\": \"{name}\""))
        })
        .map(|l| l.strip_suffix(',').unwrap_or(l).to_string())
        .collect();
    lines.push(line);
    let mut doc = String::from("{\n  \"scenarios\": [\n");
    for (i, l) in lines.iter().enumerate() {
        doc.push_str("    ");
        doc.push_str(l);
        if i + 1 < lines.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("  ]\n}\n");
    let _ = std::fs::write(&path, doc);
}

/// Groups benchmark functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs_in_test_mode() {
        let mut c = Criterion { measure: false };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(100))
                .sample_size(10)
                .sampling_mode(SamplingMode::Flat)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(1));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1, "test mode runs exactly one iteration");
    }

    #[test]
    fn record_scenario_merges_into_document() {
        let path = std::env::temp_dir().join(format!("criterion-shim-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "{\n  \"scenarios\": [\n    {\"name\": \"kept/other\", \"requests\": 7, \
             \"elapsed_secs\": 1.000000, \"requests_per_sec\": 7.0},\n    {\"name\": \"g/b\", \
             \"requests\": 1, \"elapsed_secs\": 1.000000, \"requests_per_sec\": 1.0}\n  ]\n}\n",
        )
        .unwrap();
        std::env::set_var("FLASH_BENCH_JSON", &path);
        record_scenario(
            "g/b",
            10,
            Some(Throughput::Elements(5)),
            Duration::from_secs(1),
        );
        let doc = std::fs::read_to_string(&path).unwrap();
        std::env::remove_var("FLASH_BENCH_JSON");
        let _ = std::fs::remove_file(&path);
        assert!(doc.contains("kept/other"), "unrelated scenarios survive");
        assert_eq!(doc.matches("\"g/b\"").count(), 1, "latest wins by name");
        assert!(doc.contains("\"requests\": 50"), "elements × iters");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn measured_mode_reports() {
        let mut c = Criterion { measure: true };
        let mut g = c.benchmark_group("m");
        g.warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut count = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        g.finish();
        assert!(count > 1, "measurement runs many iterations");
    }
}
