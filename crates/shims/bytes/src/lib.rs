//! Minimal std-only shim for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! member provides the small API subset the Flash reproduction uses:
//! [`Bytes`] (cheaply clonable, immutable byte buffer backed by an
//! `Arc`) and [`BytesMut`] (growable buffer with `split_to`). The
//! semantics match the real crate for this subset; only the
//! performance characteristics of exotic paths differ.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
///
/// Clones share one allocation (an `Arc<[u8]>`) and may view
/// different sub-ranges of it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

/// A growable byte buffer supporting efficient prefix removal.
#[derive(Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Consumed prefix; `buf[head..]` is the live region. Compacted
    /// when the dead prefix outgrows the live remainder.
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Live length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `bytes`.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Removes and returns the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.head..self.head + at].to_vec();
        self.head += at;
        // Compact once the dead prefix dominates, keeping amortized
        // O(1) appends without unbounded memory growth.
        if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        BytesMut { buf: head, head: 0 }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf[self.head..].to_vec())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_shares_and_slices() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn bytes_mut_split_to_keeps_remainder() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello world");
        let head = m.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&m[..], b"world");
        m.extend_from_slice(b"!");
        assert_eq!(&m[..], b"world!");
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn bytes_mut_compaction_preserves_content() {
        let mut m = BytesMut::new();
        for i in 0..1000u32 {
            m.extend_from_slice(&i.to_le_bytes());
            let out = m.split_to(4);
            assert_eq!(out[..], i.to_le_bytes());
        }
        assert!(m.is_empty());
    }
}
