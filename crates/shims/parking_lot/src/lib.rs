//! Minimal std-only shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API
//! (no lock poisoning: a poisoned lock is recovered, matching
//! parking_lot's behavior of simply not poisoning).

use std::sync::{self, PoisonError};

/// A mutex whose `lock` never returns a poisoning error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// An RwLock whose `read`/`write` never return poisoning errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
