//! End-to-end tests of the zero-downtime lifecycle over loopback:
//! graceful drain (in-flight sendfile bodies and pipelined bursts
//! complete; idle keep-alives close promptly), SIGHUP-style reload
//! without dropping a connection, generation handoff of listener fds,
//! the drain-based `stop()` vs the immediate `stop_now()`, and the
//! helper-wait deadline that reaps waiters of a wedged helper.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use flash_net::{send_to_self, AcceptMode, MtServer, NetConfig, Server, Signal, Signals};

/// Creates a docroot with known content; returns its path.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-lc-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("sub")).unwrap();
    std::fs::write(dir.join("index.html"), b"<html>hello flash</html>\n").unwrap();
    std::fs::write(dir.join("sub/page.html"), b"subdir page").unwrap();
    std::fs::write(dir.join("big.bin"), vec![0xABu8; 2_000_000]).unwrap();
    dir
}

fn body_of(response: &[u8]) -> &[u8] {
    let pos = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    &response[pos + 4..]
}

/// Reads one keep-alive response off `s`: returns (header text, body).
fn read_response(s: &mut TcpStream) -> (String, Vec<u8>) {
    let mut hdr = Vec::new();
    let mut byte = [0u8; 1];
    while !hdr.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut byte).unwrap();
        hdr.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&hdr).into_owned();
    let len: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
    (text, body)
}

#[test]
fn drain_completes_inflight_sendfile() {
    let root = docroot("drain-sendfile");
    let cfg = NetConfig::new(&root).with_drain_timeout(Duration::from_secs(10));
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /big.bin HTTP/1.0\r\n\r\n").unwrap();
    // Read just the opening of the response so the 2 MB sendfile body
    // is demonstrably in flight when the drain begins.
    let mut first = vec![0u8; 64 * 1024];
    s.read_exact(&mut first).unwrap();
    let drainer = thread::spawn(move || server.drain());
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).unwrap();
    drainer.join().unwrap();
    let mut full = first;
    full.extend_from_slice(&rest);
    let body = body_of(&full);
    assert_eq!(body.len(), 2_000_000, "drain must let the body finish");
    assert!(body.iter().all(|&b| b == 0xAB));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn drain_completes_pipelined_burst() {
    let root = docroot("drain-pipeline");
    let cfg = NetConfig::new(&root).with_drain_timeout(Duration::from_secs(10));
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // One served response first: the connection is an established
    // keep-alive, not a fresh one.
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let _ = read_response(&mut s);
    // Five pipelined requests land in the socket, then the drain
    // begins: every one must be answered before the close.
    let burst = "GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n".repeat(5);
    s.write_all(burst.as_bytes()).unwrap();
    thread::sleep(Duration::from_millis(50)); // let the burst arrive
    let drainer = thread::spawn(move || server.drain());
    for i in 0..5 {
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "pipelined {i}: {text}");
        assert_eq!(body, b"<html>hello flash</html>\n");
    }
    // After the final pipelined response the draining server closes
    // the keep-alive connection.
    let mut tail = [0u8; 1];
    assert_eq!(s.read(&mut tail).unwrap_or(0), 0, "EOF after the burst");
    drainer.join().unwrap();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn drain_closes_idle_keepalive_promptly() {
    let root = docroot("drain-idle");
    // Idle timeout far beyond the assertion window: a prompt close
    // proves the drain swept the connection, not the idle reaper.
    let cfg = NetConfig::new(&root)
        .with_drain_timeout(Duration::from_secs(30))
        .with_idle_timeout(Some(Duration::from_secs(30)));
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let _ = read_response(&mut s);
    // The connection now sits idle between requests.
    let started = Instant::now();
    let stats = server.stats();
    assert_eq!(stats.drained_conns(), 0);
    server.drain();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "idle keep-alive must not hold the drain: {:?}",
        started.elapsed()
    );
    let mut tail = [0u8; 1];
    assert_eq!(s.read(&mut tail).unwrap_or(0), 0, "swept conn sees EOF");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn stop_finishes_response_already_in_flight() {
    let root = docroot("stop-grace");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /big.bin HTTP/1.0\r\n\r\n").unwrap();
    let mut first = vec![0u8; 16 * 1024];
    s.read_exact(&mut first).unwrap();
    // stop() routes through the drain path with a short grace — the
    // 2 MB body already being written goes out whole, not truncated.
    let stopper = thread::spawn(move || server.stop());
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).unwrap();
    stopper.join().unwrap();
    assert_eq!(first.len() + rest.len() - headers_len(&first), 2_000_000);
    let _ = std::fs::remove_dir_all(root);
}

fn headers_len(response_start: &[u8]) -> usize {
    response_start
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator")
        + 4
}

#[test]
fn stop_now_severs_immediately() {
    let root = docroot("stop-now");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let _ = read_response(&mut s);
    let started = Instant::now();
    server.stop_now();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "stop_now must not wait out any grace"
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn reload_swaps_docroot_without_dropping_connection() {
    let root_a = docroot("reload-a");
    let root_b = docroot("reload-b");
    std::fs::write(root_b.join("index.html"), b"<html>generation two</html>\n").unwrap();
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root_a)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, body) = read_response(&mut s);
    assert_eq!(body, b"<html>hello flash</html>\n");

    server.reload_docroot(&root_b);
    // The same keep-alive connection — never dropped — serves the new
    // root once its shard applies the swap (between drives; retry
    // briefly rather than racing the wake).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        if body == b"<html>generation two</html>\n" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reload never took effect; still serving {:?}",
            String::from_utf8_lossy(&body)
        );
        thread::sleep(Duration::from_millis(20));
    }
    server.stop();
    let _ = std::fs::remove_dir_all(root_a);
    let _ = std::fs::remove_dir_all(root_b);
}

/// The port must be rebindable by a new generation while the old one
/// is still draining — the reuseport half of a zero-downtime restart.
#[cfg(target_os = "linux")]
#[test]
fn port_rebindable_by_new_generation_during_drain() {
    let root = docroot("rebind");
    let cfg = NetConfig::new(&root)
        .with_accept_mode(AcceptMode::ReusePort)
        .with_drain_timeout(Duration::from_secs(10));
    let server = Server::start("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = server.addr();
    // Hold the drain open: a fresh connection that has not sent its
    // request yet keeps its grace, so the old generation lingers.
    let mut held = TcpStream::connect(addr).unwrap();
    held.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    held.write_all(b"GET /index.html HTT").unwrap(); // header incomplete
    thread::sleep(Duration::from_millis(100));
    let drainer = thread::spawn(move || server.drain());
    thread::sleep(Duration::from_millis(200));

    // New generation binds the same port while the old one drains.
    let next = Server::start(addr, cfg).unwrap();
    assert_eq!(next.addr(), addr);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (text, body) = read_response(&mut s);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert_eq!(body, b"<html>hello flash</html>\n");

    // The held connection completes its request against the OLD
    // generation — the drain served it, not severed it.
    held.write_all(b"P/1.1\r\nHost: t\r\n\r\n").unwrap();
    let (text, body) = read_response(&mut held);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert_eq!(body, b"<html>hello flash</html>\n");
    drainer.join().unwrap();
    next.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Listener-fd handoff in the mode where a same-port rebind is
/// impossible: the single acceptor's socket travels to the next
/// generation over SCM_RIGHTS, and the same kernel socket keeps
/// accepting.
#[cfg(target_os = "linux")]
#[test]
fn handoff_passes_single_listener_across_generations() {
    let root = docroot("handoff-single");
    let cfg = NetConfig::new(&root).with_accept_mode(AcceptMode::Single);
    let old = Server::start("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = old.addr();

    // The control-socket hop, in-process: old sends its listener dups,
    // new adopts them.
    let (tx, rx) = std::os::unix::net::UnixStream::pair().unwrap();
    flash_net::send_listeners(&tx, old.handoff_listeners()).unwrap();
    let inherited = flash_net::recv_listeners(&rx).unwrap();
    let next = Server::start_inherited(cfg, inherited).unwrap();
    assert_eq!(next.addr(), addr);

    // Old generation drains away entirely...
    old.drain();
    // ...and the port still serves: same kernel socket, new process
    // (here: new server) behind it. HTTP/1.0 + read-to-EOF: the close
    // strictly follows the server's request-counter increment, so the
    // stats assert below cannot race the shard thread.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    assert!(resp.starts_with(b"HTTP/1.1 200 OK"));
    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");
    assert!(next.stats().requests() >= 1);
    next.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// A `Waiting` connection whose helper never completes is reaped at
/// `helper_wait_timeout`, counted, and its slot safely reusable — the
/// late completion (if it ever arrives) is delivered to nobody.
#[cfg(target_os = "linux")]
#[test]
fn helper_wait_deadline_reaps_wedged_waiter() {
    let root = docroot("helper-wedge");
    // A FIFO in the docroot: File::open blocks until a writer appears,
    // which is exactly a wedged disk/helper from the shard's view.
    let fifo = root.join("wedge.fifo");
    mkfifo_at(&fifo);

    let mut cfg = NetConfig::new(&root)
        .with_event_loops(1)
        .with_helper_wait_timeout(Some(Duration::from_millis(400)));
    cfg.helpers = 1; // the single helper wedges; nothing else moves
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();

    // Prewarm the cache while the helper still works.
    let mut warm = TcpStream::connect(addr).unwrap();
    warm.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    warm.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let _ = read_response(&mut warm);
    drop(warm);

    // Wedge the helper: opening the FIFO blocks forever (no writer).
    let mut wedged = TcpStream::connect(addr).unwrap();
    wedged
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    wedged
        .write_all(b"GET /wedge.fifo HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();

    // The waiter is reaped at helper_wait_timeout: EOF, no response.
    let started = Instant::now();
    let mut buf = [0u8; 256];
    let n = wedged.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "wedged waiter must be closed without a response");
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(300) && waited < Duration::from_secs(3),
        "reap should land near helper_wait_timeout, took {waited:?}"
    );
    assert_eq!(server.stats().helper_wait_timeouts(), 1);

    // The slot is reusable: a new connection served from cache (no
    // helper needed) works while the helper is still wedged.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (text, body) = read_response(&mut s);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert_eq!(body, b"<html>hello flash</html>\n");

    // Unwedge: a writer opens the FIFO, the helper's open() returns,
    // and its late completion finds no waiter — delivered to nobody,
    // poisoning nothing. The helper is then free again for real work.
    let unwedge = std::fs::OpenOptions::new().write(true).open(&fifo).unwrap();
    drop(unwedge);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        s.write_all(b"GET /sub/page.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        if body == b"subdir page" {
            break;
        }
        assert!(Instant::now() < deadline, "helper never recovered");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[cfg(target_os = "linux")]
fn mkfifo_at(path: &std::path::Path) {
    use std::os::unix::ffi::OsStrExt;
    extern "C" {
        fn mkfifo(path: *const u8, mode: u32) -> i32;
    }
    let mut bytes = path.as_os_str().as_bytes().to_vec();
    bytes.push(0);
    // SAFETY: `bytes` is a NUL-terminated path buffer that outlives
    // the call; mkfifo reads it and touches nothing else.
    let rc = unsafe { mkfifo(bytes.as_ptr(), 0o644) };
    assert_eq!(rc, 0, "mkfifo failed: {}", std::io::Error::last_os_error());
}

#[test]
fn mt_drain_completes_inflight_and_reloads_live() {
    let root_a = docroot("mt-lc-a");
    let root_b = docroot("mt-lc-b");
    std::fs::write(root_b.join("index.html"), b"<html>generation two</html>\n").unwrap();
    let cfg = NetConfig::new(&root_a).with_drain_timeout(Duration::from_secs(10));
    let server = MtServer::start("127.0.0.1:0", cfg).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, body) = read_response(&mut s);
    assert_eq!(body, b"<html>hello flash</html>\n");

    // Live reload on the same connection — never dropped.
    server.reload_docroot(&root_b);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        if body == b"<html>generation two</html>\n" {
            break;
        }
        assert!(Instant::now() < deadline, "MT reload never took effect");
        thread::sleep(Duration::from_millis(20));
    }

    // Drain with a pipelined request in flight: answered, then EOF.
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    thread::sleep(Duration::from_millis(50));
    let drainer = thread::spawn(move || server.drain());
    let (text, body) = read_response(&mut s);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert_eq!(body, b"<html>generation two</html>\n");
    let mut tail = [0u8; 1];
    assert_eq!(s.read(&mut tail).unwrap_or(0), 0, "EOF after drain");
    drainer.join().unwrap();
    let _ = std::fs::remove_dir_all(root_a);
    let _ = std::fs::remove_dir_all(root_b);
}

#[test]
fn mt_connection_opened_after_reload_serves_new_root() {
    let root_a = docroot("mt-postreload-a");
    let root_b = docroot("mt-postreload-b");
    std::fs::write(root_b.join("index.html"), b"<html>generation two</html>\n").unwrap();
    let server = MtServer::start("127.0.0.1:0", NetConfig::new(&root_a)).unwrap();
    // A pre-reload request warms the shared cache with root-a bytes.
    let mut warm = TcpStream::connect(server.addr()).unwrap();
    warm.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    warm.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, body) = read_response(&mut warm);
    assert_eq!(body, b"<html>hello flash</html>\n");
    drop(warm);

    server.reload_docroot(&root_b);
    // Workers spawned for connections opened *after* the reload start
    // from the spawner's original (root-a) config, so each must apply
    // the published reload before serving its first request — and the
    // flushed shared cache must refill with root-b bytes, never be
    // re-poisoned with root-a content (the later connections below
    // are served from what the first one cached).
    for i in 0..3 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert_eq!(
            body, b"<html>generation two</html>\n",
            "post-reload connection {i} served the stale root"
        );
    }
    server.stop_now();
    let _ = std::fs::remove_dir_all(root_a);
    let _ = std::fs::remove_dir_all(root_b);
}

/// Asserts one structured access-log line is well-formed:
/// `host - - [unix_ts] "METHOD path" status bytes latency_us tier`.
/// Returns the quoted request target.
fn check_log_line(line: &str) -> String {
    let parts: Vec<&str> = line.splitn(3, '"').collect();
    assert_eq!(parts.len(), 3, "torn or malformed line: {line:?}");
    let head: Vec<&str> = parts[0].split_whitespace().collect();
    assert_eq!(head.len(), 4, "bad prefix in {line:?}");
    assert_eq!(head[1], "-");
    assert_eq!(head[2], "-");
    assert!(
        head[3].starts_with('[') && head[3].ends_with(']'),
        "{line:?}"
    );
    head[3][1..head[3].len() - 1]
        .parse::<u64>()
        .unwrap_or_else(|_| panic!("bad timestamp in {line:?}"));
    let tail: Vec<&str> = parts[2].split_whitespace().collect();
    assert_eq!(tail.len(), 4, "bad suffix in {line:?}");
    assert_eq!(tail[0], "200", "unexpected status in {line:?}");
    tail[1]
        .parse::<u64>()
        .unwrap_or_else(|_| panic!("bad byte count in {line:?}"));
    tail[2]
        .parse::<u64>()
        .unwrap_or_else(|_| panic!("bad latency in {line:?}"));
    assert!(!tail[3].is_empty(), "missing tier in {line:?}");
    parts[1].to_string()
}

/// The logrotate handshake against the sharded server: rename the
/// live access log mid-traffic, deliver SIGHUP (observed through the
/// self-pipe and mapped to [`Server::rotate_access_logs`], the same
/// shape the signal loop in a real deployment uses), keep serving.
/// Every request before and after the rotation must appear exactly
/// once across the two files, every line whole — the single
/// `O_APPEND` write per batch means concurrent shards can never tear
/// a line.
#[test]
fn sighup_rotates_access_log_without_losing_lines() {
    const BEFORE: usize = 40;
    const AFTER: usize = 40;
    let root = docroot("log-rotate");
    let log_path = root.join("access.log");
    let server = Server::start(
        "127.0.0.1:0",
        NetConfig::new(&root)
            .with_event_loops(2)
            .with_access_log(&log_path),
    )
    .unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for _ in 0..BEFORE {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, _) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    }

    // logrotate's move-then-signal: the shards keep appending to the
    // renamed file (same descriptor) until the reopen lands.
    let rotated = root.join("access.log.1");
    std::fs::rename(&log_path, &rotated).unwrap();
    let mut signals = Signals::install(&[Signal::Hup]).unwrap();
    send_to_self(Signal::Hup).unwrap();
    let got = signals.wait_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(got, Some(Signal::Hup));
    server.rotate_access_logs();

    // One round trip plus a pause lets every shard observe the bumped
    // log generation before the bulk of the post-rotation traffic.
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let _ = read_response(&mut s);
    thread::sleep(Duration::from_millis(100));
    for _ in 0..AFTER - 1 {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, _) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    }
    drop(s);
    // stop() drains the shards, and each shard flushes its staged
    // records before its loop returns.
    server.stop();

    let old = std::fs::read_to_string(&rotated).unwrap();
    let new = std::fs::read_to_string(&log_path).unwrap_or_default();
    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    assert_eq!(
        old_lines.len() + new_lines.len(),
        BEFORE + AFTER,
        "lost or duplicated lines: {} pre-rotation + {} post-rotation",
        old_lines.len(),
        new_lines.len()
    );
    assert!(
        !new_lines.is_empty(),
        "rotation never took effect; everything landed in the old file"
    );
    for line in old_lines.iter().chain(new_lines.iter()) {
        assert_eq!(check_log_line(line), "GET /index.html");
    }
    assert!(old.ends_with('\n') && new.ends_with('\n'), "torn tail");
    let _ = std::fs::remove_dir_all(root);
}

/// The same handshake against the MT server, whose worker threads
/// share one writer behind a mutex.
#[test]
fn mt_access_log_rotation_loses_no_lines() {
    const BEFORE: usize = 15;
    const AFTER: usize = 15;
    let root = docroot("mt-log-rotate");
    let log_path = root.join("access.log");
    let server = MtServer::start(
        "127.0.0.1:0",
        NetConfig::new(&root).with_access_log(&log_path),
    )
    .unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for _ in 0..BEFORE {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let _ = read_response(&mut s);
    }
    let rotated = root.join("access.log.1");
    std::fs::rename(&log_path, &rotated).unwrap();
    server.rotate_access_logs();
    for _ in 0..AFTER {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let _ = read_response(&mut s);
    }
    drop(s);
    server.stop();
    let old = std::fs::read_to_string(&rotated).unwrap();
    let new = std::fs::read_to_string(&log_path).unwrap_or_default();
    assert_eq!(
        old.lines().count() + new.lines().count(),
        BEFORE + AFTER,
        "lost or duplicated lines"
    );
    assert!(!new.is_empty(), "rotation never took effect");
    for line in old.lines().chain(new.lines()) {
        check_log_line(line);
    }
    let _ = std::fs::remove_dir_all(root);
}

/// Reaping the **last waiter** of an in-flight job must cancel the job
/// itself: the pending entry drops, the cancel flag is raised, and a
/// completion that arrives anyway dies on the token gate — never
/// populating the cache, never waking whatever reuses the slot. Two
/// jobs sit behind one wedged helper: the wedged job (started, past
/// its cancel check) and a queued one (never started — skipped by the
/// flag alone).
#[cfg(target_os = "linux")]
#[test]
fn reaping_last_waiter_cancels_inflight_jobs() {
    let root = docroot("job-cancel");
    let fifo = root.join("wedge.fifo");
    mkfifo_at(&fifo);
    std::fs::write(root.join("queued.html"), b"served after cancel").unwrap();

    let mut cfg = NetConfig::new(&root)
        .with_event_loops(1)
        .with_helper_wait_timeout(Some(Duration::from_millis(300)));
    cfg.helpers = 1; // one lane: the queued job sits behind the wedge
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();

    // Waiter 1 wedges the only helper on the FIFO open.
    let mut wedged = TcpStream::connect(addr).unwrap();
    wedged
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    wedged
        .write_all(b"GET /wedge.fifo HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    thread::sleep(Duration::from_millis(50));

    // Waiter 2's job is dispatched but only ever queued.
    let mut parked = TcpStream::connect(addr).unwrap();
    parked
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    parked
        .write_all(b"GET /queued.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();

    // Both waiters are reaped at the helper-wait deadline (EOF, no
    // bytes), and — each being its path's only waiter — both jobs are
    // cancelled with them.
    let mut buf = [0u8; 256];
    assert_eq!(wedged.read(&mut buf).unwrap_or(0), 0, "waiter 1 reaped");
    assert_eq!(parked.read(&mut buf).unwrap_or(0), 0, "waiter 2 reaped");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().jobs_cancelled() < 2 {
        assert!(
            Instant::now() < deadline,
            "expected 2 cancelled jobs, saw {} (reaps: {})",
            server.stats().jobs_cancelled(),
            server.stats().helper_wait_timeouts()
        );
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().helper_wait_timeouts(), 2);
    assert_eq!(server.stats().requests(), 0, "nobody was answered");

    // Unwedge. The helper's open() returns and its completion must be
    // dropped (stale token); the queued job must be skipped entirely
    // (cancel flag). Then the helper serves fresh work — including the
    // very path whose job was cancelled while queued, proving the
    // cancellation didn't poison the path's future.
    drop(std::fs::OpenOptions::new().write(true).open(&fifo).unwrap());
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        s.write_all(b"GET /queued.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        if body == b"served after cancel" {
            break;
        }
        assert!(Instant::now() < deadline, "helper never recovered");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}
