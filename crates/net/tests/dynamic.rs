//! End-to-end tests of the dynamic-content tier over loopback: worker
//! exchanges streamed back as `Transfer-Encoding: chunked`, worker
//! crashes mid-body, wedged workers hitting the dynamic deadline, and
//! the `/.flash/*` endpoints keeping precedence over a dynamic prefix.
//!
//! Like `loopback.rs`, the suite runs twice — once per readiness
//! backend — and every scenario runs against both drivers through the
//! shared [`ServeHandle`] surface, so the battery itself is written
//! once with no per-server match arms.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use flash_http::chunked::ChunkedDecoder;
use flash_net::handle::{self, ServeHandle};
use flash_net::{BackendChoice, NetConfig, NetConfigBuilder, ServerKind};

/// Creates a docroot (the dynamic tier never reads it, but the static
/// tier behind the same listener does); returns its path.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-dyn-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("index.html"), b"<html>static hello</html>\n").unwrap();
    dir
}

/// Base builder for a scenario: docroot + pinned backend + one shard
/// (deterministic stats) + the `/app/` dynamic prefix. Scenarios chain
/// their own knobs before `build()` — the validating construction path
/// is the one every test exercises.
fn builder(root: &std::path::Path, backend: BackendChoice) -> NetConfigBuilder {
    NetConfig::builder(root)
        .backend(backend)
        .event_loops(1)
        .dynamic_prefix("/app/")
}

fn start(kind: ServerKind, cfg: NetConfig) -> Box<dyn ServeHandle> {
    handle::start(kind, "127.0.0.1:0", cfg).unwrap()
}

/// Sends one request and reads until EOF; returns the raw response.
fn get(addr: std::net::SocketAddr, req: &str) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(req.as_bytes()).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

/// Reads one response header off `s` (up to and including the blank
/// line); returns it as text.
fn read_header(s: &mut TcpStream) -> String {
    let mut hdr = Vec::new();
    let mut byte = [0u8; 1];
    while !hdr.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut byte).unwrap();
        hdr.push(byte[0]);
    }
    String::from_utf8_lossy(&hdr).into_owned()
}

/// Drains one complete chunked body off `s` one byte at a time — the
/// harshest possible framing split, every chunk-size line and CRLF
/// crossing a read boundary — and returns the decoded payload.
fn read_chunked_body(s: &mut TcpStream) -> Vec<u8> {
    let mut dec = ChunkedDecoder::new();
    let mut byte = [0u8; 1];
    while !dec.is_done() {
        s.read_exact(&mut byte).unwrap();
        dec.feed(&byte).unwrap();
    }
    dec.body().to_vec()
}

/// Spins until `cond` holds. The respawn counter is bumped by the
/// helper that kills/reaps the worker, which runs concurrently with
/// the client-visible close — the count is guaranteed, its timing is
/// not.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Writes a worker script to a unique file under `root`; returns the
/// argv that runs it.
fn script(root: &std::path::Path, name: &str, body: &str) -> Vec<String> {
    let path = root.join(name);
    std::fs::write(&path, body).unwrap();
    vec!["/bin/sh".into(), path.to_str().unwrap().into()]
}

/// A dynamic GET streams a chunked body byte-exact, carries none of
/// the static tier's validators, and leaves the keep-alive connection
/// serviceable for both another dynamic and a static request.
fn run_dynamic_streams_chunked(tag: &str, backend: BackendChoice, kind: ServerKind) {
    let root = docroot(tag);
    let server = start(kind, builder(&root, backend).build().unwrap());
    let addr = server.local_addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /app/test HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let hdr = read_header(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert!(hdr.contains("Transfer-Encoding: chunked"), "{hdr}");
    assert!(hdr.contains("Connection: keep-alive"), "{hdr}");
    assert!(!hdr.contains("Content-Length"), "chunked, not sized: {hdr}");
    assert!(!hdr.contains("ETag"), "dynamic has no validator: {hdr}");
    assert!(!hdr.contains("Last-Modified"), "{hdr}");
    let body = read_chunked_body(&mut s);
    assert_eq!(body, b"hello from worker: /app/test");

    // The terminator really ended the body: a second dynamic request
    // on the same connection parses cleanly...
    s.write_all(b"GET /app/two HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let hdr = read_header(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert_eq!(read_chunked_body(&mut s), b"hello from worker: /app/two");

    // ...and so does a static one — both tiers share the connection.
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let hdr = read_header(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert!(hdr.contains("Content-Length: 26"), "{hdr}");
    drop(s);

    let stats = server.stats();
    assert_eq!(stats.dynamic_requests(), 2);
    assert_eq!(stats.worker_respawns(), 0, "clean exchanges only");
    assert_eq!(stats.dynamic_timeouts(), 0);
    assert_eq!(
        stats.worker_wait().count(),
        2,
        "every dynamic exchange lands in the worker-wait histogram"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// HEAD on a dynamic path: the chunked header plan, zero body bytes,
/// and no worker consulted.
fn run_dynamic_head(tag: &str, backend: BackendChoice, kind: ServerKind) {
    let root = docroot(tag);
    let server = start(kind, builder(&root, backend).build().unwrap());
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"HEAD /app/x HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let hdr = read_header(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert!(hdr.contains("Transfer-Encoding: chunked"), "{hdr}");
    // No body followed the header: the next response arrives in order.
    s.write_all(b"GET /app/y HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let hdr = read_header(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert_eq!(read_chunked_body(&mut s), b"hello from worker: /app/y");
    drop(s);
    assert_eq!(server.stats().dynamic_requests(), 2);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// The conditional/range surface does not apply to dynamic responses:
/// `If-None-Match: *`, a current-looking `If-Modified-Since`, and a
/// `Range` all ride along ignored — the full 200 chunked body streams.
fn run_dynamic_skips_conditionals(tag: &str, backend: BackendChoice, kind: ServerKind) {
    let root = docroot(tag);
    let server = start(kind, builder(&root, backend).build().unwrap());
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        b"GET /app/cond HTTP/1.1\r\nHost: t\r\nIf-None-Match: *\r\n\
          If-Modified-Since: Fri, 01 Jan 2100 00:00:00 GMT\r\n\
          Range: bytes=0-3\r\n\r\n",
    )
    .unwrap();
    let hdr = read_header(&mut s);
    assert!(
        hdr.starts_with("HTTP/1.1 200 OK"),
        "dynamic must bypass 304/206: {hdr}"
    );
    assert!(!hdr.contains("Content-Range"), "{hdr}");
    assert_eq!(read_chunked_body(&mut s), b"hello from worker: /app/cond");
    drop(s);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// A worker that dies mid-body: the client sees the header and the
/// chunks that made it out, then a hard close with NO terminating
/// `0\r\n\r\n` — a truncated chunked body is detectable, a silently
/// complete-looking one would not be. The pool retires the corpse.
fn run_worker_crash_mid_body(tag: &str, backend: BackendChoice, kind: ServerKind) {
    let root = docroot(tag);
    let argv = script(
        &root,
        "crash.sh",
        "read -r m p\nprintf 'DATA 5\\nhello'\nexit 1\n",
    );
    let server = start(
        kind,
        builder(&root, backend)
            .dynamic_command(argv)
            .build()
            .unwrap(),
    );
    let addr = server.local_addr();
    let resp = get(addr, "GET /app/boom HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    let body_start = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let mut dec = ChunkedDecoder::new();
    dec.feed(&resp[body_start..]).unwrap();
    assert!(
        !dec.is_done(),
        "a crashed worker must NOT produce the chunked terminator"
    );
    assert_eq!(dec.body(), b"hello", "the emitted chunk still arrives");
    wait_for("corpse retired", || server.stats().worker_respawns() >= 1);
    assert_eq!(server.stats().dynamic_timeouts(), 0);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// A wedged worker (accepts the request, never answers) hits the
/// dynamic deadline: 504 within the bound, the worker is killed and
/// counted as a respawn, and the next request on the same listener —
/// served by a fresh worker — succeeds.
fn run_wedged_worker_504_then_respawn(tag: &str, backend: BackendChoice, kind: ServerKind) {
    let root = docroot(tag);
    let marker = root.join("wedged-once");
    // First exchange ever: leave the marker and wedge. Every later
    // exchange (a fresh worker sees the marker) answers normally.
    let argv = script(
        &root,
        "wedge.sh",
        &format!(
            "while read -r m p; do\n\
             if [ ! -f {marker} ]; then : > {marker}; sleep 30; exit 0; fi\n\
             b=\"ok: $p\"\n\
             printf 'DATA %s\\n%s' \"${{#b}}\" \"$b\"\n\
             printf 'END\\n'\n\
             done\n",
            marker = marker.display()
        ),
    );
    let deadline = Duration::from_millis(500);
    let server = start(
        kind,
        builder(&root, backend)
            .dynamic_command(argv)
            .dynamic_deadline(Some(deadline))
            .build()
            .unwrap(),
    );
    let addr = server.local_addr();

    let started = std::time::Instant::now();
    let resp = get(addr, "GET /app/first HTTP/1.0\r\n\r\n");
    let elapsed = started.elapsed();
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(
        text.starts_with("HTTP/1.1 504 Gateway Timeout"),
        "wedged worker must yield 504: {text}"
    );
    assert!(
        elapsed >= deadline - Duration::from_millis(50),
        "504 before the deadline: {elapsed:?}"
    );
    assert!(
        elapsed <= deadline.mul_f64(1.5) + Duration::from_millis(1000),
        "504 must arrive promptly after the deadline: {elapsed:?}"
    );

    // The listener is healthy: a fresh worker serves the next request.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /app/second HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let hdr = read_header(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert_eq!(read_chunked_body(&mut s), b"ok: /app/second");
    drop(s);

    let stats = server.stats();
    assert_eq!(stats.dynamic_timeouts(), 1);
    wait_for("wedged worker killed", || stats.worker_respawns() >= 1);
    assert_eq!(stats.dynamic_requests(), 2);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// The deadline firing mid-stream — header and some chunks already on
/// the wire — cannot turn into a 504: the connection is severed with
/// the body visibly truncated (no chunked terminator).
fn run_deadline_fires_mid_stream(tag: &str, backend: BackendChoice, kind: ServerKind) {
    let root = docroot(tag);
    let argv = script(
        &root,
        "stall.sh",
        "read -r m p\nprintf 'DATA 7\\npartial'\nsleep 30\n",
    );
    let deadline = Duration::from_millis(500);
    let server = start(
        kind,
        builder(&root, backend)
            .dynamic_command(argv)
            .dynamic_deadline(Some(deadline))
            .build()
            .unwrap(),
    );
    let started = std::time::Instant::now();
    let resp = get(server.local_addr(), "GET /app/stall HTTP/1.0\r\n\r\n");
    let elapsed = started.elapsed();
    assert!(
        elapsed <= deadline.mul_f64(1.5) + Duration::from_millis(1000),
        "sever must not wait out the worker's sleep: {elapsed:?}"
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(
        !text.contains("504"),
        "mid-stream expiry must sever, not 504: {text}"
    );
    let body_start = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let mut dec = ChunkedDecoder::new();
    dec.feed(&resp[body_start..]).unwrap();
    assert!(!dec.is_done(), "truncation must be visible to the client");
    assert_eq!(dec.body(), b"partial");
    let stats = server.stats();
    assert_eq!(stats.dynamic_timeouts(), 1);
    wait_for("stalled worker killed", || stats.worker_respawns() >= 1);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// `/.flash/metrics` and `/.flash/stats` keep precedence over a
/// dynamic prefix that covers the whole path space (`/`): the scrape
/// endpoints answer in-process while everything else routes to the
/// worker.
fn run_metrics_not_shadowed_by_dynamic_prefix(tag: &str, backend: BackendChoice, kind: ServerKind) {
    let root = docroot(tag);
    let server = start(
        kind,
        builder(&root, backend)
            .dynamic_prefix("/")
            .metrics_endpoint(true)
            .build()
            .unwrap(),
    );
    let addr = server.local_addr();

    // A dynamic request first, so the scrape has something to report
    // — and so the worker path provably covers "/".
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /anything HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let hdr = read_header(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert_eq!(read_chunked_body(&mut s), b"hello from worker: /anything");
    drop(s);

    for path in ["/.flash/stats", "/.flash/metrics"] {
        let resp = get(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"));
        let text = String::from_utf8_lossy(&resp).into_owned();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{path}: {text}");
        assert!(
            !text.contains("Transfer-Encoding: chunked"),
            "{path} must be served in-process, not by the worker: {text}"
        );
        assert!(
            !text.contains("hello from worker"),
            "{path} routed to the dynamic tier: {text}"
        );
        assert!(
            text.contains("dynamic_requests"),
            "{path} must export the dynamic counters: {text}"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.dynamic_requests(), 1, "scrapes are not dynamic");
    assert_eq!(stats.metrics_requests(), 2);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Instantiates the battery for one pinned backend × both drivers.
macro_rules! dynamic_suite {
    ($modname:ident, $backend:expr) => {
        mod $modname {
            use super::*;

            fn tag(name: &str) -> String {
                format!("{}-{name}", stringify!($modname))
            }

            #[test]
            fn amped_dynamic_streams_chunked_body() {
                run_dynamic_streams_chunked(&tag("stream"), $backend, ServerKind::Amped);
            }

            #[test]
            fn mt_dynamic_streams_chunked_body() {
                run_dynamic_streams_chunked(&tag("mt-stream"), $backend, ServerKind::Mt);
            }

            #[test]
            fn amped_dynamic_head_is_headers_only() {
                run_dynamic_head(&tag("head"), $backend, ServerKind::Amped);
            }

            #[test]
            fn mt_dynamic_head_is_headers_only() {
                run_dynamic_head(&tag("mt-head"), $backend, ServerKind::Mt);
            }

            #[test]
            fn amped_dynamic_skips_conditionals_and_ranges() {
                run_dynamic_skips_conditionals(&tag("cond"), $backend, ServerKind::Amped);
            }

            #[test]
            fn mt_dynamic_skips_conditionals_and_ranges() {
                run_dynamic_skips_conditionals(&tag("mt-cond"), $backend, ServerKind::Mt);
            }

            #[test]
            fn amped_worker_crash_mid_body_truncates_visibly() {
                run_worker_crash_mid_body(&tag("crash"), $backend, ServerKind::Amped);
            }

            #[test]
            fn mt_worker_crash_mid_body_truncates_visibly() {
                run_worker_crash_mid_body(&tag("mt-crash"), $backend, ServerKind::Mt);
            }

            #[test]
            fn amped_wedged_worker_504_then_respawn() {
                run_wedged_worker_504_then_respawn(&tag("wedge"), $backend, ServerKind::Amped);
            }

            #[test]
            fn mt_wedged_worker_504_then_respawn() {
                run_wedged_worker_504_then_respawn(&tag("mt-wedge"), $backend, ServerKind::Mt);
            }

            #[test]
            fn amped_deadline_mid_stream_severs() {
                run_deadline_fires_mid_stream(&tag("midstream"), $backend, ServerKind::Amped);
            }

            #[test]
            fn mt_deadline_mid_stream_severs() {
                run_deadline_fires_mid_stream(&tag("mt-midstream"), $backend, ServerKind::Mt);
            }

            #[test]
            fn amped_metrics_keep_precedence_over_dynamic_prefix() {
                run_metrics_not_shadowed_by_dynamic_prefix(
                    &tag("metrics"),
                    $backend,
                    ServerKind::Amped,
                );
            }

            #[test]
            fn mt_metrics_keep_precedence_over_dynamic_prefix() {
                run_metrics_not_shadowed_by_dynamic_prefix(
                    &tag("mt-metrics"),
                    $backend,
                    ServerKind::Mt,
                );
            }
        }
    };
}

dynamic_suite!(epoll_backend, BackendChoice::Epoll);
dynamic_suite!(poll_backend, BackendChoice::Poll);

/// The builder rejects the nonsense combinations its doc promises it
/// rejects — and accepts the defaults.
#[test]
fn builder_validation_rejects_nonsense() {
    let root = docroot("builder-validate");
    assert!(NetConfig::builder(&root).build().is_ok());
    assert!(NetConfig::builder(&root)
        .drain_timeout(Duration::ZERO)
        .build()
        .is_err());
    assert!(NetConfig::builder(&root).event_loops(0).build().is_err());
    assert!(NetConfig::builder(&root).helpers(0).build().is_err());
    assert!(NetConfig::builder(&root)
        .dynamic_deadline(Some(Duration::ZERO))
        .build()
        .is_err());
    assert!(NetConfig::builder(&root)
        .dynamic_prefix("app/")
        .build()
        .is_err());
    assert!(NetConfig::builder(&root)
        .dynamic_command(vec![])
        .build()
        .is_err());
    // A sendfile threshold above the largest cacheable entry leaves a
    // dead band of bodies that neither cache nor sendfile.
    assert!(NetConfig::builder(&root)
        .cache_bytes(1024 * 1024)
        .event_loops(1)
        .sendfile_threshold_bytes(u64::MAX)
        .build()
        .is_err());
    let _ = std::fs::remove_dir_all(root);
}
