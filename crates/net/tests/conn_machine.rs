//! Byte-boundary property test against the sans-IO protocol core: a
//! pipelined multi-request burst must produce **byte-identical
//! responses no matter where the transport splits the request stream**
//! — every TCP segmentation of the same bytes is the same
//! conversation. The old loopback tests could only sample a few split
//! points through real sockets; driving [`flash_net::conn`] directly
//! makes every split position cheap enough to test exhaustively.
//!
//! The burst compositions are drawn from a seeded
//! [`flash_simcore::SimRng`], so the exercised request mixes vary but
//! reproduce exactly.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use flash_net::cache::Variant;
use flash_net::conn::machine::Conn;
use flash_net::conn::{
    ConnIo, Done, DoneData, FileData, HelperJob, HelperPort, JobKind, LoadResult, ProtoConfig,
    ShardCore, ShardStats,
};
use flash_net::timer::TimerWheel;
use flash_simcore::SimRng;

/// An always-writable in-memory transport; the response stream is
/// captured behind an `Rc` so it survives the core closing the slot.
struct TestIo {
    inbox: VecDeque<u8>,
    captured: Rc<RefCell<Vec<u8>>>,
}

impl ConnIo for TestIo {
    type FileRef = Arc<Vec<u8>>;

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.inbox.is_empty() {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.inbox.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.inbox.pop_front().unwrap();
        }
        Ok(n)
    }

    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
        let mut out = self.captured.borrow_mut();
        let mut n = 0;
        for b in bufs {
            out.extend_from_slice(b);
            n += b.len();
        }
        Ok(n)
    }

    fn sendfile(&mut self, file: &Arc<Vec<u8>>, offset: &mut u64, max: u64) -> io::Result<usize> {
        let left = (file.len() as u64).saturating_sub(*offset);
        if left == 0 {
            return Ok(0);
        }
        let n = max.min(left);
        self.captured
            .borrow_mut()
            .extend_from_slice(&file[*offset as usize..(*offset + n) as usize]);
        *offset += n;
        Ok(n as usize)
    }
}

struct SyncPort {
    jobs: Vec<HelperJob>,
}

impl HelperPort for SyncPort {
    fn submit(&mut self, job: HelperJob) {
        self.jobs.push(job);
    }
}

/// The in-memory "disk": path → body, with the large file served
/// through the `sendfile` tier.
fn disk() -> HashMap<String, (Vec<u8>, bool)> {
    let mut d = HashMap::new();
    d.insert("/a.html".to_string(), (b"alpha body".to_vec(), false));
    d.insert(
        "/b.html".to_string(),
        (b"a longer beta body for variety".to_vec(), false),
    );
    let big: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    d.insert("/big.bin".to_string(), (big, true));
    d
}

fn exec(files: &HashMap<String, (Vec<u8>, bool)>, job: &HelperJob) -> Done<Arc<Vec<u8>>> {
    let data = match files.get(&job.path) {
        None => DoneData::Loaded(Err(io::ErrorKind::NotFound.into())),
        Some((body, large)) => {
            assert_eq!(job.kind, JobKind::Load, "TTL is disabled in this harness");
            let data = if *large {
                FileData::Fd {
                    file: Arc::new(body.clone()),
                    len: body.len() as u64,
                    mtime: Some(123_456_789),
                }
            } else {
                FileData::Bytes {
                    body: body.clone(),
                    mtime: Some(123_456_789),
                }
            };
            DoneData::Loaded(Ok(LoadResult {
                data,
                variant: Variant::Identity,
                has_gzip: false,
            }))
        }
    };
    Done {
        path: job.path.clone(),
        data,
        epoch: job.epoch,
        token: job.token,
    }
}

fn core() -> ShardCore {
    let cfg = ProtoConfig {
        docroot: PathBuf::from("/test"),
        idle_timeout: None,
        header_read_timeout: None,
        write_stall_timeout: None,
        helper_wait_timeout: None,
        cache_revalidate_ttl: None,
        dynamic_deadline: None,
        dynamic_prefix: None,
        sendfile_threshold: 4096,
        metrics_endpoint: false,
        access_log: false,
    };
    ShardCore::new(0, 1024 * 1024, cfg, Arc::new(ShardStats::default()))
}

/// Drives the single connection to quiescence: every synchronous
/// "helper" completion is executed and delivered until no jobs remain.
fn settle(
    core: &mut ShardCore,
    conns: &mut [Option<Conn<TestIo>>],
    port: &mut SyncPort,
    files: &HashMap<String, (Vec<u8>, bool)>,
    now: Instant,
) {
    loop {
        let _ = core.drive_conn(0, conns, port, now);
        if port.jobs.is_empty() {
            return;
        }
        let jobs: Vec<_> = port.jobs.drain(..).collect();
        let mut completed = Vec::new();
        for job in jobs {
            let done = exec(files, &job);
            core.complete_job(done, conns, &mut completed, port, now);
        }
    }
}

/// Replays `burst` against a fresh core, delivered in the given
/// chunks; returns the full captured response stream.
fn replay(burst: &[u8], chunks: &[&[u8]], files: &HashMap<String, (Vec<u8>, bool)>) -> Vec<u8> {
    assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), burst.len());
    let mut core = core();
    let captured = Rc::new(RefCell::new(Vec::new()));
    let mut conns = vec![Some(Conn::new(TestIo {
        inbox: VecDeque::new(),
        captured: Rc::clone(&captured),
    }))];
    let mut port = SyncPort { jobs: Vec::new() };
    let now = Instant::now();
    let wheel = TimerWheel::new(std::time::Duration::from_millis(10));
    for chunk in chunks {
        let Some(conn) = conns[0].as_mut() else { break };
        conn.io.inbox.extend(chunk.iter().copied());
        settle(&mut core, &mut conns, &mut port, files, now);
        core.check_invariants(&conns, &wheel, |_| 0)
            .expect("invariants must hold after every chunk");
    }
    assert!(
        core.waiters.is_empty() && core.pending_jobs.is_empty(),
        "no parked state may survive a settled replay"
    );
    let out = captured.borrow().clone();
    out
}

/// The 29-byte IMF-fixdate after each `Date: ` is the response
/// stream's only wall-clock content; blank it before comparing.
fn scrub_dates(buf: &mut [u8]) {
    const PAT: &[u8] = b"Date: ";
    const VAL: usize = 29;
    let mut i = 0;
    while i + PAT.len() + VAL <= buf.len() {
        if &buf[i..i + PAT.len()] == PAT {
            for b in &mut buf[i + PAT.len()..i + PAT.len() + VAL] {
                *b = b'#';
            }
            i += PAT.len() + VAL;
        } else {
            i += 1;
        }
    }
}

/// A seeded 3-request pipelined burst: paths and methods drawn from
/// the RNG, the last request `Connection: close`.
fn build_burst(rng: &mut SimRng) -> Vec<u8> {
    const PATHS: [&str; 4] = ["/a.html", "/b.html", "/big.bin", "/missing.html"];
    let mut burst = Vec::new();
    for i in 0..3 {
        let path = PATHS[rng.uniform(0, PATHS.len() as u64) as usize];
        let method = if rng.chance(0.25) { "HEAD" } else { "GET" };
        burst.extend_from_slice(format!("{method} {path} HTTP/1.1\r\nHost: t\r\n").as_bytes());
        if i == 2 {
            burst.extend_from_slice(b"Connection: close\r\n");
        }
        burst.extend_from_slice(b"\r\n");
    }
    burst
}

/// The property: for several seeded bursts, splitting the request
/// stream at **every** byte position yields responses identical to
/// the unsplit replay — partial headers, headers split mid-token,
/// pipelined requests severed across reads, all of it.
#[test]
fn every_split_position_yields_identical_responses() {
    let files = disk();
    let mut rng = SimRng::new(0xB0A7);
    for round in 0..3 {
        let burst = build_burst(&mut rng);
        let mut baseline = replay(&burst, &[&burst], &files);
        scrub_dates(&mut baseline);
        assert!(!baseline.is_empty(), "baseline produced no responses");
        for split in 1..burst.len() {
            let (head, tail) = burst.split_at(split);
            let mut got = replay(&burst, &[head, tail], &files);
            scrub_dates(&mut got);
            assert_eq!(
                got,
                baseline,
                "round {round}: split at byte {split} diverged from unsplit replay\nburst: {:?}",
                String::from_utf8_lossy(&burst)
            );
        }
    }
}

/// Sanity for the harness itself: three-way splits (two boundaries)
/// also match, on a burst that crosses every response tier.
#[test]
fn three_way_splits_match_for_mixed_tiers() {
    let files = disk();
    let burst = b"GET /a.html HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /big.bin HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /missing.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        .to_vec();
    let mut baseline = replay(&burst, &[&burst], &files);
    scrub_dates(&mut baseline);
    assert!(
        baseline.windows(4).any(|w| w == b"200 "),
        "expected a 200 in the stream"
    );
    assert!(
        baseline.windows(4).any(|w| w == b"404 "),
        "expected a 404 in the stream"
    );
    // A spread of two-boundary splits, including both inside one
    // request and across the pipelined seams.
    for (a, b) in [(1, 2), (5, 40), (33, 34), (36, 80), (70, 110)] {
        let mut got = replay(&burst, &[&burst[..a], &burst[a..b], &burst[b..]], &files);
        scrub_dates(&mut got);
        assert_eq!(got, baseline, "split at ({a}, {b}) diverged");
    }
}
