//! End-to-end tests of the real AMPED and MT servers over loopback,
//! using plain `std::net::TcpStream` clients.
//!
//! The whole suite runs **twice**, parameterized over the readiness
//! backend: once pinned to the edge-triggered `epoll` backend (which
//! degrades to poll on platforms without epoll — the suite still
//! passes, it just re-covers the fallback) and once pinned to the
//! portable `poll` backend. The event loop is one code path written to
//! the edge-triggered contract; these tests are what holds both
//! kernels to identical observable behavior.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use flash_net::{
    AcceptMode, AcceptModeKind, BackendChoice, BackendKind, MtServer, NetConfig, Server, ServerKind,
};
use flash_simcore::SimRng;

/// Creates a docroot with known content; returns its path guard.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-net-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("sub")).unwrap();
    std::fs::write(dir.join("index.html"), b"<html>hello flash</html>\n").unwrap();
    std::fs::write(dir.join("sub/page.html"), b"subdir page").unwrap();
    std::fs::write(dir.join("big.bin"), vec![0xABu8; 2_000_000]).unwrap();
    dir
}

/// Base config for a suite run: everything default except the pinned
/// readiness backend.
fn cfg(root: &std::path::Path, backend: BackendChoice) -> NetConfig {
    NetConfig::new(root).with_backend(backend)
}

/// Sends one request and reads until EOF; returns the raw response.
fn get(addr: std::net::SocketAddr, req: &str) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(req.as_bytes()).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

fn body_of(response: &[u8]) -> &[u8] {
    let pos = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    &response[pos + 4..]
}

/// Reads one keep-alive response off `s`: returns (header text, body).
fn read_response(s: &mut TcpStream) -> (String, Vec<u8>) {
    let mut hdr = Vec::new();
    let mut byte = [0u8; 1];
    while !hdr.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut byte).unwrap();
        hdr.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&hdr).into_owned();
    let len: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
    (text, body)
}

fn run_serves_files_and_404s(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let addr = server.addr();

    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("Content-Type: text/html"));
    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");

    let resp = get(addr, "GET /sub/page.html HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"subdir page");

    let resp = get(addr, "GET /nope.html HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));

    // Directory request maps to index.html.
    let resp = get(addr, "GET / HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");

    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_second_request_hits_cache(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    // One shard: all three connections share one content cache, so
    // exactly one disk read happens (shards have private caches).
    let server = Server::start("127.0.0.1:0", cfg(&root, backend).with_event_loops(1)).unwrap();
    let addr = server.addr();
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let stats = server.stats();
    assert_eq!(stats.helper_jobs(), 1, "one disk read");
    assert!(stats.cache_hits() >= 2);
    assert_eq!(stats.requests(), 3);
    assert!(stats.wait_calls() > 0, "stats must count backend waits");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_persistent_connection(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for i in 0..5 {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "request {i}: {text}");
        assert!(text.contains("Connection: keep-alive"));
        assert_eq!(body, b"<html>hello flash</html>\n");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_streams_large_files_intact(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let resp = get(server.addr(), "GET /big.bin HTTP/1.0\r\n\r\n");
    let body = body_of(&resp);
    assert_eq!(body.len(), 2_000_000);
    assert!(body.iter().all(|&b| b == 0xAB));
    // 2 MB is far above the default 256 KiB threshold: this body went
    // out via sendfile, not from the content cache. It is also above
    // the 1 MiB fairness budget, so the transfer crossed at least one
    // voluntary yield — the re-arm path both backends must get right.
    assert!(server.stats().sendfile_calls() >= 1);
    assert_eq!(server.stats().bytes_sendfile(), 2_000_000);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_sendfile_threshold_straddle(tag: &str, backend: BackendChoice) {
    const T: u64 = 8 * 1024;
    let root = docroot(tag);
    let mk = |n: usize| -> Vec<u8> { (0..n).map(|i| (i * 31 + 7) as u8).collect() };
    // One byte below, exactly at, and one byte above the threshold:
    // the first two stay on the cached/writev tier, the third crosses
    // to sendfile ("strictly larger than" is the contract).
    std::fs::write(root.join("below.bin"), mk(T as usize - 1)).unwrap();
    std::fs::write(root.join("at.bin"), mk(T as usize)).unwrap();
    std::fs::write(root.join("above.bin"), mk(T as usize + 1)).unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(1)
            .with_sendfile_threshold(T),
    )
    .unwrap();
    let addr = server.addr();
    for (name, len) in [
        ("below.bin", T as usize - 1),
        ("at.bin", T as usize),
        ("above.bin", T as usize + 1),
    ] {
        let resp = get(addr, &format!("GET /{name} HTTP/1.0\r\n\r\n"));
        assert_eq!(body_of(&resp), &mk(len)[..], "{name} must be byte-exact");
    }
    let stats = server.stats();
    assert_eq!(
        stats.bytes_sendfile(),
        T + 1,
        "only the strictly-larger body takes the sendfile tier"
    );
    assert!(stats.sendfile_calls() >= 1);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_sendfile_preserves_keep_alive(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let body: Vec<u8> = (0..500_000usize).map(|i| (i * 13) as u8).collect();
    std::fs::write(root.join("video.bin"), &body).unwrap();
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Large (sendfile) request, then a small (cached) one on the SAME
    // connection: the large response must neither close the stream nor
    // leave stray bytes that would corrupt the next response.
    s.write_all(b"GET /video.bin HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (hdr, got) = read_response(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert!(hdr.contains("Connection: keep-alive"));
    assert_eq!(got, body);
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (hdr, got) = read_response(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert_eq!(got, b"<html>hello flash</html>\n");
    assert!(server.stats().sendfile_calls() >= 1);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_head_on_large_file(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let resp = get(server.addr(), "HEAD /big.bin HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(
        text.contains("Content-Length: 2000000"),
        "HEAD must advertise the true file length: {text}"
    );
    assert!(body_of(&resp).is_empty(), "HEAD must carry no body");
    assert_eq!(
        server.stats().sendfile_calls(),
        0,
        "no file bytes may move for a HEAD"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_large_bodies_never_enter_cache(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend).with_event_loops(1)).unwrap();
    let addr = server.addr();
    // Warm the small-file hot set, then snapshot cache residency.
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let _ = get(addr, "GET /sub/page.html HTTP/1.0\r\n\r\n");
    let resident = server.stats().cache_used_bytes();
    assert!(resident > 0, "small files must be cached");
    for _ in 0..3 {
        let resp = get(addr, "GET /big.bin HTTP/1.0\r\n\r\n");
        assert_eq!(body_of(&resp).len(), 2_000_000);
    }
    let stats = server.stats();
    assert_eq!(
        stats.cache_used_bytes(),
        resident,
        "large bodies must not displace a single cached byte"
    );
    assert!(stats.sendfile_calls() >= 3);
    assert_eq!(stats.bytes_sendfile(), 3 * 2_000_000);
    // And the small entries are still hits, not re-reads.
    let before = stats.helper_jobs();
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    assert_eq!(server.stats().helper_jobs(), before, "hot set survived");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_concurrent_clients(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let path = if i % 2 == 0 {
                    "/index.html"
                } else {
                    "/sub/page.html"
                };
                for _ in 0..20 {
                    let resp = get(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"));
                    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(server.stats().requests(), 320);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_pipelined_keep_alive(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Three keep-alive requests in a single write: the server must
    // serve all three back-to-back without waiting for more bytes —
    // under the edge-triggered backend this only works if the read
    // path drains the whole burst off one readiness event.
    let burst = "GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /sub/page.html HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n";
    s.write_all(burst.as_bytes()).unwrap();
    let expected_bodies: [&[u8]; 3] = [
        b"<html>hello flash</html>\n",
        b"subdir page",
        b"<html>hello flash</html>\n",
    ];
    for (i, expected) in expected_bodies.iter().enumerate() {
        let (text, body) = read_response(&mut s);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "response {i}: {text}");
        assert_eq!(&body[..], *expected, "response {i}");
    }
    assert_eq!(server.stats().requests(), 3);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_shards_spread_round_robin(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    // Pinned to the single-acceptor mode: exact round-robin dealing is
    // that mode's contract. (Reuseport distribution is the kernel's
    // hash — asserted loosely by its own test below.)
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(4)
            .with_accept_mode(AcceptMode::Single),
    )
    .unwrap();
    let addr = server.addr();
    assert_eq!(server.accept_mode(), AcceptModeKind::Single);
    assert_eq!(server.stats().per_shard().len(), 4);
    for _ in 0..32 {
        let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
        assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
    }
    let stats = server.stats();
    assert_eq!(stats.requests(), 32);
    // Round-robin dealing: every shard saw exactly a quarter of the
    // connections, and each shard's private cache missed exactly once.
    for (i, shard) in stats.per_shard().iter().enumerate() {
        use std::sync::atomic::Ordering;
        assert_eq!(shard.accepted.load(Ordering::Relaxed), 8, "shard {i}");
        assert!(shard.cache_hits.load(Ordering::Relaxed) >= 7, "shard {i}");
    }
    assert_eq!(stats.helper_jobs(), 4, "one disk read per shard cache");
    assert_eq!(stats.cache_hits(), 28);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_cache_hit_is_one_writev(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend).with_event_loops(1)).unwrap();
    let addr = server.addr();
    // Warm the cache, then measure the syscall count of a hit.
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let before = server.stats().writev_calls();
    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
    let after = server.stats().writev_calls();
    assert_eq!(
        after - before,
        1,
        "header + body of a cache hit must go out in a single gathered write"
    );
    assert_eq!(server.stats().cache_hits(), 1);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_rejects_bad_requests_and_post(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let addr = server.addr();
    let resp = get(addr, "BOGUS /x HTTP/9.9\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 400"));
    let resp = get(addr, "POST /cgi-bin/x HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 501"));
    // Traversal normalizes inside the docroot; escaping yields 400.
    let resp = get(addr, "GET /../../etc/passwd HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 400"));
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_head_returns_headers_only(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let resp = get(server.addr(), "HEAD /index.html HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 200 OK"));
    assert!(text.contains("Content-Length: 25"));
    assert!(body_of(&resp).is_empty());
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_headers_are_alignment_padded(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let resp = get(server.addr(), "GET /index.html HTTP/1.0\r\n\r\n");
    let pos = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
    assert_eq!((pos + 4) % 32, 0, "header must be 32-byte aligned (§5.5)");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Idle keep-alive reaping: a parked connection is closed once it sits
/// past `idle_timeout`, while a connection that keeps issuing requests
/// survives — activity resets its clock.
fn run_idle_reaper(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    // A generous timeout relative to the active client's 150 ms
    // request spacing: a CI scheduler stall would need to exceed a
    // full second before the survivor could be mis-reaped.
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(1)
            .with_idle_timeout(Some(Duration::from_millis(1200))),
    )
    .unwrap();
    let addr = server.addr();

    // The idler completes one request, then goes quiet.
    let mut idler = TcpStream::connect(addr).unwrap();
    idler
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    idler
        .write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (hdr, _) = read_response(&mut idler);
    assert!(hdr.contains("Connection: keep-alive"), "{hdr}");

    // The active client keeps requesting well inside the timeout.
    let mut active = TcpStream::connect(addr).unwrap();
    active
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for _ in 0..10 {
        active
            .write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (hdr, _) = read_response(&mut active);
        assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
        std::thread::sleep(Duration::from_millis(150));
    }

    // ~1.5 s have passed: the idler must be gone (EOF, not a hang);
    // the blocking read returns 0 the moment the reaper closes it.
    let mut buf = [0u8; 16];
    let n = idler.read(&mut buf).unwrap();
    assert_eq!(n, 0, "reaper must close the idle connection");
    assert!(
        server.stats().idle_reaped() >= 1,
        "reap must be counted: {}",
        server.stats().idle_reaped()
    );

    // The active connection is still serviceable.
    active
        .write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (hdr, _) = read_response(&mut active);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "survivor died: {hdr}");

    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Slow-header (slowloris) deadline: a client that trickles request
/// bytes without ever completing the header is closed within ~1.25×
/// the configured header-read deadline — and the trickle must NOT
/// refresh the deadline.
fn run_slow_header_deadline(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let timeout = Duration::from_millis(800);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(1)
            .with_header_read_timeout(Some(timeout))
            // Generous sibling timeouts so only the header deadline
            // can be the one that fires.
            .with_idle_timeout(Some(Duration::from_secs(30)))
            .with_write_stall_timeout(Some(Duration::from_secs(30))),
    )
    .unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = std::time::Instant::now();
    s.write_all(b"GET /index.html HT").unwrap();
    // Keep trickling inside the deadline: if trickled bytes re-armed
    // the deadline (the slowloris hole), the close would slip past the
    // upper bound below.
    std::thread::sleep(Duration::from_millis(250));
    s.write_all(b"T").unwrap();
    std::thread::sleep(Duration::from_millis(250));
    s.write_all(b"P").unwrap();
    // The server must close us: read to EOF (or a reset — both count
    // as closed).
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink);
    let elapsed = start.elapsed();
    assert!(sink.is_empty(), "no response may precede the close");
    assert!(
        elapsed >= timeout - Duration::from_millis(50),
        "closed early: {elapsed:?}"
    );
    // Wheel bound: deadline + tick rounding (timeout/8) + wait cadence
    // (timeout/8) = 1.25×; the constant absorbs CI scheduling jitter.
    assert!(
        elapsed <= timeout.mul_f64(1.25) + Duration::from_millis(400),
        "closed late: {elapsed:?}"
    );
    assert_eq!(server.stats().read_timeouts(), 1, "cause must be counted");
    assert_eq!(server.stats().idle_reaped(), 0);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Write-stall deadline: a client that requests a large (sendfile)
/// body and then stops reading is closed within ~1.25× the configured
/// write-progress deadline, with the matching counter bumped.
fn run_stalled_reader_deadline(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    // Big enough that the kernel's socket buffers (both directions of
    // loopback, auto-tuned) can never absorb the whole body.
    std::fs::write(root.join("huge.bin"), vec![0x5Au8; 32 * 1024 * 1024]).unwrap();
    let timeout = Duration::from_millis(800);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(1)
            .with_write_stall_timeout(Some(timeout))
            .with_idle_timeout(Some(Duration::from_secs(30)))
            .with_header_read_timeout(Some(Duration::from_secs(30))),
    )
    .unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /huge.bin HTTP/1.0\r\n\r\n").unwrap();
    // Read a little to let the response start, then stop reading
    // entirely: the server keeps sending until both socket buffers
    // fill, then makes no progress until the deadline fires.
    let mut chunk = [0u8; 65536];
    s.read_exact(&mut chunk).unwrap();
    let stalled_at = std::time::Instant::now();
    // Watch the server's own counter — the client-side close is
    // asynchronous (buffered bytes still drain), the stat is not.
    let deadline_bound = timeout.mul_f64(1.25) + Duration::from_millis(400);
    while server.stats().write_stall_timeouts() == 0 {
        assert!(
            stalled_at.elapsed() <= deadline_bound,
            "stall not reaped within {deadline_bound:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let elapsed = stalled_at.elapsed();
    assert!(
        elapsed >= timeout - Duration::from_millis(50),
        "reaped early: {elapsed:?} (forward progress must re-arm)"
    );
    assert_eq!(server.stats().write_stall_timeouts(), 1);
    assert_eq!(server.stats().read_timeouts(), 0);
    // The connection really is dead: draining it ends in EOF/reset
    // rather than the full 32 MiB body.
    let mut drained = 0u64;
    loop {
        match s.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n as u64,
        }
    }
    assert!(
        drained < 32 * 1024 * 1024,
        "close must cut the body short, got {drained} more bytes"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// A keep-alive connection making steady progress through a large
/// body is NOT write-stall reaped even when the whole transfer takes
/// several deadlines' worth of time — progress re-arms the clock.
fn run_slow_but_steady_reader_survives(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let timeout = Duration::from_millis(400);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(1)
            .with_write_stall_timeout(Some(timeout)),
    )
    .unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /big.bin HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    // Drain the 2 MB response in small sips spread over ~4 deadlines:
    // each sip is forward progress, so the deadline keeps re-arming.
    let (hdr, body) = {
        let mut hdr = Vec::new();
        let mut byte = [0u8; 1];
        while !hdr.ends_with(b"\r\n\r\n") {
            s.read_exact(&mut byte).unwrap();
            hdr.push(byte[0]);
        }
        let mut body = vec![0u8; 2_000_000];
        let mut off = 0;
        let sip = 125_000; // 16 sips × 100 ms ≈ 1.6 s total
        while off < body.len() {
            let n = (body.len() - off).min(sip);
            s.read_exact(&mut body[off..off + n]).unwrap();
            off += n;
            std::thread::sleep(Duration::from_millis(100));
        }
        (String::from_utf8_lossy(&hdr).into_owned(), body)
    };
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert!(body.iter().all(|&b| b == 0xAB));
    assert_eq!(
        server.stats().write_stall_timeouts(),
        0,
        "steady progress must never trip the stall deadline"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// `If-Modified-Since` handling across both body tiers: a current
/// validator gets a bodyless 304 (keep-alive preserved, counter
/// bumped), a stale one gets the full 200 with `Last-Modified`.
fn run_if_modified_since(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend).with_event_loops(1)).unwrap();
    let addr = server.addr();

    // Prime: the 200 carries Last-Modified (the validator clients echo).
    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    let validator = text
        .lines()
        .find_map(|l| l.strip_prefix("Last-Modified: "))
        .expect("200 must carry Last-Modified")
        .trim()
        .to_owned();

    // Conditional with the echoed validator → bodyless 304 on a
    // keep-alive connection that stays serviceable.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(
        format!("GET /index.html HTTP/1.1\r\nHost: t\r\nIf-Modified-Since: {validator}\r\n\r\n")
            .as_bytes(),
    )
    .unwrap();
    let mut hdr = Vec::new();
    let mut byte = [0u8; 1];
    while !hdr.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut byte).unwrap();
        hdr.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&hdr);
    assert!(text.starts_with("HTTP/1.1 304 Not Modified"), "{text}");
    assert!(!text.contains("Content-Length"), "304 is bodyless: {text}");
    assert!(text.contains("Connection: keep-alive"));
    // The very next request on the same connection must parse cleanly —
    // i.e. the 304 really carried no body bytes.
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (text, body) = read_response(&mut s);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert_eq!(body, b"<html>hello flash</html>\n");
    assert_eq!(server.stats().not_modified(), 1);

    // A validator older than the file → full 200.
    let resp = get(
        addr,
        "GET /index.html HTTP/1.0\r\nIf-Modified-Since: Thu, 01 Jan 1970 00:00:00 GMT\r\n\r\n",
    );
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200 OK"));
    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");

    // Same dance on the sendfile tier: big.bin is far above the
    // threshold, and its 304 must move zero file bytes.
    let resp = get(addr, "HEAD /big.bin HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    let validator = text
        .lines()
        .find_map(|l| l.strip_prefix("Last-Modified: "))
        .expect("sendfile-tier 200 must carry Last-Modified")
        .trim()
        .to_owned();
    let sendfile_before = server.stats().bytes_sendfile();
    let resp = get(
        addr,
        &format!("GET /big.bin HTTP/1.0\r\nIf-Modified-Since: {validator}\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 304 Not Modified"), "{text}");
    assert_eq!(
        server.stats().bytes_sendfile(),
        sendfile_before,
        "a 304 must not stream any of the file"
    );
    assert_eq!(server.stats().not_modified(), 2);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// The Date header is the real current time in IMF-fixdate form —
/// including on cache hits, whose pre-rendered headers are re-dated at
/// send time rather than serving the load-time date forever.
fn run_date_header_is_current(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend).with_event_loops(1)).unwrap();
    let date_of = |resp: &[u8]| -> i64 {
        let text = String::from_utf8_lossy(resp);
        let date = text
            .lines()
            .find_map(|l| l.strip_prefix("Date: "))
            .expect("Date header present")
            .trim()
            .to_owned();
        flash_http::date::parse_imf(&date)
            .unwrap_or_else(|| panic!("Date must be IMF-fixdate, got {date:?}"))
    };
    // Miss path: rendered now.
    let before = flash_http::date::unix_now();
    let resp = get(server.addr(), "GET /index.html HTTP/1.0\r\n\r\n");
    let after = flash_http::date::unix_now();
    let t = date_of(&resp);
    assert!(
        t >= before - 2 && t <= after + 2,
        "Date {t} outside [{before}, {after}]"
    );
    // Hit path: the entry was rendered ≥1 s ago, but its served Date
    // must be NOW, not the render time.
    std::thread::sleep(Duration::from_millis(1500));
    let before = flash_http::date::unix_now();
    let resp = get(server.addr(), "GET /index.html HTTP/1.0\r\n\r\n");
    let after = flash_http::date::unix_now();
    let t = date_of(&resp);
    assert!(
        t >= before - 1 && t <= after + 1,
        "cache hit served a stale Date: {t} outside [{before}, {after}]"
    );
    assert!(server.stats().cache_hits() >= 1, "second GET must be a hit");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Connection-header token lists steer keep-alive end to end.
fn run_connection_token_list(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let addr = server.addr();
    // 1.0 + "keep-alive, upgrade": must keep the connection open.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /index.html HTTP/1.0\r\nConnection: keep-alive, upgrade\r\n\r\n")
        .unwrap();
    let (text, _) = read_response(&mut s);
    assert!(text.contains("Connection: keep-alive"), "{text}");
    s.write_all(b"GET /index.html HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let (text, _) = read_response(&mut s);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    // 1.1 + "close, te": must close after the response.
    let resp = get(
        addr,
        "GET /index.html HTTP/1.1\r\nHost: t\r\nConnection: close, te\r\n\r\n",
    );
    let text = String::from_utf8_lossy(&resp);
    assert!(text.contains("Connection: close"), "{text}");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_mt_server(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = MtServer::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
                    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
                    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let resp = get(addr, "GET /gone HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// The MT server honours the same deadline knobs through its blocking
/// socket timeouts: a slow header sender is disconnected, and a
/// conditional request gets a 304.
fn run_mt_deadline_and_304(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let timeout = Duration::from_millis(800);
    let server = MtServer::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_header_read_timeout(Some(timeout))
            .with_idle_timeout(Some(Duration::from_secs(30))),
    )
    .unwrap();
    let addr = server.addr();

    // Slow header sender: closed within the deadline plus the worker's
    // 200 ms check cadence.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = std::time::Instant::now();
    s.write_all(b"GET /index.html HT").unwrap();
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink);
    let elapsed = start.elapsed();
    assert!(sink.is_empty(), "no response may precede the close");
    assert!(
        elapsed >= timeout - Duration::from_millis(50),
        "closed early: {elapsed:?}"
    );
    assert!(
        elapsed <= timeout + Duration::from_millis(700),
        "closed late: {elapsed:?}"
    );

    // 304 parity: prime, echo the validator back, expect Not Modified.
    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    let validator = text
        .lines()
        .find_map(|l| l.strip_prefix("Last-Modified: "))
        .expect("MT 200 must carry Last-Modified")
        .trim()
        .to_owned();
    let resp = get(
        addr,
        &format!("GET /index.html HTTP/1.0\r\nIf-Modified-Since: {validator}\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 304 Not Modified"), "{text}");
    assert!(!text.contains("Content-Length"), "{text}");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Per-shard reuseport listeners: with no acceptor thread in the way,
/// the kernel's 4-tuple hash must spread connections over every
/// shard's listener. The distribution is the kernel's, so it is
/// asserted loosely — every shard saw *some* traffic and nothing was
/// lost — not as an exact split.
fn run_reuseport_accept_distribution(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(4)
            .with_accept_mode(AcceptMode::ReusePort),
    )
    .unwrap();
    if server.accept_mode() != AcceptModeKind::ReusePort {
        // Platform without load-balancing SO_REUSEPORT: the mode
        // degraded to the acceptor thread; nothing to assert here.
        server.stop();
        let _ = std::fs::remove_dir_all(root);
        return;
    }
    let addr = server.addr();
    const CONNS: u64 = 96;
    for _ in 0..CONNS {
        let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
        assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
    }
    let stats = server.stats();
    assert_eq!(stats.requests(), CONNS);
    assert_eq!(
        stats.accepted(),
        CONNS,
        "every connection must be accepted by some shard"
    );
    // Loose distribution bound: 96 connections over 4 reuseport
    // listeners leaves each shard empty with probability (3/4)^96 —
    // a shard with zero accepts means its listener never took traffic.
    for (i, shard) in stats.per_shard().iter().enumerate() {
        use std::sync::atomic::Ordering;
        let accepted = shard.accepted.load(Ordering::Relaxed);
        assert!(accepted > 0, "shard {i} accepted no connections");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// The observable protocol behavior — keep-alive, pipelining, both
/// body tiers on one connection — must be identical whichever accept
/// path delivered the connection.
fn run_accept_mode_parity(tag: &str, backend: BackendChoice, mode: AcceptMode) {
    let root = docroot(tag);
    let body: Vec<u8> = (0..400_000usize).map(|i| (i * 7) as u8).collect();
    std::fs::write(root.join("video.bin"), &body).unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(2)
            .with_accept_mode(mode),
    )
    .unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // A pipelined burst: both requests must come back in order off one
    // readiness event.
    let burst = "GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /sub/page.html HTTP/1.1\r\nHost: t\r\n\r\n";
    s.write_all(burst.as_bytes()).unwrap();
    let (hdr, got) = read_response(&mut s);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert_eq!(got, b"<html>hello flash</html>\n");
    let (_, got) = read_response(&mut s);
    assert_eq!(got, b"subdir page");
    // A sendfile-tier body on the same keep-alive connection...
    s.write_all(b"GET /video.bin HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (hdr, got) = read_response(&mut s);
    assert!(hdr.contains("Connection: keep-alive"), "{hdr}");
    assert_eq!(got, body);
    // ...followed by a small cached one: no stray bytes, stream intact.
    s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, got) = read_response(&mut s);
    assert_eq!(got, b"<html>hello flash</html>\n");
    assert!(server.stats().sendfile_calls() >= 1);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Shutdown with connections mid-flight — idle keep-alive, a
/// half-sent request header — must complete promptly and close every
/// connection rather than hang in a join.
fn run_accept_shutdown_with_inflight(tag: &str, backend: BackendChoice, mode: AcceptMode) {
    let root = docroot(tag);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(2)
            .with_accept_mode(mode),
    )
    .unwrap();
    let addr = server.addr();
    // An established keep-alive connection (request served, parked).
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    idle.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let _ = read_response(&mut idle);
    // A connection with a half-sent request header.
    let mut partial = TcpStream::connect(addr).unwrap();
    partial
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    partial.write_all(b"GET /index.html HT").unwrap();
    let started = std::time::Instant::now();
    server.stop();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop() must not hang on in-flight connections: {:?}",
        started.elapsed()
    );
    let _ = std::fs::remove_dir_all(root);
}

/// Stopping the server must actually close every listener: the exact
/// address must be immediately rebindable by a fresh server in either
/// accept mode (a leaked per-shard reuseport socket would make the
/// non-reuseport rebind fail forever).
fn run_accept_port_rebind_after_stop(tag: &str, backend: BackendChoice, mode: AcceptMode) {
    let root = docroot(tag);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(2)
            .with_accept_mode(mode),
    )
    .unwrap();
    let addr = server.addr();
    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
    server.stop();
    // Rebind the same port in single mode — which holds the only
    // listener, so any leaked reuseport socket from the first server
    // would fail this bind.
    let server2 = Server::start(
        addr,
        cfg(&root, backend)
            .with_event_loops(2)
            .with_accept_mode(AcceptMode::Single),
    )
    .expect("port must be rebindable after stop");
    assert_eq!(server2.addr(), addr);
    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
    server2.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Content-cache staleness vs mtime: a cached file edited on disk must
/// stop being served from the stale bytes once the revalidation TTL
/// lapses, and an unchanged file must revalidate (cheap re-stat)
/// without a reload.
fn run_cache_revalidation(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let ttl = Duration::from_millis(100);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(1)
            .with_cache_revalidate_ttl(Some(ttl)),
    )
    .unwrap();
    let addr = server.addr();
    std::fs::write(root.join("live.html"), b"version one").unwrap();
    let resp = get(addr, "GET /live.html HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"version one");

    // Within the TTL the entry is trusted: no re-stat, no reload.
    let jobs_before = server.stats().helper_jobs();
    let resp = get(addr, "GET /live.html HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"version one");
    assert_eq!(
        server.stats().helper_jobs(),
        jobs_before,
        "a fresh hit must not touch the helper pool"
    );

    // Edit the file (different length, so the mismatch is visible even
    // within one mtime second), let the TTL lapse, and refetch: the
    // stale bytes must be evicted and the new content served.
    std::fs::write(root.join("live.html"), b"version two, longer").unwrap();
    std::thread::sleep(ttl + Duration::from_millis(150));
    let resp = get(addr, "GET /live.html HTTP/1.0\r\n\r\n");
    assert_eq!(
        body_of(&resp),
        b"version two, longer",
        "stale cached bytes must not be served past the TTL"
    );
    assert!(
        server.stats().stale_evicted() >= 1,
        "the eviction must be counted"
    );

    // And the stale entry must stop 304-validating: a validator echoed
    // from the *old* version must not suppress the new body. (The new
    // 200 carries the new Last-Modified.)
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.contains("Content-Length: 19"), "{text}");

    // Unchanged file past the TTL: served from memory after a cheap
    // re-stat — a revalidation, not an eviction.
    std::thread::sleep(ttl + Duration::from_millis(150));
    let evicted_before = server.stats().stale_evicted();
    let resp = get(addr, "GET /live.html HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"version two, longer");
    assert!(
        server.stats().revalidations() >= 1,
        "the matching re-stat must be counted"
    );
    assert_eq!(
        server.stats().stale_evicted(),
        evicted_before,
        "an unchanged file must not be evicted"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// The MT server applies the same revalidation policy inline.
fn run_mt_cache_revalidation(tag: &str, backend: BackendChoice) {
    let root = docroot(tag);
    let ttl = Duration::from_millis(100);
    let server = MtServer::start(
        "127.0.0.1:0",
        cfg(&root, backend).with_cache_revalidate_ttl(Some(ttl)),
    )
    .unwrap();
    let addr = server.addr();
    std::fs::write(root.join("live.html"), b"mt version one").unwrap();
    let resp = get(addr, "GET /live.html HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"mt version one");
    std::fs::write(root.join("live.html"), b"mt version two!!").unwrap();
    std::thread::sleep(ttl + Duration::from_millis(150));
    let resp = get(addr, "GET /live.html HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"mt version two!!");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_backend_resolution(tag: &str, backend: BackendChoice, expect: BackendKind) {
    let root = docroot(tag);
    let server = Server::start("127.0.0.1:0", cfg(&root, backend)).unwrap();
    assert_eq!(server.backend(), expect);
    // Sanity: the resolved backend actually serves.
    let resp = get(server.addr(), "GET /index.html HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Instantiates the full suite for one pinned backend; test names keep
/// their historical `amped_*`/`mt_*` forms inside a per-backend module.
/// Extracts a header value (case-insensitive name) from response text.
fn hdr_value(text: &str, name: &str) -> Option<String> {
    text.lines().find_map(|l| {
        let (k, v) = l.split_once(": ")?;
        k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

/// Reads one bodyless keep-alive response's header text off `s`.
fn read_header_only(s: &mut TcpStream) -> String {
    let mut hdr = Vec::new();
    let mut byte = [0u8; 1];
    while !hdr.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut byte).unwrap();
        hdr.push(byte[0]);
    }
    String::from_utf8_lossy(&hdr).into_owned()
}

/// Single-range behavior every driver must share, run against whichever
/// server listens at `addr`: 206 spans and suffixes with exact
/// `Content-Range`, HEAD carrying the 206 plan bodylessly, past-EOF →
/// 416 in the `bytes */<len>` form on a connection that stays
/// serviceable, inverted bounds degrading to the full 200, and
/// `If-Range` gating on the strong validator.
fn check_range_parity(addr: std::net::SocketAddr, name: &str, full: &[u8]) {
    let total = full.len();
    // Plain 200 first: grabs the validator If-Range will echo.
    let resp = get(addr, &format!("GET /{name} HTTP/1.0\r\n\r\n"));
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    let etag = hdr_value(&text, "ETag").expect("200 must carry ETag");
    assert_eq!(body_of(&resp), full);

    // A mid-body span → 206 with the exact window.
    let resp = get(
        addr,
        &format!("GET /{name} HTTP/1.0\r\nRange: bytes=5-20\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 206 Partial Content"), "{text}");
    assert_eq!(
        hdr_value(&text, "Content-Range").as_deref(),
        Some(format!("bytes 5-20/{total}").as_str())
    );
    assert_eq!(hdr_value(&text, "Content-Length").as_deref(), Some("16"));
    assert_eq!(body_of(&resp), &full[5..=20]);

    // Suffix form: the final 7 bytes.
    let resp = get(
        addr,
        &format!("GET /{name} HTTP/1.0\r\nRange: bytes=-7\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 206"), "{text}");
    assert_eq!(body_of(&resp), &full[total - 7..]);
    assert_eq!(
        hdr_value(&text, "Content-Range").as_deref(),
        Some(format!("bytes {}-{}/{total}", total - 7, total - 1).as_str())
    );

    // HEAD + Range: the 206 header plan, zero body bytes.
    let resp = get(
        addr,
        &format!("HEAD /{name} HTTP/1.0\r\nRange: bytes=5-20\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 206"), "{text}");
    assert_eq!(hdr_value(&text, "Content-Length").as_deref(), Some("16"));
    assert!(body_of(&resp).is_empty(), "HEAD must carry no body: {text}");

    // Past-EOF → 416 with the star form, and the connection survives.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(
        format!(
            "GET /{name} HTTP/1.1\r\nHost: t\r\nRange: bytes={}-\r\n\r\n",
            total + 10
        )
        .as_bytes(),
    )
    .unwrap();
    let (text, _) = read_response(&mut s);
    assert!(
        text.starts_with("HTTP/1.1 416 Range Not Satisfiable"),
        "{text}"
    );
    assert_eq!(
        hdr_value(&text, "Content-Range").as_deref(),
        Some(format!("bytes */{total}").as_str())
    );
    assert!(
        text.contains("Connection: keep-alive"),
        "a 416 must not cost the connection: {text}"
    );
    s.write_all(format!("GET /{name} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let (text, body) = read_response(&mut s);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "after a 416: {text}");
    assert_eq!(body, full);

    // Inverted bounds are malformed: dropped at parse → the full 200.
    let resp = get(
        addr,
        &format!("GET /{name} HTTP/1.0\r\nRange: bytes=20-5\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert_eq!(body_of(&resp), full);

    // If-Range: the current validator applies the range...
    let resp = get(
        addr,
        &format!("GET /{name} HTTP/1.0\r\nRange: bytes=0-3\r\nIf-Range: {etag}\r\n\r\n"),
    );
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 206"));
    assert_eq!(body_of(&resp), &full[..4]);
    // ...a stale one degrades to the full representation.
    let resp = get(
        addr,
        &format!("GET /{name} HTTP/1.0\r\nRange: bytes=0-3\r\nIf-Range: \"stale\"\r\n\r\n"),
    );
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200 OK"));
    assert_eq!(body_of(&resp), full);
}

/// Conditional-request precedence every driver must share: strong
/// `ETag` on the 200, `If-None-Match` deciding alone when present (a
/// match 304s past a stale `If-Modified-Since`; a mismatch serves 200
/// past a current one), and `*` matching any representation.
fn check_etag_conditional(addr: std::net::SocketAddr, name: &str, full: &[u8]) {
    let resp = get(addr, &format!("GET /{name} HTTP/1.0\r\n\r\n"));
    let text = String::from_utf8_lossy(&resp).into_owned();
    let etag = hdr_value(&text, "ETag").expect("200 must carry ETag");
    assert!(
        etag.starts_with('"') && etag.ends_with('"'),
        "strong quoted form: {etag}"
    );
    let lm = hdr_value(&text, "Last-Modified").expect("200 must carry Last-Modified");

    // Exact match → bodyless 304 repeating the tag, keep-alive intact.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(
        format!("GET /{name} HTTP/1.1\r\nHost: t\r\nIf-None-Match: {etag}\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let text = read_header_only(&mut s);
    assert!(text.starts_with("HTTP/1.1 304"), "{text}");
    assert!(!text.contains("Content-Length"), "304 is bodyless: {text}");
    assert_eq!(hdr_value(&text, "ETag").as_deref(), Some(etag.as_str()));

    // The match wins over a stale If-Modified-Since on the same request.
    s.write_all(
        format!(
            "GET /{name} HTTP/1.1\r\nHost: t\r\nIf-None-Match: {etag}\r\n\
             If-Modified-Since: Thu, 01 Jan 1970 00:00:00 GMT\r\n\r\n"
        )
        .as_bytes(),
    )
    .unwrap();
    let text = read_header_only(&mut s);
    assert!(
        text.starts_with("HTTP/1.1 304"),
        "INM match must override a stale IMS: {text}"
    );

    // `*` matches any current representation.
    s.write_all(format!("GET /{name} HTTP/1.1\r\nHost: t\r\nIf-None-Match: *\r\n\r\n").as_bytes())
        .unwrap();
    let text = read_header_only(&mut s);
    assert!(text.starts_with("HTTP/1.1 304"), "{text}");
    drop(s);

    // A mismatch serves 200 even though If-Modified-Since alone would
    // have said 304 — If-None-Match decides alone when present.
    let resp = get(
        addr,
        &format!(
            "GET /{name} HTTP/1.0\r\nIf-None-Match: \"other\"\r\nIf-Modified-Since: {lm}\r\n\r\n"
        ),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(
        text.starts_with("HTTP/1.1 200 OK"),
        "INM mismatch must override a current IMS: {text}"
    );
    assert_eq!(body_of(&resp), full);
}

/// Precompressed-variant negotiation every driver must share: an
/// `Accept-Encoding: gzip` client gets the `.gz` sibling's bytes under
/// `Content-Encoding: gzip` + `Vary`, a plain client the identity
/// bytes (still with `Vary` — the resource negotiates), a resource
/// with no sibling falls back silently, and the gzip representation
/// revalidates under its own `ETag`.
fn check_gzip_variant(
    addr: std::net::SocketAddr,
    gz_name: &str,
    identity: &[u8],
    gz: &[u8],
    plain_name: &str,
) {
    let resp = get(
        addr,
        &format!("GET /{gz_name} HTTP/1.0\r\nAccept-Encoding: gzip\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert_eq!(
        hdr_value(&text, "Content-Encoding").as_deref(),
        Some("gzip")
    );
    assert_eq!(
        hdr_value(&text, "Vary").as_deref(),
        Some("Accept-Encoding"),
        "{text}"
    );
    assert_eq!(
        hdr_value(&text, "Content-Length").as_deref(),
        Some(gz.len().to_string().as_str()),
        "the gzip response describes the bytes actually sent"
    );
    assert_eq!(body_of(&resp), gz);
    let gz_etag = hdr_value(&text, "ETag").expect("gzip 200 must carry ETag");
    assert!(
        gz_etag.ends_with("-gz\""),
        "gzip representation gets its own validator: {gz_etag}"
    );

    // Plain client: identity bytes, no Content-Encoding, Vary present.
    let resp = get(addr, &format!("GET /{gz_name} HTTP/1.0\r\n\r\n"));
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(hdr_value(&text, "Content-Encoding").is_none(), "{text}");
    assert_eq!(hdr_value(&text, "Vary").as_deref(), Some("Accept-Encoding"));
    assert_eq!(body_of(&resp), identity);
    let id_etag = hdr_value(&text, "ETag").expect("identity 200 must carry ETag");
    assert_ne!(
        id_etag, gz_etag,
        "the two representations never share a validator"
    );

    // No sibling: the gzip preference falls back to identity, with no
    // Content-Encoding and no Vary (nothing to negotiate).
    let resp = get(
        addr,
        &format!("GET /{plain_name} HTTP/1.0\r\nAccept-Encoding: gzip\r\n\r\n"),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(hdr_value(&text, "Content-Encoding").is_none(), "{text}");
    assert!(hdr_value(&text, "Vary").is_none(), "{text}");

    // The gzip representation revalidates under its own tag.
    let resp = get(
        addr,
        &format!(
            "GET /{gz_name} HTTP/1.0\r\nAccept-Encoding: gzip\r\nIf-None-Match: {gz_etag}\r\n\r\n"
        ),
    );
    let text = String::from_utf8_lossy(&resp).into_owned();
    assert!(text.starts_with("HTTP/1.1 304"), "{text}");
}

/// Fixture set shared by the parity runners: a patterned file on each
/// body tier plus a negotiated resource with a `.gz` sibling.
fn parity_root(tag: &str) -> (std::path::PathBuf, Vec<u8>, Vec<u8>) {
    let root = docroot(tag);
    let pat: Vec<u8> = (0..4096usize).map(|i| (i * 31 + 7) as u8).collect();
    let patbig: Vec<u8> = (0..24 * 1024usize).map(|i| (i * 7 + 11) as u8).collect();
    std::fs::write(root.join("pat.bin"), &pat).unwrap();
    std::fs::write(root.join("patbig.bin"), &patbig).unwrap();
    std::fs::write(root.join("z.html"), b"<html>identity z</html>").unwrap();
    std::fs::write(root.join("z.html.gz"), b"\x1f\x8b-simulated-gz-z").unwrap();
    std::fs::write(root.join("plain.html"), b"no sibling here").unwrap();
    (root, pat, patbig)
}

/// The full 206/416/ETag-304/gzip-variant battery against one server
/// address; returns only when every cross-tier assert held.
fn check_send_plane(addr: std::net::SocketAddr, pat: &[u8], patbig: &[u8]) {
    // pat.bin sits below the 8 KiB threshold (cached/writev tier),
    // patbig.bin above it (sendfile window tier).
    check_range_parity(addr, "pat.bin", pat);
    check_range_parity(addr, "patbig.bin", patbig);
    check_etag_conditional(addr, "pat.bin", pat);
    check_etag_conditional(addr, "patbig.bin", patbig);
    check_gzip_variant(
        addr,
        "z.html",
        b"<html>identity z</html>",
        b"\x1f\x8b-simulated-gz-z",
        "plain.html",
    );
}

fn run_send_plane_parity(tag: &str, backend: BackendChoice) {
    let (root, pat, patbig) = parity_root(tag);
    let server = Server::start(
        "127.0.0.1:0",
        cfg(&root, backend)
            .with_event_loops(1)
            .with_sendfile_threshold(8 * 1024),
    )
    .unwrap();
    check_send_plane(server.addr(), &pat, &patbig);
    let stats = server.stats();
    assert!(
        stats.range_requests() >= 10,
        "both tiers' range traffic must be counted: {}",
        stats.range_requests()
    );
    assert_eq!(stats.range_unsatisfiable(), 2, "one 416 per tier");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

fn run_mt_send_plane_parity(tag: &str, backend: BackendChoice) {
    let (root, pat, patbig) = parity_root(tag);
    let server = MtServer::start(
        "127.0.0.1:0",
        cfg(&root, backend).with_sendfile_threshold(8 * 1024),
    )
    .unwrap();
    check_send_plane(server.addr(), &pat, &patbig);
    let stats = server.stats();
    assert!(
        stats.range_requests() >= 10,
        "MT must count range traffic identically: {}",
        stats.range_requests()
    );
    assert_eq!(stats.range_unsatisfiable(), 2);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

/// Property test: seeded random `(offset, len)` windows — plus the
/// crafted full-body, final-byte, and threshold-straddling windows —
/// must come back byte-exact with exact `Content-Range` on both body
/// tiers. `mt` selects the driver; the window list is identical.
fn run_random_range_windows(tag: &str, backend: BackendChoice, mt: bool) {
    const T: u64 = 8 * 1024;
    let root = docroot(tag);
    let small: Vec<u8> = (0..(T as usize / 2)).map(|i| (i * 13 + 3) as u8).collect();
    let big: Vec<u8> = (0..(3 * T as usize)).map(|i| (i * 29 + 5) as u8).collect();
    std::fs::write(root.join("wsmall.bin"), &small).unwrap();
    std::fs::write(root.join("wbig.bin"), &big).unwrap();
    let c = cfg(&root, backend)
        .with_event_loops(1)
        .with_sendfile_threshold(T);
    // Both drivers behind the one ServeHandle surface: no per-server
    // match arms anywhere below.
    let kind = if mt {
        ServerKind::Mt
    } else {
        ServerKind::Amped
    };
    let srv = flash_net::handle::start(kind, "127.0.0.1:0", c).unwrap();
    let addr = srv.local_addr();
    let mut rng = SimRng::new(0x51D3);
    let mut big_window_bytes = 0u64;
    for (name, body) in [("wsmall.bin", &small), ("wbig.bin", &big)] {
        let len = body.len() as u64;
        let mut windows: Vec<(u64, u64)> = vec![(0, len), (len - 1, 1)];
        if len > T {
            // A window straddling the sendfile threshold offset.
            windows.push((T - 1, 2));
        }
        for _ in 0..20 {
            let off = rng.uniform(0, len);
            windows.push((off, 1 + rng.uniform(0, len - off)));
        }
        for (off, l) in windows {
            let last = off + l - 1;
            if len > T {
                big_window_bytes += l;
            }
            let resp = get(
                addr,
                &format!("GET /{name} HTTP/1.0\r\nRange: bytes={off}-{last}\r\n\r\n"),
            );
            let text = String::from_utf8_lossy(&resp).into_owned();
            assert!(
                text.starts_with("HTTP/1.1 206"),
                "{name} window {off}+{l}: {text}"
            );
            assert_eq!(
                hdr_value(&text, "Content-Range").as_deref(),
                Some(format!("bytes {off}-{last}/{len}").as_str()),
                "{name} window {off}+{l}"
            );
            assert_eq!(
                body_of(&resp),
                &body[off as usize..=last as usize],
                "{name} window {off}+{l} must be byte-exact"
            );
        }
    }
    // Every wbig window rides the sendfile seam — the tier follows the
    // representation's size, not the window's.
    assert_eq!(
        srv.stats().bytes_sendfile(),
        big_window_bytes,
        "sendfile must move exactly the windowed bytes"
    );
    srv.stop();
    let _ = std::fs::remove_dir_all(root);
}

macro_rules! backend_suite {
    ($modname:ident, $backend:expr) => {
        mod $modname {
            use super::*;

            fn tag(name: &str) -> String {
                format!("{}-{name}", stringify!($modname))
            }

            #[test]
            fn amped_serves_files_and_404s() {
                run_serves_files_and_404s(&tag("serves"), $backend);
            }

            #[test]
            fn amped_second_request_hits_cache() {
                run_second_request_hits_cache(&tag("cache"), $backend);
            }

            #[test]
            fn amped_persistent_connection_serves_multiple_requests() {
                run_persistent_connection(&tag("keepalive"), $backend);
            }

            #[test]
            fn amped_streams_large_files_intact() {
                run_streams_large_files_intact(&tag("large"), $backend);
            }

            #[test]
            fn amped_sendfile_threshold_straddle_is_byte_exact() {
                run_sendfile_threshold_straddle(&tag("straddle"), $backend);
            }

            #[test]
            fn amped_sendfile_preserves_keep_alive() {
                run_sendfile_preserves_keep_alive(&tag("sf-keepalive"), $backend);
            }

            #[test]
            fn amped_head_on_large_file_sends_no_body() {
                run_head_on_large_file(&tag("sf-head"), $backend);
            }

            #[test]
            fn amped_large_bodies_never_enter_the_content_cache() {
                run_large_bodies_never_enter_cache(&tag("sf-cache"), $backend);
            }

            #[test]
            fn amped_handles_concurrent_clients() {
                run_concurrent_clients(&tag("concurrent"), $backend);
            }

            #[test]
            fn amped_pipelined_keep_alive_requests_on_one_connection() {
                run_pipelined_keep_alive(&tag("pipeline"), $backend);
            }

            #[test]
            fn amped_shards_spread_connections_round_robin() {
                run_shards_spread_round_robin(&tag("shards"), $backend);
            }

            #[test]
            fn amped_cache_hit_is_one_writev_call() {
                run_cache_hit_is_one_writev(&tag("writev"), $backend);
            }

            #[test]
            fn amped_rejects_bad_requests_and_post() {
                run_rejects_bad_requests_and_post(&tag("bad"), $backend);
            }

            #[test]
            fn amped_head_returns_headers_only() {
                run_head_returns_headers_only(&tag("head"), $backend);
            }

            #[test]
            fn amped_headers_are_alignment_padded() {
                run_headers_are_alignment_padded(&tag("align"), $backend);
            }

            #[test]
            fn amped_reaps_idle_keep_alive_connections() {
                run_idle_reaper(&tag("reaper"), $backend);
            }

            #[test]
            fn amped_slow_header_sender_hits_read_deadline() {
                run_slow_header_deadline(&tag("slowhdr"), $backend);
            }

            #[test]
            fn amped_stalled_body_reader_hits_write_deadline() {
                run_stalled_reader_deadline(&tag("stallrd"), $backend);
            }

            #[test]
            fn amped_steady_reader_outlives_write_deadline() {
                run_slow_but_steady_reader_survives(&tag("steady"), $backend);
            }

            #[test]
            fn amped_if_modified_since_both_tiers() {
                run_if_modified_since(&tag("ims"), $backend);
            }

            #[test]
            fn amped_date_header_is_current() {
                run_date_header_is_current(&tag("date"), $backend);
            }

            #[test]
            fn amped_connection_header_token_list() {
                run_connection_token_list(&tag("connlist"), $backend);
            }

            #[test]
            fn amped_reuseport_accept_distribution_covers_all_shards() {
                run_reuseport_accept_distribution(&tag("rp-dist"), $backend);
            }

            #[test]
            fn amped_accept_mode_single_full_protocol_parity() {
                run_accept_mode_parity(&tag("parity-single"), $backend, AcceptMode::Single);
            }

            #[test]
            fn amped_accept_mode_reuseport_full_protocol_parity() {
                run_accept_mode_parity(&tag("parity-rp"), $backend, AcceptMode::ReusePort);
            }

            #[test]
            fn amped_accept_shutdown_with_inflight_connections_single() {
                run_accept_shutdown_with_inflight(
                    &tag("shut-single"),
                    $backend,
                    AcceptMode::Single,
                );
            }

            #[test]
            fn amped_accept_shutdown_with_inflight_connections_reuseport() {
                run_accept_shutdown_with_inflight(&tag("shut-rp"), $backend, AcceptMode::ReusePort);
            }

            #[test]
            fn amped_accept_port_rebinds_after_stop_single() {
                run_accept_port_rebind_after_stop(
                    &tag("rebind-single"),
                    $backend,
                    AcceptMode::Single,
                );
            }

            #[test]
            fn amped_accept_port_rebinds_after_stop_reuseport() {
                run_accept_port_rebind_after_stop(
                    &tag("rebind-rp"),
                    $backend,
                    AcceptMode::ReusePort,
                );
            }

            #[test]
            fn amped_cache_revalidates_entries_past_ttl() {
                run_cache_revalidation(&tag("revalidate"), $backend);
            }

            #[test]
            fn mt_cache_revalidates_entries_past_ttl() {
                run_mt_cache_revalidation(&tag("mt-revalidate"), $backend);
            }

            #[test]
            fn amped_send_plane_range_etag_gzip_parity() {
                run_send_plane_parity(&tag("plane"), $backend);
            }

            #[test]
            fn mt_send_plane_range_etag_gzip_parity() {
                run_mt_send_plane_parity(&tag("mt-plane"), $backend);
            }

            #[test]
            fn amped_random_range_windows_byte_exact() {
                run_random_range_windows(&tag("windows"), $backend, false);
            }

            #[test]
            fn mt_random_range_windows_byte_exact() {
                run_random_range_windows(&tag("mt-windows"), $backend, true);
            }

            #[test]
            fn mt_server_serves_and_shares_cache() {
                run_mt_server(&tag("mt"), $backend);
            }

            #[test]
            fn mt_deadline_and_not_modified_parity() {
                run_mt_deadline_and_304(&tag("mt-deadline"), $backend);
            }
        }
    };
}

backend_suite!(epoll_backend, BackendChoice::Epoll);
backend_suite!(poll_backend, BackendChoice::Poll);

#[test]
fn poll_choice_resolves_to_poll_everywhere() {
    run_backend_resolution("resolve-poll", BackendChoice::Poll, BackendKind::Poll);
}

#[test]
fn epoll_choice_resolves_to_platform_best() {
    let expect = if cfg!(any(target_os = "linux", target_os = "android")) {
        BackendKind::Epoll
    } else {
        BackendKind::Poll
    };
    run_backend_resolution("resolve-epoll", BackendChoice::Epoll, expect);
}

/// Serves a *real* `gzip(1)`-produced sibling, not the simulated
/// pattern bytes the other variant tests use. CI generates the
/// fixture pair in the workflow and points `FLASH_GZ_FIXTURE` at it;
/// when the variable is unset the test produces its own pair by
/// shelling out to the system `gzip`, and skips if none is installed.
/// Both drivers must hand back the compressed bytes verbatim — full
/// body and a `Range` window carved out of the gzip representation.
#[test]
fn real_gzip_fixture_range_and_variant_parity() {
    let fixture = match std::env::var_os("FLASH_GZ_FIXTURE") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let dir = docroot("real-gz-fixture");
            std::fs::write(
                dir.join("page.html"),
                b"<html>real gzip fixture body for the send plane</html>\n",
            )
            .unwrap();
            let status = std::process::Command::new("gzip")
                .args(["-k", "-9"])
                .arg(dir.join("page.html"))
                .status();
            match status {
                Ok(s) if s.success() => dir,
                _ => {
                    eprintln!("skipping: no usable gzip(1) and FLASH_GZ_FIXTURE unset");
                    let _ = std::fs::remove_dir_all(&dir);
                    return;
                }
            }
        }
    };
    let identity = std::fs::read(fixture.join("page.html")).expect("fixture page.html");
    let gz = std::fs::read(fixture.join("page.html.gz")).expect("fixture page.html.gz");
    assert!(
        gz.starts_with(&[0x1f, 0x8b]),
        "fixture sibling must be real gzip output"
    );

    let root = docroot("real-gz-serve");
    std::fs::write(root.join("page.html"), &identity).unwrap();
    std::fs::write(root.join("page.html.gz"), &gz).unwrap();

    let check = |addr: std::net::SocketAddr| {
        // Full negotiated body: byte-for-byte the compressor's output.
        let resp = get(
            addr,
            "GET /page.html HTTP/1.0\r\nAccept-Encoding: gzip\r\n\r\n",
        );
        let text = String::from_utf8_lossy(&resp).into_owned();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert_eq!(
            hdr_value(&text, "Content-Encoding").as_deref(),
            Some("gzip"),
            "{text}"
        );
        assert_eq!(body_of(&resp), &gz[..]);

        // A window over the gzip representation: the range applies to
        // the negotiated bytes, not the identity ones.
        let last = gz.len() - 2;
        let resp = get(
            addr,
            &format!(
                "GET /page.html HTTP/1.0\r\nAccept-Encoding: gzip\r\nRange: bytes=3-{last}\r\n\r\n"
            ),
        );
        let text = String::from_utf8_lossy(&resp).into_owned();
        assert!(text.starts_with("HTTP/1.1 206 Partial Content"), "{text}");
        assert_eq!(
            hdr_value(&text, "Content-Range").as_deref(),
            Some(format!("bytes 3-{last}/{}", gz.len()).as_str())
        );
        assert_eq!(
            hdr_value(&text, "Content-Encoding").as_deref(),
            Some("gzip")
        );
        assert_eq!(body_of(&resp), &gz[3..=last]);

        // No Accept-Encoding: the identity body, untouched.
        let resp = get(addr, "GET /page.html HTTP/1.0\r\n\r\n");
        let text = String::from_utf8_lossy(&resp).into_owned();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(hdr_value(&text, "Content-Encoding").is_none(), "{text}");
        assert_eq!(body_of(&resp), &identity[..]);
    };

    let server = Server::start("127.0.0.1:0", NetConfig::new(&root).with_event_loops(1)).unwrap();
    check(server.addr());
    server.stop();

    let server = MtServer::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    check(server.addr());
    server.stop();

    let _ = std::fs::remove_dir_all(&root);
    if std::env::var_os("FLASH_GZ_FIXTURE").is_none() {
        let _ = std::fs::remove_dir_all(&fixture);
    }
}
