//! End-to-end tests of the real AMPED and MT servers over loopback,
//! using plain `std::net::TcpStream` clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use flash_net::{MtServer, NetConfig, Server};

/// Creates a docroot with known content; returns its path guard.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flash-net-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("sub")).unwrap();
    std::fs::write(dir.join("index.html"), b"<html>hello flash</html>\n").unwrap();
    std::fs::write(dir.join("sub/page.html"), b"subdir page").unwrap();
    std::fs::write(dir.join("big.bin"), vec![0xABu8; 2_000_000]).unwrap();
    dir
}

/// Sends one request and reads until EOF; returns the raw response.
fn get(addr: std::net::SocketAddr, req: &str) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(req.as_bytes()).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

fn body_of(response: &[u8]) -> &[u8] {
    let pos = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    &response[pos + 4..]
}

#[test]
fn amped_serves_files_and_404s() {
    let root = docroot("amped");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let addr = server.addr();

    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("Content-Type: text/html"));
    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");

    let resp = get(addr, "GET /sub/page.html HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"subdir page");

    let resp = get(addr, "GET /nope.html HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));

    // Directory request maps to index.html.
    let resp = get(addr, "GET / HTTP/1.0\r\n\r\n");
    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");

    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn amped_second_request_hits_cache() {
    let root = docroot("cache");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let addr = server.addr();
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let _ = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let stats = server.stats();
    assert_eq!(
        stats.helper_jobs.load(Ordering::Relaxed),
        1,
        "one disk read"
    );
    assert!(stats.cache_hits.load(Ordering::Relaxed) >= 2);
    assert_eq!(stats.requests.load(Ordering::Relaxed), 3);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn amped_persistent_connection_serves_multiple_requests() {
    let root = docroot("keepalive");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for i in 0..5 {
        s.write_all(b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut hdr = Vec::new();
        let mut byte = [0u8; 1];
        // Read headers byte-by-byte until the blank line, then the body
        // by Content-Length.
        while !hdr.ends_with(b"\r\n\r\n") {
            s.read_exact(&mut byte).unwrap();
            hdr.push(byte[0]);
        }
        let text = String::from_utf8_lossy(&hdr);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "request {i}: {text}");
        assert!(text.contains("Connection: keep-alive"));
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        s.read_exact(&mut body).unwrap();
        assert_eq!(body, b"<html>hello flash</html>\n");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn amped_streams_large_files_intact() {
    let root = docroot("large");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let resp = get(server.addr(), "GET /big.bin HTTP/1.0\r\n\r\n");
    let body = body_of(&resp);
    assert_eq!(body.len(), 2_000_000);
    assert!(body.iter().all(|&b| b == 0xAB));
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn amped_handles_concurrent_clients() {
    let root = docroot("concurrent");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let path = if i % 2 == 0 {
                    "/index.html"
                } else {
                    "/sub/page.html"
                };
                for _ in 0..20 {
                    let resp = get(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"));
                    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(server.stats().requests.load(Ordering::Relaxed), 320);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn amped_rejects_bad_requests_and_post() {
    let root = docroot("bad");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let addr = server.addr();
    let resp = get(addr, "BOGUS /x HTTP/9.9\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 400"));
    let resp = get(addr, "POST /cgi-bin/x HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 501"));
    // Traversal normalizes inside the docroot; escaping yields 400.
    let resp = get(addr, "GET /../../etc/passwd HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 400"));
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn amped_head_returns_headers_only() {
    let root = docroot("head");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let resp = get(server.addr(), "HEAD /index.html HTTP/1.0\r\n\r\n");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 200 OK"));
    assert!(text.contains("Content-Length: 25"));
    assert!(body_of(&resp).is_empty());
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn amped_headers_are_alignment_padded() {
    let root = docroot("align");
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let resp = get(server.addr(), "GET /index.html HTTP/1.0\r\n\r\n");
    let pos = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
    assert_eq!((pos + 4) % 32, 0, "header must be 32-byte aligned (§5.5)");
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn mt_server_serves_and_shares_cache() {
    let root = docroot("mt");
    let server = MtServer::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let resp = get(addr, "GET /index.html HTTP/1.0\r\n\r\n");
                    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"));
                    assert_eq!(body_of(&resp), b"<html>hello flash</html>\n");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let resp = get(addr, "GET /gone HTTP/1.0\r\n\r\n");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}
