//! Property test: the content cache's byte accounting is exact — after
//! any sequence of inserts, lookups, and the evictions they trigger,
//! `used_bytes` equals the summed cost of exactly the live entries.

use flash_net::cache::{ContentCache, Entry};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Insert `/f{key}` with a body of `size` bytes.
    Insert(u8, u16),
    /// Look up `/f{key}` (promotes on hit).
    Get(u8),
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Bodies of 512..2048 bytes keep every entry's cost well above
        // the 256-byte floor the entry-count bound assumes, so only the
        // byte bound ever evicts (matching the cache's documented
        // invariant).
        (any::<u8>().prop_map(|k| k % 24), 512u16..2048).prop_map(|(k, s)| Op::Insert(k, s)),
        any::<u8>().prop_map(|k| Op::Get(k % 24)),
    ]
}

/// Reference model: recency-ordered (LRU first) list of live entries
/// with their costs, mirroring ContentCache's insert/evict/promote
/// rules.
#[derive(Default)]
struct Model {
    /// `(path, cost)`, least-recently-used first.
    live: Vec<(String, u64)>,
    cap: u64,
}

impl Model {
    fn used(&self) -> u64 {
        self.live.iter().map(|(_, c)| c).sum()
    }

    fn insert(&mut self, path: &str, cost: u64) {
        if let Some(pos) = self.live.iter().position(|(p, _)| p == path) {
            self.live.remove(pos);
        }
        self.live.push((path.to_string(), cost));
        while self.used() > self.cap {
            self.live.remove(0);
        }
    }

    fn get(&mut self, path: &str) -> bool {
        match self.live.iter().position(|(p, _)| p == path) {
            Some(pos) => {
                let e = self.live.remove(pos);
                self.live.push(e);
                true
            }
            None => false,
        }
    }
}

proptest! {
    /// `used_bytes` is exactly the sum of live entry costs under any
    /// random insert/get/evict sequence, and hit/miss results agree
    /// with the model.
    #[test]
    fn used_bytes_matches_live_entry_costs(script in proptest::collection::vec(ops(), 1..300)) {
        const CAP: u64 = 16 * 1024;
        let mut cache = ContentCache::new(CAP);
        let mut model = Model { live: Vec::new(), cap: CAP };
        for op in script {
            match op {
                Op::Insert(k, size) => {
                    let path = format!("/f{k}");
                    let entry = Entry::build(&path, vec![0xA5; size as usize]);
                    let cost = entry.cost();
                    prop_assert!(cost > 256, "entry-count bound must stay unreachable");
                    prop_assert!(
                        cost <= cache.max_entry_bytes(),
                        "bodies in this script stay below the admission bound"
                    );
                    prop_assert!(cache.insert(path.clone(), entry), "must be admitted");
                    model.insert(&path, cost);
                }
                Op::Get(k) => {
                    let path = format!("/f{k}");
                    let hit = cache.get(&path).is_some();
                    prop_assert_eq!(hit, model.get(&path), "hit/miss diverged on {}", path);
                }
            }
            prop_assert_eq!(
                cache.used_bytes(),
                model.used(),
                "byte accounting diverged"
            );
            prop_assert!(cache.used_bytes() <= CAP, "byte bound violated");
        }
    }
}
