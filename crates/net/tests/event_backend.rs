//! Direct tests of the readiness subsystem (`flash_net::event`):
//! conformance shared by both backends, scale (≈1k registered
//! sockets with a sparse active set — the workload the epoll backend
//! exists for), and the edge-triggered re-arm contract across partial
//! writes that the server's `sendfile` fairness yield depends on.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;

use flash_net::event::{ensure_fd_limit, new_backend, BackendChoice, BackendKind, Interest};

/// ~1k registered sockets, 64 of them readable: every active token is
/// reported (across however many wait batches it takes), no idle token
/// ever is.
fn sparse_ready_among_1k(choice: BackendChoice) {
    const TOTAL: usize = 1024;
    const ACTIVE: usize = 64;
    // Each pair costs two descriptors; leave headroom for the harness.
    assert!(
        ensure_fd_limit((TOTAL * 2 + 128) as u64),
        "cannot raise RLIMIT_NOFILE for the 1k-socket test"
    );
    let mut be = new_backend(choice);
    let pairs: Vec<(UnixStream, UnixStream)> =
        (0..TOTAL).map(|_| UnixStream::pair().unwrap()).collect();
    for (i, (a, _b)) in pairs.iter().enumerate() {
        a.set_nonblocking(true).unwrap();
        be.register(a.as_raw_fd(), i as u64, Interest::READ)
            .unwrap();
    }
    assert_eq!(be.registered(), TOTAL);

    // Spread the active set across the registration order.
    let active: BTreeSet<u64> = (0..ACTIVE).map(|k| (k * 16 + 3) as u64).collect();
    for &i in &active {
        (&pairs[i as usize].1).write_all(b"x").unwrap();
    }

    let mut got: BTreeSet<u64> = BTreeSet::new();
    let mut evs = Vec::new();
    // The epoll backend batches 256 events per wait; loop until the
    // full active set has been reported.
    for _ in 0..32 {
        if got.len() == active.len() {
            break;
        }
        let n = be.wait(&mut evs, 1000).unwrap();
        assert!(n > 0, "active sockets pending but wait returned none");
        for e in &evs {
            assert!(e.readable, "token {} not readable", e.token);
            assert!(
                active.contains(&e.token),
                "idle socket {} reported ready",
                e.token
            );
            got.insert(e.token);
        }
    }
    assert_eq!(got, active, "every active socket must be reported");

    // Deregister the whole set; the backend must end empty.
    for (a, _b) in &pairs {
        be.deregister(a.as_raw_fd()).unwrap();
    }
    assert_eq!(be.registered(), 0);
}

#[test]
fn poll_sparse_ready_among_1k() {
    sparse_ready_among_1k(BackendChoice::Poll);
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn epoll_sparse_ready_among_1k() {
    sparse_ready_among_1k(BackendChoice::Epoll);
}

/// Fills `w`'s send buffer until `EWOULDBLOCK`, returning bytes accepted.
fn fill_until_blocked(w: &UnixStream) -> usize {
    let chunk = [0x5Au8; 64 * 1024];
    let mut sent = 0;
    loop {
        match (&*w).write(&chunk) {
            Ok(n) => sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return sent,
            Err(e) => panic!("unexpected write error: {e}"),
        }
    }
}

/// Drains everything currently buffered on `r`.
fn drain(r: &UnixStream) -> usize {
    let mut buf = [0u8; 64 * 1024];
    let mut total = 0;
    loop {
        match (&*r).read(&mut buf) {
            Ok(0) => return total,
            Ok(n) => total += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return total,
            Err(e) => panic!("unexpected read error: {e}"),
        }
    }
}

/// The edge-triggered re-arm contract across partial writes, asserted
/// against the real epoll backend with ~1k other sockets registered —
/// the exact situation of one `sendfile` stream yielding for fairness
/// inside a shard full of idle keep-alive connections:
///
/// 1. consumed writability edges are NOT re-reported (this is what
///    makes ET cheap, and what makes a missing re-arm a hang, not a
///    slowdown);
/// 2. `rearm` on a still-writable socket redelivers the edge (the
///    fairness-yield resume path);
/// 3. `rearm` on a blocked socket invents nothing;
/// 4. the peer draining a full buffer is a fresh edge.
#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn epoll_rearm_across_partial_writes_among_1k_sockets() {
    const BACKGROUND: usize = 1000;
    assert!(
        ensure_fd_limit((BACKGROUND * 2 + 128) as u64),
        "cannot raise RLIMIT_NOFILE"
    );
    let mut be = new_backend(BackendChoice::Epoll);
    assert_eq!(be.kind(), BackendKind::Epoll);
    assert!(be.edge_triggered());

    // A quiet crowd: none of these may ever produce an event.
    let crowd: Vec<(UnixStream, UnixStream)> = (0..BACKGROUND)
        .map(|_| UnixStream::pair().unwrap())
        .collect();
    for (i, (a, _b)) in crowd.iter().enumerate() {
        a.set_nonblocking(true).unwrap();
        be.register(a.as_raw_fd(), 10_000 + i as u64, Interest::READ)
            .unwrap();
    }

    const TOKEN: u64 = 42;
    let (w, r) = UnixStream::pair().unwrap();
    w.set_nonblocking(true).unwrap();
    r.set_nonblocking(true).unwrap();
    be.register(w.as_raw_fd(), TOKEN, Interest::WRITE).unwrap();
    let mut evs = Vec::new();

    // Fresh socket: the initial writability edge.
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    assert_eq!(evs[0].token, TOKEN);
    assert!(evs[0].writable);

    // Edge consumed, socket still writable: ET stays silent. A loop
    // that "yielded" here without re-arming would hang forever.
    assert_eq!(be.wait(&mut evs, 50).unwrap(), 0, "ET must not re-report");

    // The fairness-yield path: re-arm with the socket still writable —
    // the edge must be redelivered.
    be.rearm(w.as_raw_fd(), TOKEN, Interest::WRITE).unwrap();
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1, "rearm must redeliver");
    assert_eq!(evs[0].token, TOKEN);

    // Partial write until the buffer is full: now genuinely blocked.
    let sent = fill_until_blocked(&w);
    assert!(sent > 0, "some bytes must land before EWOULDBLOCK");
    assert_eq!(be.wait(&mut evs, 50).unwrap(), 0);

    // Re-arm on a blocked socket must NOT invent readiness.
    be.rearm(w.as_raw_fd(), TOKEN, Interest::WRITE).unwrap();
    assert_eq!(
        be.wait(&mut evs, 50).unwrap(),
        0,
        "rearm must not fabricate"
    );

    // The peer drains: writable again, delivered as a fresh edge.
    let drained = drain(&r);
    assert_eq!(drained, sent);
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1, "drain is a new edge");
    assert_eq!(evs[0].token, TOKEN);
    assert!(evs[0].writable);
}

/// Same re-arm sequence against the poll backend: level-triggered
/// readiness makes rules 1/4 trivially true (readiness is re-reported
/// every wait), but rule 2 and 3 — rearm redelivers iff actually
/// writable — must hold identically, since the server runs one loop
/// over both kernels.
#[test]
fn poll_rearm_reports_only_true_readiness() {
    const TOKEN: u64 = 7;
    let mut be = new_backend(BackendChoice::Poll);
    assert!(!be.edge_triggered());
    let (w, r) = UnixStream::pair().unwrap();
    w.set_nonblocking(true).unwrap();
    r.set_nonblocking(true).unwrap();
    be.register(w.as_raw_fd(), TOKEN, Interest::WRITE).unwrap();
    let mut evs = Vec::new();

    // Writable, and (LT) re-reported for as long as it stays so.
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    be.rearm(w.as_raw_fd(), TOKEN, Interest::WRITE).unwrap();
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    assert!(evs[0].writable);

    // Blocked: silent, rearm or not.
    let sent = fill_until_blocked(&w);
    assert_eq!(be.wait(&mut evs, 50).unwrap(), 0);
    be.rearm(w.as_raw_fd(), TOKEN, Interest::WRITE).unwrap();
    assert_eq!(be.wait(&mut evs, 50).unwrap(), 0);

    // Drained: writable again.
    assert_eq!(drain(&r), sent);
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    assert!(evs[0].writable);
}

/// Interest transitions mirror the server's state machine:
/// READ → NONE (waiting on a helper) → WRITE (response queued) →
/// READ (keep-alive). Both backends must deliver exactly the events
/// the current interest asks for.
fn interest_lifecycle(choice: BackendChoice) {
    const TOKEN: u64 = 3;
    let mut be = new_backend(choice);
    let (a, mut b) = UnixStream::pair().unwrap();
    a.set_nonblocking(true).unwrap();
    be.register(a.as_raw_fd(), TOKEN, Interest::READ).unwrap();
    let mut evs = Vec::new();

    b.write_all(b"request").unwrap();
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    assert!(evs[0].readable);

    // Waiting: interest NONE silences the still-readable socket.
    be.modify(a.as_raw_fd(), TOKEN, Interest::NONE).unwrap();
    assert_eq!(be.wait(&mut evs, 50).unwrap(), 0);

    // Writing: the socket is writable, so switching interest delivers
    // immediately — on epoll this is the MOD-re-arms guarantee that
    // makes the Waiting→Writing transition race-free.
    be.modify(a.as_raw_fd(), TOKEN, Interest::WRITE).unwrap();
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    assert!(evs[0].writable);

    // Back to Reading: the unread request bytes resurface.
    be.modify(a.as_raw_fd(), TOKEN, Interest::READ).unwrap();
    assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    assert!(evs[0].readable);
}

#[test]
fn poll_interest_lifecycle() {
    interest_lifecycle(BackendChoice::Poll);
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn epoll_interest_lifecycle() {
    interest_lifecycle(BackendChoice::Epoll);
}

/// The accept-gate sequence the reuseport shards run their listeners
/// through: a listener registered for READ reports pending
/// connections, `Interest::NONE` quiesces it (backpressure — the
/// backlog keeps queueing in the kernel), and re-arming with `modify`
/// redelivers the *still-pending* backlog as a fresh event without a
/// new connection having to arrive.
fn listener_accept_gate(choice: BackendChoice) {
    use std::net::{TcpListener, TcpStream};

    const TOKEN: u64 = u64::MAX - 1; // the server's listener token
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let addr = listener.local_addr().unwrap();
    let mut be = new_backend(choice);
    be.register(listener.as_raw_fd(), TOKEN, Interest::READ)
        .unwrap();
    let mut evs = Vec::new();

    // A pending connection surfaces as readability on the listener.
    let _c1 = TcpStream::connect(addr).unwrap();
    assert_eq!(be.wait(&mut evs, 2000).unwrap(), 1);
    assert_eq!(evs[0].token, TOKEN);
    assert!(evs[0].readable);
    let _ = listener.accept().unwrap();

    // Throttled: connections queue silently in the backlog.
    be.modify(listener.as_raw_fd(), TOKEN, Interest::NONE)
        .unwrap();
    let _c2 = TcpStream::connect(addr).unwrap();
    // Give the loopback handshake a beat to complete first.
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert_eq!(
        be.wait(&mut evs, 50).unwrap(),
        0,
        "a quiesced listener must stay silent"
    );

    // Re-arm: the backlog that filled while throttled must be
    // redelivered even though its edge predates the modify.
    be.modify(listener.as_raw_fd(), TOKEN, Interest::READ)
        .unwrap();
    assert_eq!(
        be.wait(&mut evs, 2000).unwrap(),
        1,
        "re-arm must redeliver the pending backlog"
    );
    assert!(evs[0].readable);
    let _ = listener.accept().unwrap();
}

#[test]
fn poll_listener_accept_gate() {
    listener_accept_gate(BackendChoice::Poll);
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn epoll_listener_accept_gate() {
    listener_accept_gate(BackendChoice::Epoll);
}
