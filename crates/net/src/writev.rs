//! Minimal safe wrapper over `writev(2)` — the gathered-write syscall
//! that lets the send path transmit a response's header and body (and
//! any queued continuation segments) in **one** kernel crossing
//! without copying them into a contiguous buffer first.
//!
//! Like [`crate::poll`], this declares the single foreign function
//! directly against the platform libc that every Rust program on Unix
//! already links, keeping the paper's portability argument: only
//! ubiquitous POSIX interfaces are used.

use std::io;
use std::os::unix::io::RawFd;

/// Most segments passed to one `writev` call. POSIX guarantees
/// `IOV_MAX >= 16` (`_XOPEN_IOV_MAX`); staying at that floor keeps the
/// wrapper portable without querying `sysconf`. Callers loop when more
/// segments are queued.
pub const MAX_IOV: usize = 16;

/// One gather segment — layout-compatible with `struct iovec`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct IoVec {
    base: *const u8,
    len: usize,
}

unsafe extern "C" {
    // `int fd, const struct iovec *iov, int iovcnt` on every Unix.
    fn writev(fd: core::ffi::c_int, iov: *const IoVec, iovcnt: core::ffi::c_int) -> isize;
}

/// Writes the concatenation of `bufs` to `fd` with a single
/// `writev(2)` call, returning the number of bytes accepted (which may
/// land mid-segment — the caller tracks resumption). At most
/// [`MAX_IOV`] segments are submitted; extra segments are ignored and
/// simply remain for the next call.
///
/// `EINTR` is retried internally; all other errors (including
/// `EAGAIN`/`WouldBlock` on nonblocking sockets) surface to the
/// caller.
pub fn writev_fd(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    let cnt = bufs.len().min(MAX_IOV);
    let mut iov = [IoVec {
        base: std::ptr::null(),
        len: 0,
    }; MAX_IOV];
    for (slot, buf) in iov.iter_mut().zip(&bufs[..cnt]) {
        slot.base = buf.as_ptr();
        slot.len = buf.len();
    }
    loop {
        // SAFETY: `iov[..cnt]` points at live, immutably borrowed
        // slices for the duration of the call; the kernel only reads
        // through the pointers; cnt <= MAX_IOV <= IOV_MAX.
        let rc = unsafe { writev(fd, iov.as_ptr(), cnt as core::ffi::c_int) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn gathers_segments_in_order() {
        let (a, mut b) = UnixStream::pair().unwrap();
        let n = writev_fd(a.as_raw_fd(), &[b"hello ", b"writev", b"!"]).unwrap();
        assert_eq!(n, 13);
        let mut got = [0u8; 13];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello writev!");
    }

    #[test]
    fn zero_length_segments_are_harmless() {
        let (a, mut b) = UnixStream::pair().unwrap();
        let n = writev_fd(a.as_raw_fd(), &[b"", b"x", b"", b"y"]).unwrap();
        assert_eq!(n, 2);
        let mut got = [0u8; 2];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"xy");
    }

    #[test]
    fn nonblocking_socket_reports_would_block_when_full() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let chunk = vec![0u8; 64 * 1024];
        // Fill the socket buffer; eventually the call must fail with
        // WouldBlock rather than blocking the thread.
        let mut total = 0usize;
        loop {
            match writev_fd(a.as_raw_fd(), &[&chunk, &chunk]) {
                Ok(n) => {
                    assert!(n > 0);
                    total += n;
                    assert!(total < 256 * 1024 * 1024, "kernel buffer can't be this big");
                }
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock);
                    break;
                }
            }
        }
        assert!(total > 0, "some bytes must have been accepted first");
    }

    #[test]
    fn partial_writes_can_land_mid_segment() {
        let (a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        // Two large segments: drive writev until WouldBlock, drain the
        // reader, repeat — the reassembled stream must be byte-exact.
        let seg1: Vec<u8> = (0..150_000u32).map(|i| i as u8).collect();
        let seg2: Vec<u8> = (0..150_000u32).map(|i| (i * 7) as u8).collect();
        let mut expect = seg1.clone();
        expect.extend_from_slice(&seg2);
        let mut sent = 0usize;
        let mut got = Vec::new();
        let mut buf = [0u8; 8192];
        while sent < expect.len() || got.len() < expect.len() {
            if sent < expect.len() {
                // Build the remaining view across the two segments.
                let bufs: Vec<&[u8]> = if sent < seg1.len() {
                    vec![&seg1[sent..], &seg2[..]]
                } else {
                    vec![&seg2[sent - seg1.len()..]]
                };
                match writev_fd(a.as_raw_fd(), &bufs) {
                    Ok(n) => sent += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            match b.read(&mut buf) {
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(got, expect, "reassembled stream must be byte-exact");
    }
}
