//! The real server's application-level content cache.
//!
//! Plays the role of Flash's pathname-translation + mapped-file +
//! response-header caches combined: a hit serves entirely from memory
//! with a pre-rendered (alignment-padded) header. Residency testing via
//! `mincore` has no portable stable equivalent, so — exactly as §5.7 of
//! the paper suggests as the fallback — the server treats its own
//! LRU-bounded cache as the definition of "in memory" and routes misses
//! to helper threads.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use flash_core::caches::LruCache;
use flash_http::mime;
use flash_http::response::{etag_value, HeaderExtras, ResponseHeader, Status};

/// Which representation of a resource an entry (or helper load) holds.
/// The content cache is keyed by `(path, variant)` — see
/// [`variant_key`] — so identity and gzip entries coexist and
/// revalidate/evict independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// The file's own bytes, served without `Content-Encoding`.
    #[default]
    Identity,
    /// A sibling `<path>.gz` discovered at helper open time, served
    /// under `Content-Encoding: gzip` + `Vary: Accept-Encoding`.
    Gzip,
}

impl Variant {
    /// Whether this is the gzip representation.
    pub fn is_gzip(self) -> bool {
        matches!(self, Variant::Gzip)
    }
}

/// The composite cache/coalescing key for `(path, variant)`. Identity
/// keys are the path itself; gzip keys append a `NUL`-separated marker
/// — request paths can never contain a `NUL` (the parser rejects
/// `%00`), so variant keys cannot collide with any real path.
pub fn variant_key(path: &str, variant: Variant) -> String {
    match variant {
        Variant::Identity => path.to_string(),
        Variant::Gzip => format!("{path}\u{0}gz"),
    }
}

/// Inverse of [`variant_key`]: recovers the URL path and variant from
/// a composite key.
pub fn split_variant_key(key: &str) -> (&str, Variant) {
    match key.strip_suffix("\u{0}gz") {
        Some(path) => (path, Variant::Gzip),
        None => (key, Variant::Identity),
    }
}

/// One cached, ready-to-send response.
#[derive(Debug)]
pub struct Entry {
    /// Pre-rendered, alignment-padded response header (keep-alive form).
    pub header_keep: Bytes,
    /// Pre-rendered header, close form.
    pub header_close: Bytes,
    /// Byte offset of the `Date` *value* (always
    /// [`flash_http::date::IMF_FIXDATE_LEN`] bytes) within both header
    /// forms — their prefixes are identical — so the send path can
    /// splice in the current date with zero-copy slices instead of
    /// serving the load-time date for the entry's whole cache life.
    date_at: Option<usize>,
    /// File contents.
    pub body: Bytes,
    /// File mtime (unix seconds) at load time, when the filesystem
    /// reported one — the validator `If-Modified-Since` compares
    /// against, and the `Last-Modified` value baked into the headers.
    pub mtime: Option<i64>,
    /// Which representation this entry holds (gzip entries hold the
    /// sibling `.gz` file's bytes and carry its mtime/length).
    pub variant: Variant,
    /// Whether a `.gz` sibling existed when this entry was loaded —
    /// recorded on identity entries so they emit `Vary:
    /// Accept-Encoding` and so gzip-accepting clients know to load the
    /// gzip variant instead of settling for this one.
    pub has_gzip: bool,
    /// The representation's strong entity tag (mtime+length derived,
    /// variant-marked), as baked into the pre-rendered headers.
    pub etag: String,
}

/// Renders the pre-padded 200 header pair (keep-alive form, close
/// form) for a body of `len` bytes at `path` — the one place plain-200
/// header rendering happens, shared by the cached-entry tier and the
/// large-body `sendfile` tier so the two can never drift apart. A
/// known `mtime` (unix seconds) adds a `Last-Modified` field; every
/// pair carries the representation's `ETag`, gzip variants add
/// `Content-Encoding: gzip`, and any negotiated resource (either
/// variant, when a `.gz` sibling exists) adds `Vary: Accept-Encoding`.
pub fn header_pair(
    path: &str,
    len: u64,
    mtime: Option<i64>,
    variant: Variant,
    has_gzip: bool,
) -> (Bytes, Bytes, String) {
    let ctype = mime::content_type(path);
    let etag = etag_value(mtime, len, variant.is_gzip());
    let build = |keep| {
        let h = ResponseHeader::build_full(
            Status::Ok,
            Some((ctype, len)),
            keep,
            true,
            mtime,
            HeaderExtras {
                etag: Some(&etag),
                content_range: None,
                gzip: variant.is_gzip(),
                vary_accept_encoding: variant.is_gzip() || has_gzip,
            },
        );
        Bytes::from(h.as_bytes().to_vec())
    };
    (build(true), build(false), etag)
}

impl Entry {
    /// Builds an entry for `path` with `body` contents and no known
    /// mtime (no `Last-Modified`; conditional requests always miss).
    pub fn build(path: &str, body: Vec<u8>) -> Arc<Entry> {
        Self::build_with_mtime(path, body, None)
    }

    /// Builds an identity entry for `path` with `body` contents and
    /// the file's mtime in unix seconds.
    pub fn build_with_mtime(path: &str, body: Vec<u8>, mtime: Option<i64>) -> Arc<Entry> {
        Self::build_variant(path, body, mtime, Variant::Identity, false)
    }

    /// Builds an entry for one representation of `path`: its variant,
    /// and whether a gzip sibling exists for the resource.
    pub fn build_variant(
        path: &str,
        body: Vec<u8>,
        mtime: Option<i64>,
        variant: Variant,
        has_gzip: bool,
    ) -> Arc<Entry> {
        let (header_keep, header_close, etag) =
            header_pair(path, body.len() as u64, mtime, variant, has_gzip);
        // Locate the Date value once; the keep/close forms share their
        // prefix (status line + Date line), so one offset serves both.
        let date_at = header_keep
            .windows(6)
            .position(|w| w == b"Date: ")
            .map(|i| i + 6)
            .filter(|&at| {
                at + flash_http::date::IMF_FIXDATE_LEN <= header_close.len()
                    && header_keep[..at] == header_close[..at]
            });
        Arc::new(Entry {
            header_keep,
            header_close,
            date_at,
            body: Bytes::from(body),
            mtime,
            variant,
            has_gzip,
            etag,
        })
    }

    /// Queues this entry's header with a **current** `Date` onto
    /// `out`: two zero-copy slices of the pre-rendered header around a
    /// per-second-cached date segment. Pre-rendering bakes in the
    /// load-time date, which may be arbitrarily stale by the time a
    /// cache hit is served; IMF-fixdate is fixed-width, so splicing
    /// changes no length (alignment included).
    pub fn push_header(&self, keep: bool, out: &mut impl Extend<Bytes>) {
        let hdr = if keep {
            &self.header_keep
        } else {
            &self.header_close
        };
        match self.date_at {
            Some(at) => out.extend([
                hdr.slice(..at),
                flash_http::date::now_imf_bytes(),
                hdr.slice(at + flash_http::date::IMF_FIXDATE_LEN..),
            ]),
            // No recognizable Date line: serve the header as rendered.
            None => out.extend([hdr.clone()]),
        }
    }

    /// The header with a current `Date` as one contiguous buffer, for
    /// blocking send paths (the MT server) that write a single slice.
    pub fn header_with_current_date(&self, keep: bool) -> Vec<u8> {
        let mut segs: Vec<Bytes> = Vec::with_capacity(3);
        self.push_header(keep, &mut segs);
        let mut out = Vec::with_capacity(segs.iter().map(|s| s.len()).sum());
        for s in &segs {
            out.extend_from_slice(s);
        }
        out
    }

    /// Whether a conditional request bearing this `If-Modified-Since`
    /// value (unix seconds, already parsed) can be answered `304`: the
    /// file has a known mtime no newer than the validator.
    pub fn not_modified_since(&self, ims: Option<i64>) -> bool {
        not_modified_since(self.mtime, ims)
    }

    /// Total cached bytes (headers + body).
    pub fn cost(&self) -> u64 {
        (self.header_keep.len() + self.header_close.len() + self.body.len()) as u64
    }
}

/// The `If-Modified-Since` validator rule, shared by both body tiers
/// (cached entries and the `sendfile` fd path) so their `304` behavior
/// can never drift apart: not-modified iff the file has a known mtime
/// no newer than the client's validator (both unix seconds).
pub fn not_modified_since(mtime: Option<i64>, ims: Option<i64>) -> bool {
    matches!((mtime, ims), (Some(m), Some(v)) if m <= v)
}

/// Largest admissible entry, as a divisor of capacity: entries costing
/// more than `capacity / MAX_ENTRY_DIVISOR` are refused outright.
/// Without this bound, inserting one entry bigger than the whole cache
/// evicts every resident entry *and then itself*, so each request for
/// that file wipes the cache and still misses — pure churn. Oversized
/// bodies belong on the sendfile path (the kernel page cache), not in
/// here.
pub const MAX_ENTRY_DIVISOR: u64 = 4;

/// A resident entry plus the instant it was last known to match the
/// file on disk — set at insert, refreshed by a successful
/// revalidation re-stat (see [`ContentCache::lookup`]).
struct Cached {
    entry: Arc<Entry>,
    validated_at: Instant,
}

/// Outcome of a freshness-aware lookup ([`ContentCache::lookup`]).
pub enum Lookup {
    /// Resident and within its revalidation TTL: serve it.
    Hit(Arc<Entry>),
    /// Resident but past the TTL: the entry may no longer match the
    /// file on disk — re-stat before serving, then
    /// [`ContentCache::refresh`] (unchanged) or
    /// [`ContentCache::invalidate`] (changed).
    Stale(Arc<Entry>),
    /// Not resident.
    Miss,
}

/// A byte-bounded LRU cache of rendered responses, keyed by URL path.
pub struct ContentCache {
    lru: LruCache<String, Cached>,
    capacity_bytes: u64,
    used_bytes: u64,
    hits: u64,
    misses: u64,
    rejected_oversized: u64,
}

impl ContentCache {
    /// Creates a cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        ContentCache {
            // Entries are at least ~300 bytes (two headers); the entry
            // bound below is therefore unreachable before the byte bound.
            lru: LruCache::new((capacity_bytes / 256 + 2) as usize),
            capacity_bytes,
            used_bytes: 0,
            hits: 0,
            misses: 0,
            rejected_oversized: 0,
        }
    }

    /// Largest entry cost this cache will admit.
    pub fn max_entry_bytes(&self) -> u64 {
        self.capacity_bytes / MAX_ENTRY_DIVISOR
    }

    /// Looks up a path, promoting on hit. Borrowed-key lookup: no
    /// allocation on this per-request path. Freshness-blind — callers
    /// that honour a revalidation TTL use [`Self::lookup`].
    pub fn get(&mut self, path: &str) -> Option<Arc<Entry>> {
        match self.lru.get(path) {
            Some(c) => {
                self.hits += 1;
                Some(Arc::clone(&c.entry))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Freshness-aware lookup: a resident entry whose last validation
    /// is older than `ttl` comes back [`Lookup::Stale`] — still
    /// promoted and counted as a hit (the bytes are resident; it is
    /// their *currency* that is in doubt), but the caller must re-stat
    /// the file and either [`Self::refresh`] or [`Self::invalidate`]
    /// before serving. `ttl = None` disables staleness entirely.
    pub fn lookup(&mut self, path: &str, ttl: Option<Duration>) -> Lookup {
        self.lookup_at(path, ttl, Instant::now())
    }

    /// [`Self::lookup`] with an explicit notion of "now" — the seam
    /// the deterministic sim driver uses (its clock is a base
    /// `Instant` plus simulated nanoseconds, never the wall clock).
    pub fn lookup_at(&mut self, path: &str, ttl: Option<Duration>, now: Instant) -> Lookup {
        match self.lru.get(path) {
            Some(c) => {
                self.hits += 1;
                let entry = Arc::clone(&c.entry);
                match ttl {
                    Some(t) if now.saturating_duration_since(c.validated_at) >= t => {
                        Lookup::Stale(entry)
                    }
                    _ => Lookup::Hit(entry),
                }
            }
            None => {
                self.misses += 1;
                Lookup::Miss
            }
        }
    }

    /// Looks up a path without promoting it or touching the hit/miss
    /// counters — for internal consultations (a revalidation
    /// completion checking what is resident) that are not requests.
    pub fn peek(&self, path: &str) -> Option<Arc<Entry>> {
        self.lru.peek(path).map(|c| Arc::clone(&c.entry))
    }

    /// Marks a resident entry as just revalidated against the disk
    /// file (a re-stat matched its mtime and size): its TTL clock
    /// restarts now.
    pub fn refresh(&mut self, path: &str) {
        self.refresh_at(path, Instant::now())
    }

    /// [`Self::refresh`] with an explicit validation instant.
    pub fn refresh_at(&mut self, path: &str, now: Instant) {
        if let Some(c) = self.lru.get_mut(path) {
            c.validated_at = now;
        }
    }

    /// Drops a resident entry whose backing file changed on disk (or
    /// vanished), so stale bytes stop being served — and stop
    /// 304-validating — immediately. Returns whether an entry was
    /// actually removed.
    pub fn invalidate(&mut self, path: &str) -> bool {
        match self.lru.remove(path) {
            Some(old) => {
                self.used_bytes -= old.entry.cost();
                true
            }
            None => false,
        }
    }

    /// Inserts an entry, evicting LRU entries past the byte bound.
    ///
    /// Entries costing more than [`Self::max_entry_bytes`] are refused
    /// (returning `false`, touching nothing): admitting them would
    /// evict a disproportionate share of the working set — or, past
    /// capacity, the entire cache plus the entry itself — for a body
    /// the page cache serves better.
    pub fn insert(&mut self, path: String, entry: Arc<Entry>) -> bool {
        self.insert_at(path, entry, Instant::now())
    }

    /// [`Self::insert`] with an explicit validation instant.
    pub fn insert_at(&mut self, path: String, entry: Arc<Entry>, now: Instant) -> bool {
        if entry.cost() > self.max_entry_bytes() {
            self.rejected_oversized += 1;
            return false;
        }
        self.used_bytes += entry.cost();
        let cached = Cached {
            entry,
            validated_at: now,
        };
        if let Some((_, old)) = self.lru.insert(path, cached) {
            self.used_bytes -= old.entry.cost();
        }
        while self.used_bytes > self.capacity_bytes {
            match self.lru.pop_lru() {
                Some((_, old)) => self.used_bytes -= old.entry.cost(),
                None => break,
            }
        }
        true
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Inserts refused by the oversized-entry admission check.
    pub fn rejected_oversized(&self) -> u64 {
        self.rejected_oversized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_headers_are_aligned_and_formed() {
        let e = Entry::build("/x.html", b"hello".to_vec());
        assert_eq!(e.header_keep.len() % 32, 0);
        assert_eq!(e.header_close.len() % 32, 0);
        assert!(e.header_keep.starts_with(b"HTTP/1.1 200 OK\r\n"));
        assert_eq!(&e.body[..], b"hello");
        assert!(e.cost() > 5);
    }

    #[test]
    fn entry_with_mtime_carries_last_modified_and_validates() {
        let e = Entry::build_with_mtime("/x.html", b"hi".to_vec(), Some(784_111_777));
        let s = String::from_utf8(e.header_keep.to_vec()).unwrap();
        assert!(s.contains("Last-Modified: Sun, 06 Nov 1994 08:49:37 GMT\r\n"));
        assert_eq!(e.header_keep.len() % 32, 0, "padding must still align");
        // Validator semantics: not-modified iff mtime <= the client's date.
        assert!(e.not_modified_since(Some(784_111_777)));
        assert!(e.not_modified_since(Some(784_111_778)));
        assert!(!e.not_modified_since(Some(784_111_776)));
        assert!(!e.not_modified_since(None));
        // No mtime: never claim not-modified.
        let e = Entry::build("/x.html", b"hi".to_vec());
        assert!(!e.not_modified_since(Some(i64::MAX)));
        let s = String::from_utf8(e.header_keep.to_vec()).unwrap();
        assert!(!s.contains("Last-Modified"));
    }

    #[test]
    fn push_header_splices_a_current_date_without_changing_length() {
        let e = Entry::build_with_mtime("/x.html", b"hi".to_vec(), Some(784_111_777));
        for keep in [true, false] {
            let baked = if keep {
                &e.header_keep
            } else {
                &e.header_close
            };
            let mut segs: Vec<Bytes> = Vec::new();
            e.push_header(keep, &mut segs);
            assert_eq!(segs.len(), 3, "prefix + date + suffix");
            let joined: Vec<u8> = segs.iter().flat_map(|s| s.iter().copied()).collect();
            assert_eq!(joined.len(), baked.len(), "splice must preserve length");
            assert_eq!(joined.len() % 32, 0, "and therefore alignment");
            let text = String::from_utf8(joined).unwrap();
            let date = text
                .lines()
                .find_map(|l| l.strip_prefix("Date: "))
                .expect("Date line intact");
            let t = flash_http::date::parse_imf(date).expect("valid IMF-fixdate");
            assert!((t - flash_http::date::unix_now()).abs() <= 2, "date is now");
            // Everything except the date value matches the baked form.
            assert_eq!(&segs[0][..], &baked[..segs[0].len()]);
            assert_eq!(
                &segs[2][..],
                &baked[segs[0].len() + flash_http::date::IMF_FIXDATE_LEN..]
            );
        }
        // The contiguous form agrees with the segmented one.
        let flat = e.header_with_current_date(true);
        assert_eq!(flat.len(), e.header_keep.len());
    }

    #[test]
    fn validator_rule_is_shared_and_consistent() {
        assert!(not_modified_since(Some(5), Some(5)));
        assert!(not_modified_since(Some(5), Some(9)));
        assert!(!not_modified_since(Some(5), Some(4)));
        assert!(!not_modified_since(None, Some(5)));
        assert!(!not_modified_since(Some(5), None));
        assert!(!not_modified_since(None, None));
    }

    #[test]
    fn cache_hit_and_miss_counting() {
        let mut c = ContentCache::new(1024 * 1024);
        assert!(c.get("/a").is_none());
        c.insert("/a".into(), Entry::build("/a", vec![1, 2, 3]));
        assert!(c.get("/a").is_some());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn byte_bound_evicts_lru() {
        let mut c = ContentCache::new(8000);
        for i in 0..10 {
            assert!(c.insert(format!("/f{i}"), Entry::build("/f", vec![0u8; 700])));
            assert!(c.used_bytes() <= 8000, "used {}", c.used_bytes());
        }
        assert!(c.get("/f9").is_some());
        assert!(c.get("/f0").is_none());
    }

    #[test]
    fn oversized_entry_is_refused_without_churn() {
        let mut c = ContentCache::new(8000);
        for i in 0..4 {
            assert!(c.insert(format!("/f{i}"), Entry::build("/f", vec![0u8; 700])));
        }
        let resident = c.used_bytes();
        assert!(resident > 0);
        // Bigger than max_entry_bytes (capacity/4 = 2000): must be
        // refused, evicting nothing — before this check, the insert
        // emptied the whole cache and then evicted itself, leaving the
        // cache cold on every request for the oversized file.
        let big = Entry::build("/big", vec![0u8; 4000]);
        assert!(big.cost() > c.max_entry_bytes());
        assert!(!c.insert("/big".into(), big));
        assert_eq!(c.used_bytes(), resident, "resident set must be untouched");
        assert!(c.get("/big").is_none());
        assert_eq!(c.rejected_oversized(), 1);
        for i in 0..4 {
            assert!(c.get(&format!("/f{i}")).is_some(), "/f{i} must survive");
        }
    }

    #[test]
    fn lookup_reports_staleness_and_refresh_resets_it() {
        let mut c = ContentCache::new(1024 * 1024);
        c.insert("/a".into(), Entry::build("/a", b"x".to_vec()));
        // Long TTL: fresh.
        assert!(matches!(
            c.lookup("/a", Some(Duration::from_secs(60))),
            Lookup::Hit(_)
        ));
        // Zero TTL: immediately stale — resident but untrusted.
        assert!(matches!(
            c.lookup("/a", Some(Duration::ZERO)),
            Lookup::Stale(_)
        ));
        // No TTL: staleness disabled entirely.
        assert!(matches!(c.lookup("/a", None), Lookup::Hit(_)));
        // A refresh restarts the clock for a non-zero TTL.
        c.refresh("/a");
        assert!(matches!(
            c.lookup("/a", Some(Duration::from_secs(60))),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            c.lookup("/missing", Some(Duration::from_secs(60))),
            Lookup::Miss
        ));
    }

    #[test]
    fn invalidate_removes_entry_and_byte_accounting() {
        let mut c = ContentCache::new(1024 * 1024);
        c.insert("/a".into(), Entry::build("/a", vec![0u8; 500]));
        c.insert("/b".into(), Entry::build("/b", vec![0u8; 700]));
        let both = c.used_bytes();
        assert!(c.invalidate("/a"), "resident entry must be removed");
        assert!(c.get("/a").is_none(), "stale bytes must stop serving");
        assert!(c.used_bytes() < both, "bytes must be released");
        assert!(c.get("/b").is_some(), "other entries untouched");
        assert!(!c.invalidate("/a"), "second invalidate is a no-op");
        // The slot is reusable: a reload re-inserts cleanly.
        c.insert("/a".into(), Entry::build("/a", vec![1u8; 200]));
        assert!(c.get("/a").is_some());
    }

    #[test]
    fn variant_entries_coexist_under_distinct_keys() {
        let mut c = ContentCache::new(1024 * 1024);
        let id = Entry::build_variant(
            "/x.html",
            b"plain".to_vec(),
            Some(7),
            Variant::Identity,
            true,
        );
        let gz = Entry::build_variant("/x.html", b"gz".to_vec(), Some(9), Variant::Gzip, true);
        assert_ne!(
            variant_key("/x.html", Variant::Identity),
            variant_key("/x.html", Variant::Gzip)
        );
        c.insert(variant_key("/x.html", Variant::Identity), Arc::clone(&id));
        c.insert(variant_key("/x.html", Variant::Gzip), Arc::clone(&gz));
        let got_id = c.get(&variant_key("/x.html", Variant::Identity)).unwrap();
        let got_gz = c.get(&variant_key("/x.html", Variant::Gzip)).unwrap();
        assert_eq!(&got_id.body[..], b"plain");
        assert_eq!(&got_gz.body[..], b"gz");
        assert_ne!(
            got_id.etag, got_gz.etag,
            "representations need distinct tags"
        );
        // Evicting one variant leaves the other resident.
        assert!(c.invalidate(&variant_key("/x.html", Variant::Gzip)));
        assert!(c.get(&variant_key("/x.html", Variant::Identity)).is_some());
        assert!(c.get(&variant_key("/x.html", Variant::Gzip)).is_none());
    }

    #[test]
    fn variant_headers_carry_encoding_etag_and_vary() {
        let gz = Entry::build_variant("/x.html", b"gzbytes".to_vec(), Some(7), Variant::Gzip, true);
        let s = String::from_utf8(gz.header_keep.to_vec()).unwrap();
        assert!(s.contains("Content-Encoding: gzip\r\n"), "{s}");
        assert!(s.contains("Vary: Accept-Encoding\r\n"));
        assert!(s.contains(&format!("ETag: {}\r\n", gz.etag)));
        assert!(
            s.contains("Content-Type: text/html\r\n"),
            "gzip variant keeps the underlying media type: {s}"
        );
        assert_eq!(gz.header_keep.len() % 32, 0);
        // Identity entry of a negotiated resource: Vary but no encoding.
        let id = Entry::build_variant(
            "/x.html",
            b"plain".to_vec(),
            Some(7),
            Variant::Identity,
            true,
        );
        let s = String::from_utf8(id.header_keep.to_vec()).unwrap();
        assert!(!s.contains("Content-Encoding"));
        assert!(s.contains("Vary: Accept-Encoding\r\n"));
        // Un-negotiated resource: no Vary at all.
        let plain = Entry::build_with_mtime("/y.html", b"p".to_vec(), Some(7));
        let s = String::from_utf8(plain.header_keep.to_vec()).unwrap();
        assert!(!s.contains("Vary"));
        // The date splice still finds its offset with the new fields.
        let mut segs: Vec<Bytes> = Vec::new();
        gz.push_header(true, &mut segs);
        assert_eq!(segs.len(), 3, "date splice must survive extras");
    }

    #[test]
    fn reinsert_replaces_accounting() {
        let mut c = ContentCache::new(100_000);
        c.insert("/a".into(), Entry::build("/a", vec![0u8; 1000]));
        let first = c.used_bytes();
        c.insert("/a".into(), Entry::build("/a", vec![0u8; 2000]));
        assert_eq!(c.used_bytes(), first + 1000);
    }
}
