//! Edge-triggered `epoll(7)` backend — the Linux fast path of the
//! readiness subsystem.
//!
//! Like [`crate::poll`], [`crate::writev`] and [`crate::sendfile`],
//! the foreign functions are declared directly against the platform
//! libc; no external I/O crate is pulled in. Every registration is
//! `EPOLLET` (edge-triggered), so `epoll_wait` costs O(ready
//! descriptors) and interest-set maintenance is an incremental
//! `epoll_ctl` per state-machine transition instead of a per-iteration
//! rebuild of the whole watch set. Callers must follow the
//! edge-triggered contract in the [module docs](crate::event).

use std::io;
use std::os::unix::io::RawFd;

use super::{BackendKind, Event, EventBackend, Interest};

const EPOLL_CLOEXEC: core::ffi::c_int = 0o2000000;

const EPOLL_CTL_ADD: core::ffi::c_int = 1;
const EPOLL_CTL_DEL: core::ffi::c_int = 2;
const EPOLL_CTL_MOD: core::ffi::c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half — reported to readers so half-closed
/// keep-alive connections are reaped instead of lingering silently.
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

/// `struct epoll_event`. The kernel ABI packs this to 4 bytes on
/// x86-64 (a 12-byte struct); other architectures use natural
/// alignment. This mirrors the libc definition exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

unsafe extern "C" {
    fn epoll_create1(flags: core::ffi::c_int) -> core::ffi::c_int;
    fn epoll_ctl(
        epfd: core::ffi::c_int,
        op: core::ffi::c_int,
        fd: core::ffi::c_int,
        event: *mut EpollEvent,
    ) -> core::ffi::c_int;
    fn epoll_wait(
        epfd: core::ffi::c_int,
        events: *mut EpollEvent,
        maxevents: core::ffi::c_int,
        timeout: core::ffi::c_int,
    ) -> core::ffi::c_int;
    fn close(fd: core::ffi::c_int) -> core::ffi::c_int;
}

fn mask_of(interest: Interest) -> u32 {
    // EPOLLET unconditionally: even an Interest::NONE registration
    // stays edge-triggered for the error conditions the kernel always
    // reports. EPOLLRDHUP rides with read interest so a peer's
    // half-close surfaces as readability (read() will return 0).
    let mut m = EPOLLET;
    if interest.is_readable() {
        m |= EPOLLIN | EPOLLRDHUP;
    }
    if interest.is_writable() {
        m |= EPOLLOUT;
    }
    m
}

/// Largest batch collected per `epoll_wait`. Ready descriptors beyond
/// the batch stay on the kernel's ready list and come back from the
/// next call — nothing is lost by bounding the buffer.
const WAIT_BATCH: usize = 256;

/// The edge-triggered epoll backend. One epoll instance per event
/// loop; the instance descriptor is closed on drop.
pub struct EpollBackend {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
    registered: usize,
}

// SAFETY: the epoll fd is just an integer handle; the backend is used
// from one thread at a time (&mut self everywhere).
unsafe impl Send for EpollBackend {}

impl EpollBackend {
    /// Creates a fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<EpollBackend> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollBackend {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_BATCH],
            registered: 0,
        })
    }

    fn ctl(&self, op: core::ffi::c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
        // SAFETY: `ev` is a valid exclusive pointer for the call; DEL
        // ignores it (a non-null pointer is passed anyway for pre-2.6.9
        // kernel compatibility, as the man page prescribes).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
}

impl Drop for EpollBackend {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is closed only here.
        unsafe { close(self.epfd) };
    }
}

impl EventBackend for EpollBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Epoll
    }

    fn edge_triggered(&self) -> bool {
        true
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: mask_of(interest),
                data: token,
            }),
        )?;
        self.registered += 1;
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        // EPOLL_CTL_MOD re-arms edge-triggered delivery as a side
        // effect: the kernel re-evaluates readiness against the new
        // mask, so a condition that already holds is delivered again.
        // `rearm` (the default trait impl) relies on exactly this.
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: mask_of(interest),
                data: token,
            }),
        )
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, None) {
            Ok(()) => {
                self.registered = self.registered.saturating_sub(1);
                Ok(())
            }
            // The descriptor may already be closed (close removes the
            // registration when the last reference drops); the count
            // still shrinks because the kernel-side entry is gone.
            Err(e) => {
                self.registered = self.registered.saturating_sub(1);
                Err(e)
            }
        }
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        // `timeout_ms` maps straight onto epoll_wait's timeout:
        // negative blocks indefinitely (the shard loop passes -1 when
        // its timing wheel has nothing armed), zero polls.
        events.clear();
        let n = loop {
            // SAFETY: `buf` is a live, exclusively borrowed array of
            // `WAIT_BATCH` epoll_event structs; the kernel writes at
            // most `maxevents` entries.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as core::ffi::c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for raw in &self.buf[..n] {
            let bits = raw.events;
            events.push(Event {
                token: raw.data,
                // Errors and hangups fold into both directions, same
                // as the poll wrapper: the handler attempts the I/O
                // and observes the failure there.
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }

    fn registered(&self) -> usize {
        self.registered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_edge_fires_once_until_new_data() {
        let mut be = EpollBackend::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        be.register(a.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut evs = Vec::new();

        // No data yet: timeout, zero events.
        assert_eq!(be.wait(&mut evs, 20).unwrap(), 0);

        b.write_all(b"x").unwrap();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
        assert_eq!(evs[0].token, 7);
        assert!(evs[0].readable);

        // Edge consumed, data NOT drained: ET reports nothing new.
        assert_eq!(be.wait(&mut evs, 20).unwrap(), 0, "ET must not re-report");

        // New data is a new edge.
        b.write_all(b"y").unwrap();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);

        // Drain, then modify re-arms: still-buffered data would be
        // redelivered, but we drained, so nothing fires.
        let mut sink = [0u8; 8];
        let _ = (&a).read(&mut sink).unwrap();
        be.modify(a.as_raw_fd(), 7, Interest::READ).unwrap();
        assert_eq!(be.wait(&mut evs, 20).unwrap(), 0);
    }

    #[test]
    fn modify_rearms_pending_readiness() {
        let mut be = EpollBackend::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        be.register(a.as_raw_fd(), 1, Interest::READ).unwrap();
        b.write_all(b"data").unwrap();
        let mut evs = Vec::new();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
        // Edge consumed with data still buffered — MOD must redeliver.
        be.modify(a.as_raw_fd(), 1, Interest::READ).unwrap();
        assert_eq!(
            be.wait(&mut evs, 1000).unwrap(),
            1,
            "MOD must re-arm a still-true condition"
        );
        assert!(evs[0].readable);
    }

    #[test]
    fn interest_none_silences_a_readable_fd() {
        let mut be = EpollBackend::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        be.register(a.as_raw_fd(), 3, Interest::READ).unwrap();
        b.write_all(b"!").unwrap();
        let mut evs = Vec::new();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
        be.modify(a.as_raw_fd(), 3, Interest::NONE).unwrap();
        assert_eq!(be.wait(&mut evs, 20).unwrap(), 0, "NONE must silence");
        // And switching back redelivers the buffered data.
        be.modify(a.as_raw_fd(), 3, Interest::READ).unwrap();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    }

    #[test]
    fn deregister_then_reuse_slot() {
        let mut be = EpollBackend::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        be.register(a.as_raw_fd(), 9, Interest::READ).unwrap();
        assert_eq!(be.registered(), 1);
        be.deregister(a.as_raw_fd()).unwrap();
        assert_eq!(be.registered(), 0);
        b.write_all(b"z").unwrap();
        let mut evs = Vec::new();
        assert_eq!(
            be.wait(&mut evs, 20).unwrap(),
            0,
            "deregistered fd is silent"
        );
        be.register(a.as_raw_fd(), 10, Interest::READ).unwrap();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
        assert_eq!(evs[0].token, 10, "re-registration carries the new token");
    }
}
