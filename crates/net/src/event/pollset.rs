//! Portable `poll(2)` backend — the fallback half of the readiness
//! subsystem, wrapping the existing [`crate::poll::poll_fds`] seam.
//!
//! The interest table is maintained incrementally (register / modify /
//! deregister keep a dense entry vector plus an fd index), but each
//! `wait` still rebuilds a `pollfd` array and hands the whole watch
//! set to the kernel — the O(watched descriptors) scan the paper
//! attributes to `select`-style interfaces, and exactly the cost the
//! epoll backend exists to remove. Readiness is level-triggered:
//! strictly more events than edge-triggered, so a caller written to
//! the ET contract (see [module docs](crate::event)) is correct here
//! too, just with occasional spurious wakeups it absorbs as
//! `EWOULDBLOCK`.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;

use super::{BackendKind, Event, EventBackend, Interest};
use crate::poll::{poll_fds, PollFd, POLL_IN, POLL_OUT};

struct Entry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

/// The level-triggered fallback backend.
pub struct PollBackend {
    entries: Vec<Entry>,
    index: HashMap<RawFd, usize>,
    /// Persistent `pollfd` buffer, cleared (never shrunk) per wait.
    fds: Vec<PollFd>,
    /// `fds[i]` (beyond any skipped entries) maps to `entries[fd_entry[i]]`.
    fd_entry: Vec<usize>,
}

impl PollBackend {
    /// Creates an empty poll set.
    pub fn new() -> PollBackend {
        PollBackend {
            entries: Vec::new(),
            index: HashMap::new(),
            fds: Vec::new(),
            fd_entry: Vec::new(),
        }
    }
}

impl Default for PollBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBackend for PollBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Poll
    }

    fn edge_triggered(&self) -> bool {
        false
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.index.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.index.insert(fd, self.entries.len());
        self.entries.push(Entry {
            fd,
            token,
            interest,
        });
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let &i = self
            .index
            .get(&fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries[i].token = token;
        self.entries[i].interest = interest;
        Ok(())
    }

    fn rearm(&mut self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        // Level-triggered: a still-true condition is re-reported on
        // every wait, so there is no edge to re-arm.
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .index
            .remove(&fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries.swap_remove(i);
        if i < self.entries.len() {
            self.index.insert(self.entries[i].fd, i);
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        self.fds.clear();
        self.fd_entry.clear();
        for (i, e) in self.entries.iter().enumerate() {
            let mut mask = 0i16;
            if e.interest.is_readable() {
                mask |= POLL_IN;
            }
            if e.interest.is_writable() {
                mask |= POLL_OUT;
            }
            if mask == 0 {
                // Interest::NONE entries stay registered but are not
                // handed to the kernel: poll(2) would still report
                // POLLERR/POLLHUP for them, turning an intentionally
                // quiesced descriptor into a busy loop.
                continue;
            }
            self.fds.push(PollFd::new(e.fd, mask));
            self.fd_entry.push(i);
        }
        if self.fds.is_empty() {
            // Nothing pollable: honour the timeout so callers keep
            // their cadence (shutdown checks, timing-wheel ticks). An
            // infinite timeout degrades to a short sleep-poll — the
            // server's loops always keep at least a wake pipe
            // registered, so this path only guards exotic callers
            // against spinning.
            if timeout_ms != 0 {
                std::thread::sleep(std::time::Duration::from_millis(if timeout_ms < 0 {
                    50
                } else {
                    timeout_ms as u64
                }));
            }
            return Ok(0);
        }
        poll_fds(&mut self.fds, timeout_ms)?;
        for (slot, fd) in self.fds.iter().enumerate() {
            if fd.readable() || fd.writable() {
                let e = &self.entries[self.fd_entry[slot]];
                events.push(Event {
                    token: e.token,
                    readable: fd.readable(),
                    writable: fd.writable(),
                });
            }
        }
        Ok(events.len())
    }

    fn registered(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn level_triggered_re_reports_until_drained() {
        let mut be = PollBackend::new();
        let (a, mut b) = UnixStream::pair().unwrap();
        be.register(a.as_raw_fd(), 5, Interest::READ).unwrap();
        b.write_all(b"x").unwrap();
        let mut evs = Vec::new();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
        assert_eq!(evs[0].token, 5);
        // Not drained: LT keeps reporting — the opposite of the epoll
        // backend's single-edge delivery.
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    }

    #[test]
    fn interest_none_is_skipped_not_polled() {
        let mut be = PollBackend::new();
        let (a, mut b) = UnixStream::pair().unwrap();
        be.register(a.as_raw_fd(), 5, Interest::READ).unwrap();
        b.write_all(b"x").unwrap();
        be.modify(a.as_raw_fd(), 5, Interest::NONE).unwrap();
        let mut evs = Vec::new();
        assert_eq!(be.wait(&mut evs, 10).unwrap(), 0);
        assert_eq!(be.registered(), 1, "NONE keeps the registration");
        be.modify(a.as_raw_fd(), 5, Interest::READ).unwrap();
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
    }

    #[test]
    fn deregister_swaps_index_correctly() {
        let mut be = PollBackend::new();
        let pairs: Vec<_> = (0..4).map(|_| UnixStream::pair().unwrap()).collect();
        for (i, (a, _)) in pairs.iter().enumerate() {
            be.register(a.as_raw_fd(), i as u64, Interest::READ)
                .unwrap();
        }
        // Remove the first; the swapped-in last entry must stay
        // addressable for modify.
        be.deregister(pairs[0].0.as_raw_fd()).unwrap();
        assert_eq!(be.registered(), 3);
        be.modify(pairs[3].0.as_raw_fd(), 33, Interest::WRITE)
            .unwrap();
        let mut evs = Vec::new();
        // Sockets are writable immediately.
        assert_eq!(be.wait(&mut evs, 1000).unwrap(), 1);
        assert_eq!(evs[0].token, 33);
        assert!(evs[0].writable);
    }

    #[test]
    fn duplicate_register_is_an_error() {
        let mut be = PollBackend::new();
        let (a, _b) = UnixStream::pair().unwrap();
        be.register(a.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(be.register(a.as_raw_fd(), 2, Interest::READ).is_err());
    }
}
