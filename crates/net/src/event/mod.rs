//! The readiness-event subsystem: one trait, two kernels.
//!
//! Everything in the server that used to call `poll(2)` directly now
//! speaks [`EventBackend`]: register a descriptor once with an opaque
//! token, adjust its interest incrementally as the connection's state
//! machine moves, and collect batches of [`Event`]s from `wait`. Two
//! implementations live behind the trait:
//!
//! * [`epoll::EpollBackend`] — **edge-triggered** `epoll(7)` via raw
//!   FFI (`EPOLLIN|EPOLLOUT|EPOLLET`), Linux only. Interest changes
//!   are incremental `epoll_ctl` calls, so the per-iteration cost is
//!   O(ready descriptors), not O(watched descriptors) — the scaling
//!   property the paper's `select`-based loop lacks (§3.4 discussion),
//!   and the reason a shard can carry 10k+ mostly-idle keep-alive
//!   connections without the readiness call itself becoming the
//!   bottleneck.
//! * [`pollset::PollBackend`] — the portable fallback wrapping the
//!   existing [`crate::poll::poll_fds`] seam. It keeps an interest
//!   table and rebuilds the `pollfd` array per wait (O(watched fds),
//!   exactly the cost the epoll backend removes), reporting
//!   level-triggered readiness.
//!
//! # The edge-triggered contract
//!
//! Callers are written to edge-triggered semantics, which are strictly
//! more demanding than level-triggered — a loop that is correct under
//! ET is correct under LT, so one event loop serves both backends:
//!
//! 1. **Drain to `EWOULDBLOCK`.** A readable event may be the only
//!    notification for any amount of buffered data; the reader must
//!    consume until the socket blocks.
//! 2. **Arm write interest only while a send is in flight**, and fall
//!    back to read interest the moment the output queue drains. Write
//!    readiness is the steady state of an idle socket; leaving it
//!    armed under ET is harmless but under LT busy-loops the wait.
//! 3. **Re-arm after a voluntary yield.** A sender that stops mid-body
//!    for fairness (the `sendfile` visit budget) has consumed the
//!    writability edge without exhausting it; it must call
//!    [`EventBackend::rearm`] so the backend re-checks readiness and
//!    redelivers, or the connection would stall forever waiting for an
//!    edge that never comes.
//!
//! Backend selection is [`BackendChoice`]: `Auto` (the default)
//! resolves to epoll on Linux and poll elsewhere, overridable with the
//! `FLASH_EVENT_BACKEND=poll|epoll` environment variable (CI uses this
//! to keep the portable fallback green on Linux); `Epoll`/`Poll` pin a
//! backend explicitly and ignore the environment.

use std::io;
use std::os::unix::io::RawFd;

pub mod pollset;

#[cfg(any(target_os = "linux", target_os = "android"))]
pub mod epoll;

/// Which readiness events a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Watch for nothing (the descriptor stays registered; errors and
    /// hangups are still reported by kernels that always deliver them).
    pub const NONE: Interest = Interest(0);
    /// Watch for readability.
    pub const READ: Interest = Interest(1);
    /// Watch for writability.
    pub const WRITE: Interest = Interest(2);
    /// Watch for both.
    pub const READ_WRITE: Interest = Interest(3);

    /// True if readability is requested.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if writability is requested.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }
}

/// One readiness notification: the token the descriptor was registered
/// with, plus what it is ready for. Error and hangup conditions are
/// folded into both flags — a connection handler must attempt the I/O
/// to observe the failure, exactly as with `poll(2)` revents.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen token from `register`/`modify`.
    pub token: u64,
    /// Ready for reading (or peer-closed/errored).
    pub readable: bool,
    /// Ready for writing (or errored).
    pub writable: bool,
}

/// Readiness multiplexing behind a uniform, incrementally-updated
/// interest set. See the module docs for the edge-triggered contract
/// callers must follow.
pub trait EventBackend: Send {
    /// The resolved kind (for diagnostics and tests).
    fn kind(&self) -> BackendKind;

    /// True if events are delivered once per readiness *transition*
    /// (epoll ET) rather than re-reported while the condition holds.
    fn edge_triggered(&self) -> bool;

    /// Starts watching `fd` with `interest`; `token` comes back in
    /// every [`Event`] for this descriptor. A descriptor must be
    /// registered at most once.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Changes a registered descriptor's interest (and token). On the
    /// epoll backend this also re-arms edge-triggered delivery: if the
    /// descriptor is ready for the new interest *right now*, an event
    /// is delivered on the next wait even though the edge predates the
    /// call.
    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Re-checks readiness without changing interest — required after
    /// consuming an edge without exhausting it (contract rule 3). A
    /// level-triggered backend may make this a no-op: it re-reports
    /// readiness on every wait anyway.
    fn rearm(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.modify(fd, token, interest)
    }

    /// Stops watching `fd`. Safe to call with a descriptor that was
    /// already closed (the error is swallowed); callers should prefer
    /// deregistering *before* close so the interest table never holds
    /// a recycled descriptor number.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout_ms` expires (negative = infinite). Ready events are
    /// appended to `events` (cleared first); returns how many. `EINTR`
    /// is retried internally.
    ///
    /// Callers with armed timers (the shard loop's timing wheel,
    /// [`crate::timer`]) pass the time to the next wheel tick here and
    /// block (-1) when nothing is armed — deadline latency is bounded
    /// by the tick, and an idle loop costs zero wakeups.
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize>;

    /// Number of descriptors currently registered.
    fn registered(&self) -> usize;
}

/// Which concrete backend a [`BackendChoice`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Edge-triggered `epoll(7)`.
    Epoll,
    /// Level-triggered `poll(2)`.
    Poll,
}

impl BackendKind {
    /// Lower-case name, matching the `FLASH_EVENT_BACKEND` values.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Epoll => "epoll",
            BackendKind::Poll => "poll",
        }
    }
}

/// How the server picks its readiness backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Platform default — epoll on Linux, poll elsewhere — overridable
    /// with `FLASH_EVENT_BACKEND=poll|epoll`.
    #[default]
    Auto,
    /// Pin the edge-triggered epoll backend (falls back to poll on
    /// platforms without epoll). Ignores the environment.
    Epoll,
    /// Pin the portable poll backend. Ignores the environment.
    Poll,
}

const ENV_BACKEND: &str = "FLASH_EVENT_BACKEND";

fn platform_has_epoll() -> bool {
    cfg!(any(target_os = "linux", target_os = "android"))
}

/// Resolves a choice to the backend that will actually run, applying
/// the `FLASH_EVENT_BACKEND` override (only to `Auto`) and the
/// platform floor (epoll requested where it does not exist degrades to
/// poll rather than failing).
pub fn resolve(choice: BackendChoice) -> BackendKind {
    let want = match choice {
        BackendChoice::Poll => BackendKind::Poll,
        BackendChoice::Epoll => BackendKind::Epoll,
        BackendChoice::Auto => match std::env::var(ENV_BACKEND).ok().as_deref() {
            Some("poll") => BackendKind::Poll,
            Some("epoll") => BackendKind::Epoll,
            // Unknown values fall through to the platform default
            // rather than aborting a running server over a typo.
            _ => {
                if platform_has_epoll() {
                    BackendKind::Epoll
                } else {
                    BackendKind::Poll
                }
            }
        },
    };
    if want == BackendKind::Epoll && !platform_has_epoll() {
        BackendKind::Poll
    } else {
        want
    }
}

/// Creates the backend for `choice`. Infallible by design: if epoll
/// creation itself fails (fd exhaustion, exotic kernel), the portable
/// poll backend is returned instead — a server should degrade to the
/// O(n) scan, not refuse to start.
pub fn new_backend(choice: BackendChoice) -> Box<dyn EventBackend> {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    if resolve(choice) == BackendKind::Epoll {
        if let Ok(b) = epoll::EpollBackend::new() {
            return Box::new(b);
        }
    }
    let _ = choice;
    Box::new(pollset::PollBackend::new())
}

// -- RLIMIT_NOFILE helper ---------------------------------------------------
//
// High-connection-count workloads (and the 1k-socket tests/benches
// that simulate them) need descriptor headroom beyond the common 1024
// soft limit. Raising the soft limit toward the hard limit is an
// unprivileged operation.

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

// RLIMIT_NOFILE is 7 on Linux and 8 on the BSDs/macOS.
#[cfg(any(target_os = "linux", target_os = "android"))]
const RLIMIT_NOFILE: core::ffi::c_int = 7;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
const RLIMIT_NOFILE: core::ffi::c_int = 8;

unsafe extern "C" {
    fn getrlimit(resource: core::ffi::c_int, rlim: *mut RLimit) -> core::ffi::c_int;
    fn setrlimit(resource: core::ffi::c_int, rlim: *const RLimit) -> core::ffi::c_int;
}

/// Ensures the process may hold at least `want` file descriptors,
/// raising the soft `RLIMIT_NOFILE` toward the hard limit if needed.
/// Returns `true` if `want` descriptors are available.
pub fn ensure_fd_limit(want: u64) -> bool {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid exclusive pointer to an rlimit-layout
    // struct; the kernel only writes the two fields.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return false;
    }
    if lim.cur >= want {
        return true;
    }
    let raised = RLimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    // SAFETY: `raised` is a valid initialized struct read by the kernel.
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
        return false;
    }
    raised.cur >= want
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_choices_ignore_environment() {
        // Whatever FLASH_EVENT_BACKEND says, pinned choices stand
        // (modulo the platform floor).
        assert_eq!(resolve(BackendChoice::Poll), BackendKind::Poll);
        if platform_has_epoll() {
            assert_eq!(resolve(BackendChoice::Epoll), BackendKind::Epoll);
        } else {
            assert_eq!(resolve(BackendChoice::Epoll), BackendKind::Poll);
        }
    }

    #[test]
    fn new_backend_matches_resolution() {
        let b = new_backend(BackendChoice::Poll);
        assert_eq!(b.kind(), BackendKind::Poll);
        assert!(!b.edge_triggered());
        let b = new_backend(BackendChoice::Auto);
        assert_eq!(b.kind(), resolve(BackendChoice::Auto));
    }

    #[test]
    fn interest_flags() {
        assert!(Interest::READ.is_readable());
        assert!(!Interest::READ.is_writable());
        assert!(Interest::WRITE.is_writable());
        assert!(!Interest::WRITE.is_readable());
        assert!(Interest::READ_WRITE.is_readable() && Interest::READ_WRITE.is_writable());
        assert!(!Interest::NONE.is_readable() && !Interest::NONE.is_writable());
    }

    #[test]
    fn fd_limit_query_succeeds() {
        // At minimum the current limit is queryable and already-held
        // descriptors fit inside it.
        assert!(ensure_fd_limit(8));
    }
}
