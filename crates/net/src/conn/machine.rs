//! The per-connection protocol machine: output queueing, gathered
//! flush with partial-write resumption, the `sendfile` fairness
//! budget, and per-state deadline classification — generic over
//! [`ConnIo`], performing no syscalls and reading no clocks.

use std::collections::VecDeque;
use std::io;
use std::time::Instant;

use bytes::Bytes;

use crate::event::Interest;
use crate::timer::TimerWheel;
use crate::writev::MAX_IOV;

use super::plan::RequestCond;
use super::{ConnIo, ProtoConfig, ShardStats};

use std::sync::atomic::Ordering;

/// Where a connection is in its request/response cycle.
pub enum ConnState {
    /// Parsing (or waiting for) request bytes.
    Reading,
    /// The request is owned by a helper job; a completion will flip
    /// the connection to `Writing`.
    Waiting,
    /// A response is queued or in flight.
    Writing,
}

/// Large-body transmission state: everything the `sendfile` path needs
/// to resume after a partial send, tracked per connection alongside
/// `out`/`out_off`. The file handle is `Clone` ([`ConnIo::FileRef`])
/// because many connections can stream the same body at once —
/// explicit offsets mean no shared cursor is ever touched.
pub struct SendFileState<F> {
    pub file: F,
    pub offset: u64,
    pub remaining: u64,
}

/// Which deadline class is currently armed in the shard's timing
/// wheel for a connection — also the expiry's *cause*, mapped to the
/// matching [`ShardStats`] counter when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineKind {
    /// No deadline armed (the state's class is disabled in
    /// [`ProtoConfig`]).
    None,
    /// Keep-alive idle: between requests, nothing buffered.
    Idle,
    /// Header read: a request has started but not completed.
    Header,
    /// Write progress: a response is in flight.
    WriteStall,
    /// Helper wait: the request is owned by a helper, and a wedged
    /// helper or stalled disk must not pin the fd and slot forever.
    HelperWait,
    /// Dynamic wait: the request is owned by an application worker.
    /// Re-armed on every delivered chunk; expiry answers `504` before
    /// headers are out, severs the stream after — and in both cases
    /// cancels the job so the helper kills and respawns the worker.
    DynamicWait,
}

/// One connection: its transport, parser, and transmission state.
pub struct Conn<Io: ConnIo> {
    /// The transport this connection speaks through.
    pub io: Io,
    pub parser: flash_http::RequestParser,
    pub state: ConnState,
    /// Response segments pending transmission (header, body, ...) —
    /// drained with gathered writes, never copied into one buffer.
    pub out: VecDeque<Bytes>,
    /// Bytes of `out.front()` already transmitted.
    pub out_off: usize,
    /// Large body pending transmission via the sendfile path, sent
    /// after `out` drains (the header always precedes the file bytes).
    pub sendfile: Option<SendFileState<Io::FileRef>>,
    pub keep_alive: bool,
    pub head_only: bool,
    /// The in-flight request's conditional/negotiation fields
    /// (`If-Modified-Since`, `If-None-Match`, `Range`, `If-Range`,
    /// `Accept-Encoding`), snapshotted at parse — the response may be
    /// rendered by a helper completion long after the `Request` is
    /// gone.
    pub cond: RequestCond,
    /// Interest currently armed in the driver's event backend; the
    /// driver reconciles this against the state machine after every
    /// drive.
    pub interest: Interest,
    /// Deadline class currently armed in the shard's timing wheel;
    /// reconciled alongside interest after every drive.
    pub deadline: DeadlineKind,
    /// Value of `progress` when the write-stall deadline was last
    /// armed: any advance re-arms it (forward progress resets the
    /// clock; a full stall does not).
    pub deadline_progress: u64,
    /// Cumulative response bytes transmitted (writev + sendfile) — the
    /// write-progress deadline's odometer.
    pub progress: u64,
    /// When the driver accepted this connection — source of the
    /// connection-lifetime histogram, recorded at whichever close site
    /// retires the slot. `None` until the driver stamps it.
    pub opened_at: Option<Instant>,
    /// When the in-flight request finished parsing — source of the
    /// request-latency histogram, taken at response completion.
    /// `/.flash/` endpoint responses never stamp it.
    pub req_start: Option<Instant>,
    /// True from request parse until the response's first byte is
    /// accepted by the transport (the TTFB record point).
    pub ttfb_pending: bool,
    /// `progress` at request parse — the subtrahend for this
    /// response's transmitted-bytes figure in the access log.
    pub progress_at_req: u64,
    /// When this connection parked `Waiting` on a helper job — source
    /// of the helper-wait histogram, taken at completion delivery.
    pub wait_start: Option<Instant>,
    /// True while the queued response came from the `/.flash/`
    /// endpoints: counted under `metrics_requests`, excluded from the
    /// latency histograms and the access log.
    pub metrics_response: bool,
    /// True from dynamic-tier dispatch until the worker's terminal
    /// event (or an error path) retires the request: steers the
    /// `Waiting` state onto the [`DeadlineKind::DynamicWait`] class.
    pub dynamic: bool,
    /// True while a chunked response stream is open: the header (and
    /// zero or more chunks) are queued or sent but the terminal frame
    /// is not — draining `out` must park the connection back in
    /// `Waiting` instead of finishing the response.
    pub stream_open: bool,
    /// Access-log metadata staged for the in-flight response (only
    /// when access logging is on).
    pub pending_log: Option<crate::stats::PendingLog>,
}

impl<Io: ConnIo> Conn<Io> {
    /// A fresh connection over `io`, in `Reading` with read interest.
    pub fn new(io: Io) -> Conn<Io> {
        Conn {
            io,
            parser: flash_http::RequestParser::new(),
            state: ConnState::Reading,
            out: VecDeque::new(),
            out_off: 0,
            sendfile: None,
            keep_alive: false,
            head_only: false,
            cond: RequestCond::default(),
            interest: Interest::READ,
            deadline: DeadlineKind::None,
            deadline_progress: 0,
            progress: 0,
            opened_at: None,
            req_start: None,
            ttfb_pending: false,
            progress_at_req: 0,
            wait_start: None,
            metrics_response: false,
            dynamic: false,
            stream_open: false,
            pending_log: None,
        }
    }
}

/// How far one call to [`super::shard::drive_conn`] got.
pub enum Drive {
    /// The slot is now empty (connection finished or died).
    Closed,
    /// Progress stopped on genuine backpressure or pending work; the
    /// next readiness event or completion resumes it.
    Blocked,
    /// The connection *chose* to stop mid-send (fairness budget) while
    /// its transport may still be writable — under an edge-triggered
    /// backend the consumed edge must be re-armed or it never speaks
    /// again.
    Yielded,
}

/// The interest the backend should have armed for a connection in this
/// state: read while parsing, write only while a send is in flight,
/// nothing while a helper owns the request (completions arrive through
/// the driver, not the transport).
pub fn desired_interest(state: &ConnState) -> Interest {
    match state {
        ConnState::Reading => Interest::READ,
        ConnState::Writing => Interest::WRITE,
        ConnState::Waiting => Interest::NONE,
    }
}

/// Reconciles the timing wheel with a connection's state machine after
/// a drive — the deadline analogue of the interest reconcile:
///
/// * `Reading` with an empty parse buffer → the **idle** keep-alive
///   deadline, armed on entry to the state;
/// * `Reading` with request bytes buffered → the **header-read**
///   deadline, armed once when the request starts and deliberately
///   *not* re-armed by further trickled bytes (re-arming is exactly
///   the slowloris hole);
/// * `Writing` → the **write-progress** deadline, re-armed whenever
///   `progress` advanced since the last arm — forward progress resets
///   the clock, a stalled peer's does not;
/// * `Waiting` → the **helper-wait** deadline: the helper owns the
///   request, and a wedged helper or stalled disk must not pin the
///   waiter's fd and slot forever. Expiry reaps the connection *and*
///   purges its waiter registration (cancelling the job if it was the
///   last waiter), so a late completion cannot reach a reused slot;
/// * `Waiting` on the dynamic tier (`conn.dynamic`) → the
///   **dynamic-wait** deadline instead: an application worker owns the
///   request. Every delivered chunk transits the state machine, so the
///   class re-arms per chunk — the deadline bounds worker *silence*,
///   not total response time. Expiry answers `504` (pre-header) or
///   severs the chunked stream (mid-body) and cancels the job, which
///   gets the wedged worker killed and respawned.
///
/// `now` is the driver's clock — wall time for the real loop, the
/// simulated instant for the deterministic driver.
pub fn sync_deadline<Io: ConnIo>(
    conn: &mut Conn<Io>,
    token: u64,
    cfg: &ProtoConfig,
    wheel: &mut TimerWheel,
    now: Instant,
) {
    let (kind, timeout) = match conn.state {
        ConnState::Waiting if conn.dynamic => (DeadlineKind::DynamicWait, cfg.dynamic_deadline),
        ConnState::Waiting => (DeadlineKind::HelperWait, cfg.helper_wait_timeout),
        ConnState::Writing => (DeadlineKind::WriteStall, cfg.write_stall_timeout),
        ConnState::Reading => {
            if conn.parser.buffered() > 0 {
                (DeadlineKind::Header, cfg.header_read_timeout)
            } else {
                (DeadlineKind::Idle, cfg.idle_timeout)
            }
        }
    };
    match timeout {
        None => {
            // State has no deadline (or its class is disabled).
            if conn.deadline != DeadlineKind::None {
                wheel.cancel(token);
                conn.deadline = DeadlineKind::None;
            }
        }
        Some(t) => {
            // Re-arm when the class changed — OR when response bytes
            // moved since the last arm. The progress check is what
            // re-arms a stalled writer on forward progress, and it
            // also covers transitions invisible to the kind compare:
            // one drive can run Reading → Writing → Reading
            // (request served, response flushed, back to idle), which
            // must start a *fresh* idle period even though the class
            // reads unchanged. Trickled request bytes advance nothing,
            // so a slowloris sender never refreshes its own deadline.
            if conn.deadline != kind || conn.progress != conn.deadline_progress {
                wheel.arm(token, now + t);
                conn.deadline = kind;
                conn.deadline_progress = conn.progress;
            }
        }
    }
}

/// Collects up to [`MAX_IOV`] non-empty segment views starting at
/// `out_off` into `bufs`; returns the number collected.
pub fn gather_out<'a>(
    out: &'a VecDeque<Bytes>,
    out_off: usize,
    bufs: &mut [&'a [u8]; MAX_IOV],
) -> usize {
    let mut cnt = 0;
    for (i, seg) in out.iter().enumerate() {
        if cnt == MAX_IOV {
            break;
        }
        let view = if i == 0 { &seg[out_off..] } else { &seg[..] };
        if !view.is_empty() {
            bufs[cnt] = view;
            cnt += 1;
        }
    }
    cnt
}

/// Consumes `n` transmitted bytes from the front of the queue,
/// tracking resumption across segment boundaries and discarding
/// zero-length segments.
pub fn advance_out(out: &mut VecDeque<Bytes>, out_off: &mut usize, mut n: usize) {
    while let Some(front) = out.front() {
        let remaining = front.len() - *out_off;
        if n >= remaining {
            n -= remaining;
            out.pop_front();
            *out_off = 0;
            // Keep popping: this also clears zero-length segments so
            // the queue can never stall on an empty front.
            if n == 0 && out.front().is_some_and(|f| !f.is_empty()) {
                break;
            }
        } else {
            *out_off += n;
            break;
        }
    }
    debug_assert!(out.front().is_none() || out.front().is_some_and(|f| *out_off < f.len()));
}

/// Outcome of one attempt to flush a connection's output queue.
pub enum FlushResult {
    /// Everything queued was transmitted.
    Flushed,
    /// The transport backpressured; retry when writable.
    WouldBlock,
    /// The fairness budget ran out with the transport still accepting
    /// — the caller must re-arm the (consumed) writability edge.
    Yielded,
    /// The connection is dead.
    Error,
}

/// Per-visit `sendfile` byte budget: a fast consumer of a huge file
/// could otherwise keep the send succeeding for seconds, monopolizing
/// the shard's event loop. An exhausted budget reports
/// [`FlushResult::Yielded`] — distinct from `WouldBlock`, because the
/// transport is typically STILL writable, so under an edge-triggered
/// backend no fresh edge would ever arrive: the driver re-arms the
/// registration to get the event redelivered, and every other
/// connection gets serviced in between.
const SENDFILE_VISIT_BUDGET: u64 = 1024 * 1024;

/// Drains `conn.out` with gathered writes — the happy path (cached
/// header + body fitting the transport's window) is exactly one
/// `writev` — then streams any pending large body through
/// [`ConnIo::sendfile`].
pub fn flush_out<Io: ConnIo>(conn: &mut Conn<Io>, stats: &ShardStats) -> FlushResult {
    while !conn.out.is_empty() {
        let mut bufs: [&[u8]; MAX_IOV] = [&[]; MAX_IOV];
        let cnt = gather_out(&conn.out, conn.out_off, &mut bufs);
        if cnt == 0 {
            // Only zero-length segments remain (e.g. an empty file's
            // body): discard them without a syscall.
            conn.out.clear();
            conn.out_off = 0;
            break;
        }
        match conn.io.writev(&bufs[..cnt]) {
            Ok(n) => {
                stats.writev_calls.fetch_add(1, Ordering::Relaxed);
                conn.progress += n as u64;
                advance_out(&mut conn.out, &mut conn.out_off, n);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return FlushResult::WouldBlock,
            Err(_) => return FlushResult::Error,
        }
    }
    // Header out; now the body, page cache → socket (or simulated
    // store → endpoint). On backpressure the state (offset/remaining)
    // goes back on the connection and the driver retries when the
    // transport is writable again.
    if let Some(mut sf) = conn.sendfile.take() {
        let mut budget = SENDFILE_VISIT_BUDGET;
        while sf.remaining > 0 {
            if budget == 0 {
                conn.sendfile = Some(sf);
                return FlushResult::Yielded;
            }
            match conn
                .io
                .sendfile(&sf.file, &mut sf.offset, sf.remaining.min(budget))
            {
                // The file shrank after fstat: the promised
                // Content-Length can no longer be honoured, so the
                // only correct HTTP/1.x signal is a dropped connection.
                Ok(0) => return FlushResult::Error,
                Ok(n) => {
                    stats.sendfile_calls.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_sendfile.fetch_add(n as u64, Ordering::Relaxed);
                    conn.progress += n as u64;
                    sf.remaining -= n as u64;
                    budget -= n as u64;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.sendfile = Some(sf);
                    return FlushResult::WouldBlock;
                }
                Err(_) => return FlushResult::Error,
            }
        }
    }
    FlushResult::Flushed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn bytes_of(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }

    /// Simulates a sink that accepts `k` bytes per call against the
    /// gather/advance pair, verifying the reassembled stream is exact
    /// no matter where partial writes land — including mid-iovec.
    fn drain_with_chunk_size(segments: &[&str], k: usize) -> Vec<u8> {
        let mut out: VecDeque<Bytes> = segments.iter().map(|s| bytes_of(s)).collect();
        let mut out_off = 0usize;
        let mut sink = Vec::new();
        let mut guard = 0;
        while !out.is_empty() {
            let mut bufs: [&[u8]; MAX_IOV] = [&[]; MAX_IOV];
            let cnt = gather_out(&out, out_off, &mut bufs);
            if cnt == 0 {
                out.clear();
                break;
            }
            let total: usize = bufs[..cnt].iter().map(|b| b.len()).sum();
            let n = k.min(total);
            let mut left = n;
            for b in &bufs[..cnt] {
                let take = left.min(b.len());
                sink.extend_from_slice(&b[..take]);
                left -= take;
                if left == 0 {
                    break;
                }
            }
            advance_out(&mut out, &mut out_off, n);
            guard += 1;
            assert!(guard < 10_000, "drain must terminate");
        }
        sink
    }

    #[test]
    fn partial_write_resumption_is_byte_exact_for_every_split() {
        let segments = [
            "HEADER-32-bytes-of-padding-data!",
            "body: hello world",
            "",
            "tail",
        ];
        let expect: Vec<u8> = segments.concat().into_bytes();
        // Every chunk size from 1 byte (worst case: every write lands
        // mid-iovec) to larger than the whole queue.
        for k in 1..expect.len() + 4 {
            let got = drain_with_chunk_size(&segments, k);
            assert_eq!(got, expect, "chunk size {k}");
        }
    }

    #[test]
    fn advance_out_discards_empty_segments() {
        let mut out: VecDeque<Bytes> = [bytes_of(""), bytes_of(""), bytes_of("x")]
            .into_iter()
            .collect();
        let mut off = 0;
        advance_out(&mut out, &mut off, 0);
        assert_eq!(out.len(), 1, "empty fronts must be popped");
        assert_eq!(&out[0][..], b"x");
        advance_out(&mut out, &mut off, 1);
        assert!(out.is_empty());
        assert_eq!(off, 0);
    }

    #[test]
    fn gather_out_skips_empties_and_respects_offset() {
        let out: VecDeque<Bytes> = [bytes_of("abcdef"), bytes_of(""), bytes_of("gh")]
            .into_iter()
            .collect();
        let mut bufs: [&[u8]; MAX_IOV] = [&[]; MAX_IOV];
        let cnt = gather_out(&out, 4, &mut bufs);
        assert_eq!(cnt, 2);
        assert_eq!(bufs[0], b"ef");
        assert_eq!(bufs[1], b"gh");
    }

    #[test]
    fn desired_interest_tracks_state_machine() {
        assert_eq!(desired_interest(&ConnState::Reading), Interest::READ);
        assert_eq!(desired_interest(&ConnState::Writing), Interest::WRITE);
        assert_eq!(desired_interest(&ConnState::Waiting), Interest::NONE);
    }

    /// A transport that never moves a byte — the deadline logic under
    /// test never touches it.
    struct InertIo;

    impl ConnIo for InertIo {
        type FileRef = ();
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::ErrorKind::WouldBlock.into())
        }
        fn writev(&mut self, _bufs: &[&[u8]]) -> io::Result<usize> {
            Err(io::ErrorKind::WouldBlock.into())
        }
        fn sendfile(&mut self, _f: &(), _off: &mut u64, _max: u64) -> io::Result<usize> {
            Err(io::ErrorKind::WouldBlock.into())
        }
    }

    fn proto_cfg() -> ProtoConfig {
        ProtoConfig {
            docroot: "/tmp".into(),
            idle_timeout: Some(Duration::from_secs(30)),
            header_read_timeout: Some(Duration::from_secs(15)),
            write_stall_timeout: Some(Duration::from_secs(30)),
            helper_wait_timeout: Some(Duration::from_secs(60)),
            cache_revalidate_ttl: Some(Duration::from_secs(2)),
            sendfile_threshold: 256 * 1024,
            metrics_endpoint: false,
            dynamic_prefix: None,
            dynamic_deadline: Some(Duration::from_secs(10)),
            access_log: false,
        }
    }

    #[test]
    fn sync_deadline_maps_states_to_classes() {
        let mut conn = Conn::new(InertIo);
        let cfg = proto_cfg();
        let mut wheel = TimerWheel::new(Duration::from_millis(10));
        let token = 42;
        let now = Instant::now();

        // Reading + empty buffer → idle class.
        sync_deadline(&mut conn, token, &cfg, &mut wheel, now);
        assert_eq!(conn.deadline, DeadlineKind::Idle);
        assert_eq!(wheel.pending(), 1);
        assert!(wheel.is_armed(token));

        // Request bytes buffered → header class (fresh arm).
        let _ = conn.parser.feed(b"GET /slow");
        sync_deadline(&mut conn, token, &cfg, &mut wheel, now);
        assert_eq!(conn.deadline, DeadlineKind::Header);

        // Helper owns the request → the helper-wait class, so a wedged
        // helper cannot pin the slot forever.
        conn.state = ConnState::Waiting;
        sync_deadline(&mut conn, token, &cfg, &mut wheel, now);
        assert_eq!(conn.deadline, DeadlineKind::HelperWait);
        assert_eq!(wheel.pending(), 1, "Waiting arms the helper-wait class");

        // A dynamic request in the same state rides the fifth class
        // instead — worker silence is bounded separately from disk.
        conn.dynamic = true;
        sync_deadline(&mut conn, token, &cfg, &mut wheel, now);
        assert_eq!(conn.deadline, DeadlineKind::DynamicWait);
        assert_eq!(wheel.pending(), 1, "Waiting+dynamic arms dynamic-wait");
        conn.dynamic = false;

        // Response in flight → write-stall class.
        conn.state = ConnState::Writing;
        sync_deadline(&mut conn, token, &cfg, &mut wheel, now);
        assert_eq!(conn.deadline, DeadlineKind::WriteStall);
        assert_eq!(wheel.pending(), 1);

        // The class honours its disable switch like the others.
        let no_hw = ProtoConfig {
            helper_wait_timeout: None,
            ..proto_cfg()
        };
        conn.state = ConnState::Waiting;
        sync_deadline(&mut conn, token, &no_hw, &mut wheel, now);
        assert_eq!(conn.deadline, DeadlineKind::None);
        assert_eq!(wheel.pending(), 0, "disabled helper-wait disarms");
        assert!(!wheel.is_armed(token));
    }

    #[test]
    fn sync_deadline_rearms_on_forward_progress_only() {
        let mut conn = Conn::new(InertIo);
        let cfg = proto_cfg();
        let mut wheel = TimerWheel::new(Duration::from_millis(10));
        let now = Instant::now();
        conn.state = ConnState::Writing;
        sync_deadline(&mut conn, 7, &cfg, &mut wheel, now);
        let armed_at = conn.deadline_progress;

        // No progress: the arm point must not move (a stalled peer
        // must not refresh its own deadline).
        sync_deadline(&mut conn, 7, &cfg, &mut wheel, now);
        assert_eq!(conn.deadline_progress, armed_at);

        // Forward progress: the arm point follows the odometer.
        conn.progress += 4096;
        sync_deadline(&mut conn, 7, &cfg, &mut wheel, now);
        assert_eq!(conn.deadline_progress, conn.progress);
        assert_eq!(wheel.pending(), 1, "re-arm replaces, never duplicates");
    }

    #[test]
    fn sync_deadline_honours_disabled_classes() {
        let mut conn = Conn::new(InertIo);
        let cfg = ProtoConfig {
            idle_timeout: None,
            header_read_timeout: None,
            write_stall_timeout: None,
            helper_wait_timeout: None,
            ..proto_cfg()
        };
        let mut wheel = TimerWheel::new(Duration::from_millis(10));
        let now = Instant::now();
        for state in [ConnState::Reading, ConnState::Writing, ConnState::Waiting] {
            conn.state = state;
            sync_deadline(&mut conn, 9, &cfg, &mut wheel, now);
            assert_eq!(conn.deadline, DeadlineKind::None);
        }
        assert_eq!(
            wheel.pending(),
            0,
            "every class disabled: wheel stays empty"
        );
    }
}
