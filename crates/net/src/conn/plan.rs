//! The **response plane**: one pure planner that turns (resource,
//! request conditions) into a [`ResponsePlan`] — status, header
//! segments, and a [`BodySource`] byte window — for *every* response
//! either tier produces. Conditional precedence (`If-None-Match` over
//! `If-Modified-Since`), `If-Range` gating, single-range resolution to
//! `206`/`416`, and variant headers are decided here and nowhere else;
//! drivers only ever transmit the window they are handed.
//!
//! The tier split itself (in-memory `writev` vs. `sendfile` window) is
//! decided at load time by [`super::HelperJob::inline_max`] and merely
//! *reflected* here: a cached resource yields [`BodySource::Bytes`]
//! windows, a file resource yields [`BodySource::File`] windows, and
//! range arithmetic is identical for both.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;
use flash_http::request::{IfRange, RangeSpec, Request};
use flash_http::response::{error_body, ContentRange, HeaderExtras, ResponseHeader, Status};
use flash_http::{etag_matches, mime};

use crate::cache::{not_modified_since, Entry, Variant};
use crate::stats::Tier;

use super::machine::{Conn, SendFileState};
use super::{ConnIo, ShardStats};

/// The conditional/negotiation slice of one request, snapshotted onto
/// the connection at parse time — the response is often rendered by a
/// helper completion long after the `Request` itself is gone.
#[derive(Debug, Clone, Default)]
pub struct RequestCond {
    /// `If-Modified-Since`, parsed to unix seconds (an unparseable
    /// date makes the request unconditional).
    pub if_modified_since: Option<i64>,
    /// `If-None-Match`, verbatim; takes precedence over
    /// `If-Modified-Since` when present (RFC 9110 §13.1.3).
    pub if_none_match: Option<String>,
    /// A well-formed single-range `Range: bytes=..` header (malformed
    /// or multi-range headers were dropped at parse time: ignoring the
    /// header — a full `200` — is the compliant degradation).
    pub range: Option<RangeSpec>,
    /// `If-Range`: gates `range` on a strong validator match.
    pub if_range: Option<IfRange>,
    /// Whether `Accept-Encoding` admits gzip.
    pub accept_gzip: bool,
}

impl RequestCond {
    /// Snapshots the conditional fields of a parsed request.
    pub fn from_request(req: &Request) -> RequestCond {
        RequestCond {
            if_modified_since: req
                .if_modified_since
                .as_deref()
                .and_then(flash_http::date::parse_imf),
            if_none_match: req.if_none_match.clone(),
            range: req.range,
            if_range: req.if_range.clone(),
            accept_gzip: req.accept_gzip,
        }
    }
}

/// The representation about to be served, unified across the two
/// storage tiers so the planner never branches on "cached or fd".
pub enum Resource<'a, F> {
    /// A content-cache entry (body resident, headers pre-rendered).
    Cached(&'a Arc<Entry>),
    /// An open file handle bound for the `sendfile` window seam, with
    /// the plain-200 header pair pre-rendered once per completion.
    File {
        file: &'a F,
        len: u64,
        mtime: Option<i64>,
        variant: Variant,
        has_gzip: bool,
        etag: &'a str,
        header_keep: &'a Bytes,
        header_close: &'a Bytes,
    },
}

impl<'a, F: Clone> Resource<'a, F> {
    /// Complete representation length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Resource::Cached(e) => e.body.len() as u64,
            Resource::File { len, .. } => *len,
        }
    }

    /// Whether the representation is empty (`len() == 0`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn mtime(&self) -> Option<i64> {
        match self {
            Resource::Cached(e) => e.mtime,
            Resource::File { mtime, .. } => *mtime,
        }
    }

    fn etag(&self) -> &str {
        match self {
            Resource::Cached(e) => &e.etag,
            Resource::File { etag, .. } => etag,
        }
    }

    fn variant(&self) -> Variant {
        match self {
            Resource::Cached(e) => e.variant,
            Resource::File { variant, .. } => *variant,
        }
    }

    fn has_gzip(&self) -> bool {
        match self {
            Resource::Cached(e) => e.has_gzip,
            Resource::File { has_gzip, .. } => *has_gzip,
        }
    }

    /// The byte window `[offset, offset+len)` of this representation as
    /// a transmittable body source.
    fn window(&self, offset: u64, len: u64) -> BodySource<F> {
        match self {
            Resource::Cached(e) => {
                BodySource::Bytes(e.body.slice(offset as usize..(offset + len) as usize))
            }
            Resource::File { file, .. } => BodySource::File {
                file: (*file).clone(),
                offset,
                len,
            },
        }
    }

    /// Queues the pre-rendered plain-200 header (current `Date`).
    fn push_plain_header(&self, keep: bool, out: &mut Vec<Bytes>) {
        match self {
            Resource::Cached(e) => e.push_header(keep, out),
            Resource::File {
                header_keep,
                header_close,
                ..
            } => out.push(if keep {
                (*header_keep).clone()
            } else {
                (*header_close).clone()
            }),
        }
    }
}

/// A byte window over some representation — the only body shape a
/// driver ever transmits. Which storage it windows decides the
/// transmit mechanism, not the semantics.
pub enum BodySource<F> {
    /// In-memory bytes, queued on the gathered-`writev` path.
    Bytes(Bytes),
    /// A file window `[offset, offset+len)`, streamed through the
    /// [`ConnIo::sendfile`] seam with partial-send resumption and the
    /// fairness budget.
    File { file: F, offset: u64, len: u64 },
    /// No body (`304`, or a zero-length window).
    Empty,
    /// An open chunked stream: the body's length is unknown when the
    /// header goes out — an application worker produces it
    /// incrementally and the shard appends each chunk to the output
    /// queue as its [`super::DynEvent`] arrives. Queueing this source
    /// opens the connection's stream state; the terminal frame (or an
    /// error path) closes it. HEAD never opens a stream — the header
    /// is kept and the source dropped, like every other body.
    Stream,
}

/// One fully-decided response: status for the access log, header
/// segments to queue verbatim, and the body window. HEAD is applied at
/// queue time (header kept — with the true `Content-Length` /
/// `Content-Range` — body dropped).
pub struct ResponsePlan<F> {
    pub status: Status,
    /// Access-log tier (`NotModified` for 304, `Error` for 416, the
    /// caller's serving tier otherwise).
    pub tier: Tier,
    /// Header segments, queued ahead of the body (plain-200 cached
    /// headers arrive as zero-copy slices around a fresh date).
    pub header: Vec<Bytes>,
    pub body: BodySource<F>,
}

/// Decides the response for `resource` under `cond` — the single
/// authority for conditional precedence, `If-Range` gating, and range
/// resolution on **both** tiers:
///
/// 1. `If-None-Match` first (weak comparison, `*` allowed); when
///    present it *replaces* `If-Modified-Since` entirely. A match is a
///    `304` carrying the representation's `ETag`.
/// 2. Otherwise `If-Modified-Since` (unix-seconds comparison) may
///    yield the `304`.
/// 3. A `Range` header applies only when `If-Range` is absent or its
///    strong validator matches exactly; a satisfiable single range is
///    a `206` with `Content-Range: bytes start-end/total` and the
///    matching byte window; an unsatisfiable one is a `416` with
///    `Content-Range: bytes */total` (keep-alive preserved — the
///    connection is fine, the range was not).
/// 4. Everything else is the plain `200` with the pre-rendered header.
///
/// `path` is the resource's URL path (content-type only); `body_tier`
/// is the access-log tier a body-bearing response reports.
pub fn plan_response<F: Clone>(
    resource: &Resource<'_, F>,
    path: &str,
    cond: &RequestCond,
    keep_alive: bool,
    body_tier: Tier,
    stats: &ShardStats,
) -> ResponsePlan<F> {
    let etag = resource.etag();
    let mtime = resource.mtime();
    let total = resource.len();
    // Conditional evaluation: If-None-Match wins outright when present.
    let not_modified = match cond.if_none_match.as_deref() {
        Some(inm) => etag_matches(inm, etag),
        None => not_modified_since(mtime, cond.if_modified_since),
    };
    if not_modified {
        stats.not_modified.fetch_add(1, Ordering::Relaxed);
        let hdr = ResponseHeader::not_modified_full(keep_alive, mtime, Some(etag));
        return ResponsePlan {
            status: Status::NotModified,
            tier: Tier::NotModified,
            header: vec![Bytes::from(hdr.as_bytes().to_vec())],
            body: BodySource::Empty,
        };
    }
    // Range applies only when If-Range is absent or matches strongly.
    let range = cond.range.filter(|_| {
        cond.if_range
            .as_ref()
            .is_none_or(|ir| ir.matches(etag, mtime))
    });
    if let Some(spec) = range {
        stats.range_requests.fetch_add(1, Ordering::Relaxed);
        let extras_for = |content_range| HeaderExtras {
            etag: Some(etag),
            content_range: Some(content_range),
            gzip: resource.variant().is_gzip(),
            vary_accept_encoding: resource.variant().is_gzip() || resource.has_gzip(),
        };
        match spec.resolve(total) {
            Some((start, end)) => {
                let len = end - start + 1;
                let hdr = ResponseHeader::build_full(
                    Status::PartialContent,
                    Some((mime::content_type(path), len)),
                    keep_alive,
                    true,
                    mtime,
                    extras_for(ContentRange::Span { start, end, total }),
                );
                return ResponsePlan {
                    status: Status::PartialContent,
                    tier: body_tier,
                    header: vec![Bytes::from(hdr.as_bytes().to_vec())],
                    body: resource.window(start, len),
                };
            }
            None => {
                stats.range_unsatisfiable.fetch_add(1, Ordering::Relaxed);
                let body = Bytes::from(error_body(Status::RangeNotSatisfiable));
                let hdr = ResponseHeader::build_full(
                    Status::RangeNotSatisfiable,
                    Some(("text/html", body.len() as u64)),
                    keep_alive,
                    true,
                    None,
                    extras_for(ContentRange::Unsatisfiable { total }),
                );
                return ResponsePlan {
                    status: Status::RangeNotSatisfiable,
                    tier: Tier::Error,
                    header: vec![Bytes::from(hdr.as_bytes().to_vec())],
                    body: BodySource::Bytes(body),
                };
            }
        }
    }
    // Plain 200: the pre-rendered header pair, full-body window.
    let mut header = Vec::with_capacity(3);
    resource.push_plain_header(keep_alive, &mut header);
    ResponsePlan {
        status: Status::Ok,
        tier: body_tier,
        header,
        body: resource.window(0, total),
    }
}

/// Applies a plan to a connection: headers onto the `writev` queue,
/// the body window onto whichever transmit path it names — unless the
/// request was HEAD, which keeps the headers (true `Content-Length` /
/// `Content-Range` included) and drops the body.
pub fn queue_plan<Io: ConnIo>(conn: &mut Conn<Io>, plan: ResponsePlan<Io::FileRef>) {
    conn.out.extend(plan.header);
    if conn.head_only {
        return;
    }
    match plan.body {
        BodySource::Bytes(b) => {
            if !b.is_empty() {
                conn.out.push_back(b);
            }
        }
        BodySource::File { file, offset, len } => {
            if len > 0 {
                conn.sendfile = Some(SendFileState {
                    file,
                    offset,
                    remaining: len,
                });
            }
        }
        BodySource::Empty => {}
        BodySource::Stream => {
            conn.stream_open = true;
        }
    }
}

/// The dynamic tier's response plan: a chunked `200` whose body is an
/// open [`BodySource::Stream`]. Dynamic responses bypass the
/// conditional plane entirely — no `ETag`, `Last-Modified`, `304`, or
/// `Range` handling applies ([`plan_response`] is never consulted);
/// the worker's output is generated per request and has no validators.
pub fn plan_dynamic<F>(keep_alive: bool) -> ResponsePlan<F> {
    let hdr = ResponseHeader::build_chunked(Status::Ok, "text/plain", keep_alive, true);
    ResponsePlan {
        status: Status::Ok,
        tier: Tier::Dynamic,
        header: vec![Bytes::from(hdr.as_bytes().to_vec())],
        body: BodySource::Stream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::variant_key;

    fn stats() -> ShardStats {
        ShardStats::default()
    }

    fn entry() -> Arc<Entry> {
        Entry::build_with_mtime("/a.html", b"0123456789".to_vec(), Some(1_000_000))
    }

    /// A resource with no backing file — `F = ()` exercises the cached
    /// arm only.
    fn plan_cached(cond: &RequestCond, e: &Arc<Entry>, s: &ShardStats) -> ResponsePlan<()> {
        let res: Resource<'_, ()> = Resource::Cached(e);
        plan_response(&res, "/a.html", cond, true, Tier::Hit, s)
    }

    #[test]
    fn inm_match_beats_newer_ims() {
        let e = entry();
        let s = stats();
        // IMS alone would say "modified" (validator older than mtime),
        // but a matching If-None-Match must win with a 304.
        let cond = RequestCond {
            if_modified_since: Some(1),
            if_none_match: Some(e.etag.clone()),
            ..Default::default()
        };
        let plan = plan_cached(&cond, &e, &s);
        assert!(matches!(plan.status, Status::NotModified));
        assert_eq!(s.not_modified.load(Ordering::Relaxed), 1);
        // And a non-matching INM suppresses a would-be IMS 304.
        let cond = RequestCond {
            if_modified_since: Some(2_000_000),
            if_none_match: Some("\"other\"".into()),
            ..Default::default()
        };
        let plan = plan_cached(&cond, &e, &s);
        assert!(matches!(plan.status, Status::Ok));
    }

    #[test]
    fn satisfiable_range_windows_the_body() {
        let e = entry();
        let s = stats();
        let cond = RequestCond {
            range: RangeSpec::parse("bytes=2-5"),
            ..Default::default()
        };
        let plan = plan_cached(&cond, &e, &s);
        assert!(matches!(plan.status, Status::PartialContent));
        let hdr = String::from_utf8(plan.header.iter().flat_map(|b| b.to_vec()).collect()).unwrap();
        assert!(hdr.contains("Content-Range: bytes 2-5/10\r\n"), "{hdr}");
        assert!(hdr.contains("Content-Length: 4\r\n"), "{hdr}");
        match plan.body {
            BodySource::Bytes(b) => assert_eq!(&b[..], b"2345"),
            _ => panic!("cached resource must window in memory"),
        }
        assert_eq!(s.range_requests.load(Ordering::Relaxed), 1);
        assert_eq!(s.range_unsatisfiable.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unsatisfiable_range_is_416_with_star_form_and_keepalive() {
        let e = entry();
        let s = stats();
        let cond = RequestCond {
            range: RangeSpec::parse("bytes=99-"),
            ..Default::default()
        };
        let plan = plan_cached(&cond, &e, &s);
        assert!(matches!(plan.status, Status::RangeNotSatisfiable));
        let hdr = String::from_utf8(plan.header.iter().flat_map(|b| b.to_vec()).collect()).unwrap();
        assert!(hdr.contains("Content-Range: bytes */10\r\n"), "{hdr}");
        assert!(
            hdr.contains("Connection: keep-alive\r\n"),
            "416 must not cost the connection: {hdr}"
        );
        assert_eq!(s.range_unsatisfiable.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn if_range_mismatch_degrades_to_full_200() {
        let e = entry();
        let s = stats();
        let cond = RequestCond {
            range: RangeSpec::parse("bytes=2-5"),
            if_range: Some(IfRange::Tag("\"stale\"".into())),
            ..Default::default()
        };
        let plan = plan_cached(&cond, &e, &s);
        assert!(matches!(plan.status, Status::Ok));
        match plan.body {
            BodySource::Bytes(b) => assert_eq!(b.len(), 10, "full body, not the window"),
            _ => panic!("expected in-memory body"),
        }
        assert_eq!(
            s.range_requests.load(Ordering::Relaxed),
            0,
            "a gated-out range is not a range request"
        );
        // A matching If-Range lets the window through.
        let cond = RequestCond {
            range: RangeSpec::parse("bytes=2-5"),
            if_range: Some(IfRange::Tag(e.etag.clone())),
            ..Default::default()
        };
        let plan = plan_cached(&cond, &e, &s);
        assert!(matches!(plan.status, Status::PartialContent));
    }

    #[test]
    fn file_resource_windows_through_sendfile_seam() {
        let (hk, hc, etag) =
            crate::cache::header_pair("/big.bin", 100_000, Some(7), Variant::Identity, false);
        let file = 42u32;
        let res: Resource<'_, u32> = Resource::File {
            file: &file,
            len: 100_000,
            mtime: Some(7),
            variant: Variant::Identity,
            has_gzip: false,
            etag: &etag,
            header_keep: &hk,
            header_close: &hc,
        };
        let s = stats();
        let cond = RequestCond {
            range: RangeSpec::parse("bytes=-500"),
            ..Default::default()
        };
        let plan = plan_response(&res, "/big.bin", &cond, true, Tier::Sendfile, &s);
        assert!(matches!(plan.status, Status::PartialContent));
        match plan.body {
            BodySource::File { file, offset, len } => {
                assert_eq!(file, 42);
                assert_eq!(offset, 99_500);
                assert_eq!(len, 500);
            }
            _ => panic!("file resource must window through sendfile"),
        }
    }

    #[test]
    fn dynamic_plan_is_chunked_and_unconditional() {
        let plan: ResponsePlan<()> = plan_dynamic(true);
        assert!(matches!(plan.status, Status::Ok));
        assert!(matches!(plan.tier, Tier::Dynamic));
        assert!(matches!(plan.body, BodySource::Stream));
        let hdr = String::from_utf8(plan.header.iter().flat_map(|b| b.to_vec()).collect()).unwrap();
        assert!(hdr.contains("Transfer-Encoding: chunked\r\n"), "{hdr}");
        assert!(!hdr.contains("Content-Length"), "{hdr}");
        assert!(!hdr.contains("ETag"), "dynamic bypasses validators: {hdr}");
        assert!(!hdr.contains("Last-Modified"), "{hdr}");
    }

    #[test]
    fn variant_keys_round_trip() {
        let k = variant_key("/x", Variant::Gzip);
        assert_eq!(crate::cache::split_variant_key(&k), ("/x", Variant::Gzip));
    }
}
