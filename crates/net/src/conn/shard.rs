//! Per-shard protocol state and transitions: the content cache, miss
//! coalescing with per-job cancellation, reload epochs, drain mode,
//! and the request → helper → response pipeline — generic over
//! [`ConnIo`], free of syscalls and clocks (every instant is a
//! parameter), so the real event loop and the deterministic sim drive
//! the identical code.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use flash_http::request::{ParseStatus, Request};
use flash_http::response::{error_body, ResponseHeader, Status};
use flash_http::Method;

use crate::cache::{ContentCache, Entry, Lookup};
use crate::stats::{self, AccessRecord, PendingLog, Tier};
use crate::timer::TimerWheel;

use super::machine::{flush_out, Conn, ConnState, DeadlineKind, Drive, FlushResult, SendFileState};
use super::{
    ConnIo, Done, DoneData, FileData, HelperJob, HelperPort, JobKind, ProtoConfig, ShardStats,
};

/// The shard's record of one dispatched, not-yet-completed job: the
/// token a completion must echo to be accepted, and the cancellation
/// flag raised if every waiter is reaped first.
pub struct PendingJob {
    pub token: u64,
    pub cancel: Arc<AtomicBool>,
}

/// Everything one shard's protocol layer owns: its cache, its
/// miss-coalescing and job-cancellation state, its statistics, and its
/// reload/drain posture. Deliberately **not** generic over the
/// transport — per-connection transport state lives in each
/// [`Conn`]; large-body handles pass through transiently.
pub struct ShardCore {
    pub shard: usize,
    pub cache: ContentCache,
    /// This shard's slice of the content-cache budget, kept so a
    /// SIGHUP reload can build a replacement cache of the same size
    /// (the cache itself has no capacity getter).
    pub cache_capacity: u64,
    /// Connections parked per URL path awaiting a helper completion.
    pub waiters: HashMap<String, Vec<usize>>,
    /// In-flight jobs per URL path. Invariant (checkable via
    /// [`ShardCore::check_invariants`]): a path has a pending job iff
    /// it has a non-empty waiter list.
    pub pending_jobs: HashMap<String, PendingJob>,
    /// Monotonic per-dispatch token source (see [`HelperJob::token`]).
    next_job_token: u64,
    pub cfg: ProtoConfig,
    pub stats: Arc<ShardStats>,
    /// Whether this shard has entered drain: accepting has stopped,
    /// keep-alive connections close after their final response.
    pub draining: bool,
    /// Reload epoch, bumped on every SIGHUP docroot swap. Helper jobs
    /// carry the epoch they were dispatched under; a completion from a
    /// previous epoch still serves its waiters (their request predates
    /// the reload) but is never inserted into the post-reload cache.
    pub epoch: u64,
    /// Every shard's stats, for rendering the `/.flash/` endpoints
    /// server-wide (set by the driver; when empty — the sim, tests —
    /// the endpoint renders this shard's stats alone).
    pub export: Vec<Arc<ShardStats>>,
    /// Access records staged by completed responses (only when
    /// [`ProtoConfig::access_log`] is on); the driver drains this
    /// every loop iteration and writes the lines, stamping wall time
    /// itself so the core stays clock-free.
    pub access_log: Vec<AccessRecord>,
}

impl ShardCore {
    /// A fresh shard core with a `cache_bytes`-bounded content cache.
    pub fn new(shard: usize, cache_bytes: u64, cfg: ProtoConfig, stats: Arc<ShardStats>) -> Self {
        ShardCore {
            shard,
            cache: ContentCache::new(cache_bytes),
            cache_capacity: cache_bytes,
            waiters: HashMap::new(),
            pending_jobs: HashMap::new(),
            next_job_token: 1,
            cfg,
            stats,
            draining: false,
            epoch: 0,
            export: Vec::new(),
            access_log: Vec::new(),
        }
    }

    /// Applies a docroot reload: the root swaps (when given), the
    /// content cache is replaced wholesale (same budget — pre-reload
    /// bytes must not be served under the new root), and the epoch
    /// advances so a completion from a job dispatched before the swap
    /// serves its parked waiters but is never inserted into the fresh
    /// cache. In-flight connections are untouched.
    pub fn apply_reload(&mut self, docroot: Option<PathBuf>, generation: u64) {
        if let Some(root) = docroot {
            self.cfg.docroot = root;
        }
        self.cache = ContentCache::new(self.cache_capacity);
        self.stats.cache_used_bytes.store(0, Ordering::Relaxed);
        self.epoch = generation;
    }

    /// Flips the shard into drain mode (bookkeeping only; the driver
    /// quiesces its listener and sweeps idle connections itself).
    pub fn begin_drain(&mut self) {
        self.draining = true;
        self.stats.draining.store(1, Ordering::Relaxed);
    }

    /// Records a closing connection's lifetime. The core calls it on
    /// its own close paths; drivers call it wherever *they* retire a
    /// slot (deadline expiry, drain sweeps, registration failures).
    pub fn note_close<Io: ConnIo>(&self, conn: &Conn<Io>, now: Instant) {
        if let Some(t0) = conn.opened_at {
            self.stats.hist_lifetime.record(stats::nanos_since(t0, now));
        }
    }

    /// Per-response accounting at the moment the last byte is queued
    /// out: the `requests` counter (or `metrics_requests` for
    /// `/.flash/` responses), the request-latency histogram, and the
    /// staged access-log record.
    fn finish_response<Io: ConnIo>(&mut self, conn: &mut Conn<Io>, now: Instant) {
        conn.ttfb_pending = false;
        if conn.metrics_response {
            conn.metrics_response = false;
            self.stats.metrics_requests.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let latency_nanos = conn.req_start.take().map(|t0| stats::nanos_since(t0, now));
        if let Some(ns) = latency_nanos {
            self.stats.hist_request.record(ns);
        }
        if let Some(log) = conn.pending_log.take() {
            self.access_log.push(AccessRecord {
                host: log.host,
                method: log.method,
                path: log.path,
                status: log.status,
                bytes: conn.progress - conn.progress_at_req,
                latency_us: latency_nanos.unwrap_or(0) / 1_000,
                tier: log.tier,
            });
        }
    }

    /// Serves the in-band observability endpoints: the registry
    /// rendered as Prometheus text (`/.flash/metrics`) or JSON
    /// (`/.flash/stats`), aggregated over every shard the driver
    /// exported. Rides the normal respond path — no sidecar thread —
    /// and counts under `metrics_requests`, never `requests`.
    fn serve_metrics<Io: ConnIo>(&mut self, conn: &mut Conn<Io>, path: &str) {
        conn.metrics_response = true;
        let shards: &[Arc<ShardStats>] = if self.export.is_empty() {
            std::slice::from_ref(&self.stats)
        } else {
            &self.export
        };
        let (ctype, body) = match path {
            "/.flash/metrics" => (
                "text/plain; version=0.0.4",
                stats::render_prometheus(shards),
            ),
            "/.flash/stats" => ("application/json", stats::render_json(shards)),
            _ => {
                let body = Bytes::from(error_body(Status::NotFound));
                queue_error(conn, Status::NotFound, body);
                conn.state = ConnState::Writing;
                return;
            }
        };
        let body = Bytes::from(body.into_bytes());
        let hdr =
            ResponseHeader::build(Status::Ok, ctype, body.len() as u64, conn.keep_alive, true);
        conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
        if !conn.head_only {
            conn.out.push_back(body);
        }
        conn.state = ConnState::Writing;
    }

    /// Runs one connection's state machine as far as it will go
    /// without blocking — reads drained to `WouldBlock`, writes until
    /// backpressure — and reports why it stopped. `now` is the
    /// driver's clock (cache-TTL decisions happen here).
    pub fn drive_conn<Io: ConnIo>(
        &mut self,
        idx: usize,
        conns: &mut [Option<Conn<Io>>],
        port: &mut dyn HelperPort,
        now: Instant,
    ) -> Drive {
        loop {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                return Drive::Closed;
            };
            match conn.state {
                ConnState::Reading => {
                    // Serve any request already buffered (keep-alive
                    // pipelining) before asking the transport for more.
                    match conn.parser.feed(&[]) {
                        ParseStatus::Done(req) => {
                            self.handle_request(idx, conn, req, port, now);
                            if matches!(conn.state, ConnState::Waiting) {
                                return Drive::Blocked;
                            }
                            continue;
                        }
                        ParseStatus::Error(_) => {
                            let body = Bytes::from(error_body(Status::BadRequest));
                            queue_error(conn, Status::BadRequest, body);
                            conn.state = ConnState::Writing;
                            continue;
                        }
                        ParseStatus::Incomplete => {}
                    }
                    let mut buf = [0u8; 4096];
                    match conn.io.read(&mut buf) {
                        Ok(0) => {
                            self.note_close(conn, now);
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                        Ok(n) => match conn.parser.feed(&buf[..n]) {
                            ParseStatus::Done(req) => {
                                self.handle_request(idx, conn, req, port, now);
                                if matches!(conn.state, ConnState::Waiting) {
                                    return Drive::Blocked;
                                }
                            }
                            ParseStatus::Incomplete => {}
                            ParseStatus::Error(_) => {
                                let body = Bytes::from(error_body(Status::BadRequest));
                                queue_error(conn, Status::BadRequest, body);
                                conn.state = ConnState::Writing;
                            }
                        },
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return Drive::Blocked
                        }
                        Err(_) => {
                            self.note_close(conn, now);
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                    }
                }
                ConnState::Writing => {
                    let progress_before = conn.progress;
                    let flushed = flush_out(conn, &self.stats);
                    // First response byte accepted by the transport
                    // since the request parsed: that's TTFB, whatever
                    // the flush outcome.
                    if conn.ttfb_pending && conn.progress > progress_before {
                        conn.ttfb_pending = false;
                        if let Some(t0) = conn.req_start {
                            self.stats.hist_ttfb.record(stats::nanos_since(t0, now));
                        }
                    }
                    match flushed {
                        FlushResult::Flushed => {
                            self.finish_response(conn, now);
                            // Under drain a keep-alive connection closes
                            // after its final response — unless pipelined
                            // request bytes are already buffered, which are
                            // honoured before the close (the loop continues
                            // Reading and serves them without touching the
                            // transport).
                            if conn.keep_alive && !(self.draining && conn.parser.buffered() == 0) {
                                conn.state = ConnState::Reading;
                            } else {
                                if self.draining {
                                    self.stats.drained_conns.fetch_add(1, Ordering::Relaxed);
                                }
                                self.note_close(conn, now);
                                conns[idx] = None;
                                return Drive::Closed;
                            }
                        }
                        FlushResult::WouldBlock => return Drive::Blocked,
                        FlushResult::Yielded => return Drive::Yielded,
                        FlushResult::Error => {
                            self.note_close(conn, now);
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                    }
                }
                ConnState::Waiting => return Drive::Blocked,
            }
        }
    }

    fn handle_request<Io: ConnIo>(
        &mut self,
        idx: usize,
        conn: &mut Conn<Io>,
        req: Request,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        conn.keep_alive = req.keep_alive();
        conn.head_only = req.method == Method::Head;
        // Parsed once here; an unparseable date simply makes the
        // request unconditional. Carried on the connection because the
        // response may be rendered by a helper completion after `req`
        // is dropped.
        conn.if_modified_since = req
            .if_modified_since
            .as_deref()
            .and_then(flash_http::date::parse_imf);
        // The observability endpoints answer before any workload
        // accounting: no `req_start`, no access-log record, counted
        // under `metrics_requests` — scraping never skews the numbers
        // it reports.
        if self.cfg.metrics_endpoint && req.path.starts_with("/.flash/") {
            self.serve_metrics(conn, &req.path);
            return;
        }
        conn.req_start = Some(now);
        conn.ttfb_pending = true;
        conn.progress_at_req = conn.progress;
        if self.cfg.access_log {
            conn.pending_log = Some(PendingLog {
                host: req.host.clone().unwrap_or_default(),
                method: match req.method {
                    Method::Get => "GET",
                    Method::Head => "HEAD",
                    Method::Post => "POST",
                },
                path: req.path.clone(),
                status: 0,
                tier: Tier::Error,
            });
        }
        if req.method == Method::Post {
            let body = Bytes::from(error_body(Status::NotImplemented));
            queue_error(conn, Status::NotImplemented, body);
            set_log(conn, Status::NotImplemented.code(), Tier::Error);
            conn.state = ConnState::Writing;
            return;
        }
        let mut path = req.path.clone();
        if path.ends_with('/') {
            path.push_str("index.html");
        }
        let kind = match self
            .cache
            .lookup_at(&path, self.cfg.cache_revalidate_ttl, now)
        {
            Lookup::Hit(entry) => {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                if entry.not_modified_since(conn.if_modified_since) {
                    queue_not_modified(conn, entry.mtime, &self.stats);
                    set_log(conn, Status::NotModified.code(), Tier::NotModified);
                } else {
                    queue_entry(conn, &entry);
                    set_log(conn, Status::Ok.code(), Tier::Hit);
                }
                conn.state = ConnState::Writing;
                return;
            }
            // Resident but past the revalidation TTL: the bytes cannot
            // be trusted until a helper re-stats the file — a cheap
            // open+fstat, no read — so the connection parks exactly
            // like a miss and is served by the completion (from memory
            // if the stat matches, from a reload if not).
            Lookup::Stale(_) => JobKind::Revalidate,
            // Miss: hand the disk work to a helper.
            Lookup::Miss => JobKind::Load,
        };
        // Coalesce concurrent misses (and revalidations) per path. The
        // request parser has already normalized away any `..`, so
        // joining the relative remainder cannot escape the docroot.
        self.waiters.entry(path.clone()).or_default().push(idx);
        self.dispatch_job(path, kind, port);
        conn.wait_start = Some(now);
        conn.state = ConnState::Waiting;
    }

    /// Dispatches one job per path: coalesced behind the pending map,
    /// tokened so only this dispatch's completion is accepted, and
    /// carrying a fresh cancellation flag.
    fn dispatch_job(&mut self, path: String, kind: JobKind, port: &mut dyn HelperPort) {
        if self.pending_jobs.contains_key(&path) {
            return;
        }
        let token = self.next_job_token;
        self.next_job_token += 1;
        let cancel = Arc::new(AtomicBool::new(false));
        self.pending_jobs.insert(
            path.clone(),
            PendingJob {
                token,
                cancel: Arc::clone(&cancel),
            },
        );
        self.stats.helper_jobs.fetch_add(1, Ordering::Relaxed);
        let fs_path = self.cfg.docroot.join(path.trim_start_matches('/'));
        port.submit(HelperJob {
            path,
            fs_path,
            kind,
            epoch: self.epoch,
            token,
            cancel,
        });
    }

    /// Removes a dropped connection's index from every waiter list —
    /// so a helper completion can never be delivered to a recycled
    /// slot — and **cancels the job** of any path whose waiter list
    /// emptied: the pending entry is dropped (a completion that
    /// already ran dies on token mismatch in [`Self::complete_job`])
    /// and the cancel flag is raised (an executor that has not started
    /// yet skips the job entirely).
    pub fn purge_waiter(&mut self, idx: usize) {
        let mut orphaned: Vec<String> = Vec::new();
        self.waiters.retain(|path, list| {
            list.retain(|&w| w != idx);
            if list.is_empty() {
                orphaned.push(path.clone());
                false
            } else {
                true
            }
        });
        for path in orphaned {
            if let Some(job) = self.pending_jobs.remove(&path) {
                job.cancel.store(true, Ordering::Release);
                self.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Renders a helper completion into every waiter's output queue,
    /// flipping them to `Writing` and appending their indices to
    /// `completed` for the driver to drive. A completion whose token
    /// does not match the path's pending dispatch — the job was
    /// cancelled after a waiter reap, or superseded — is dropped
    /// wholesale: no cache insert, no waiter wake.
    pub fn complete_job<Io: ConnIo>(
        &mut self,
        done: Done<Io::FileRef>,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        match self.pending_jobs.get(&done.path) {
            Some(p) if p.token == done.token => {
                self.pending_jobs.remove(&done.path);
            }
            _ => return,
        }
        let result = match done.data {
            DoneData::Stat(stat) => {
                return self.complete_revalidation(done.path, stat, conns, completed, port, now);
            }
            DoneData::Loaded(result) => result,
        };
        let completion = match result {
            Ok(FileData::Bytes { body, mtime }) => {
                let entry = Entry::build_with_mtime(&done.path, body, mtime);
                // Oversized-for-this-cache entries are refused by the
                // admission check; the waiters below are still served
                // from the entry directly. A completion from before a
                // SIGHUP reload (stale epoch) also serves its waiters —
                // their requests predate the reload — but is NOT
                // inserted: pre-reload bytes must not poison the
                // post-reload cache.
                if done.epoch == self.epoch {
                    self.cache
                        .insert_at(done.path.clone(), Arc::clone(&entry), now);
                    self.stats
                        .cache_used_bytes
                        .store(self.cache.used_bytes(), Ordering::Relaxed);
                }
                Completion::Small(entry)
            }
            Ok(FileData::Fd { file, len, mtime }) => {
                let (header_keep, header_close) = crate::cache::header_pair(&done.path, len, mtime);
                Completion::Large {
                    file,
                    len,
                    mtime,
                    header_keep,
                    header_close,
                }
            }
            Err(e) => {
                let status = match e.kind() {
                    io::ErrorKind::NotFound => Status::NotFound,
                    io::ErrorKind::PermissionDenied => Status::Forbidden,
                    _ => Status::InternalError,
                };
                Completion::Fail(status, Bytes::from(error_body(status)))
            }
        };
        self.deliver_completion(&completion, &done.path, conns, completed, Tier::Miss, now);
    }

    /// Handles a revalidation re-stat completion: if the cached entry
    /// still matches the file's (length, mtime), its TTL clock
    /// restarts and the waiters are served straight from memory;
    /// otherwise the stale entry is evicted and a full load is
    /// requeued — the waiters stay parked and the `Load` completion
    /// serves them the fresh bytes (or the error the reload produces).
    fn complete_revalidation<Io: ConnIo>(
        &mut self,
        path: String,
        stat: io::Result<(u64, Option<i64>)>,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        if let (Some(entry), Ok((len, mtime))) = (self.cache.peek(&path), &stat) {
            if entry.mtime == *mtime && entry.body.len() as u64 == *len {
                self.cache.refresh_at(&path, now);
                self.stats.revalidations.fetch_add(1, Ordering::Relaxed);
                self.deliver_completion(
                    &Completion::Small(entry),
                    &path,
                    conns,
                    completed,
                    Tier::Hit,
                    now,
                );
                return;
            }
        }
        // Changed, vanished, or evicted in the meantime: the resident
        // bytes can no longer be trusted.
        if self.cache.invalidate(&path) {
            self.stats.stale_evicted.fetch_add(1, Ordering::Relaxed);
            self.stats
                .cache_used_bytes
                .store(self.cache.used_bytes(), Ordering::Relaxed);
        }
        self.dispatch_job(path, JobKind::Load, port);
    }

    /// Renders a completion into every waiter's output queue, flipping
    /// them to `Writing` and appending their indices to `completed`
    /// for the driver to drive. `served_tier` is the access-log tier a
    /// body-bearing small response reports (miss for a fresh load, hit
    /// for a confirmed revalidation); `now` closes out each waiter's
    /// helper-wait interval.
    fn deliver_completion<Io: ConnIo>(
        &mut self,
        completion: &Completion<Io::FileRef>,
        path: &str,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        served_tier: Tier,
        now: Instant,
    ) {
        for idx in self.waiters.remove(path).unwrap_or_default() {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            if let Some(t0) = conn.wait_start.take() {
                self.stats
                    .hist_helper_wait
                    .record(stats::nanos_since(t0, now));
            }
            match &completion {
                Completion::Small(entry) => {
                    if entry.not_modified_since(conn.if_modified_since) {
                        queue_not_modified(conn, entry.mtime, &self.stats);
                        set_log(conn, Status::NotModified.code(), Tier::NotModified);
                    } else {
                        queue_entry(conn, entry);
                        set_log(conn, Status::Ok.code(), served_tier);
                    }
                }
                Completion::Large {
                    file,
                    len,
                    mtime,
                    header_keep,
                    header_close,
                } => {
                    if crate::cache::not_modified_since(*mtime, conn.if_modified_since) {
                        queue_not_modified(conn, *mtime, &self.stats);
                        set_log(conn, Status::NotModified.code(), Tier::NotModified);
                    } else {
                        queue_sendfile(conn, file, *len, header_keep, header_close);
                        set_log(conn, Status::Ok.code(), Tier::Sendfile);
                    }
                }
                Completion::Fail(status, body) => {
                    queue_error(conn, *status, body.clone());
                    set_log(conn, status.code(), Tier::Error);
                }
            }
            conn.state = ConnState::Writing;
            completed.push(idx);
        }
    }

    /// Verifies the shard's structural invariants against its
    /// connection table and timing wheel — the deterministic sim calls
    /// this after (samples of) every step; tests call it constantly.
    /// `token_of` maps a slot index to its wheel key.
    ///
    /// Checked: every waiter index refers to a live `Waiting`
    /// connection and appears on exactly one list; a path has a
    /// pending job iff it has (non-empty) waiters; every `Waiting`
    /// connection is on some waiter list; a connection carries a
    /// deadline class iff its wheel key is armed.
    pub fn check_invariants<Io: ConnIo>(
        &self,
        conns: &[Option<Conn<Io>>],
        wheel: &TimerWheel,
        token_of: impl Fn(usize) -> u64,
    ) -> Result<(), String> {
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (path, list) in &self.waiters {
            if list.is_empty() {
                return Err(format!("empty waiter list left behind for {path}"));
            }
            if !self.pending_jobs.contains_key(path) {
                return Err(format!("waiters parked on {path} with no pending job"));
            }
            for &idx in list {
                if !seen.insert(idx) {
                    return Err(format!("conn {idx} appears on two waiter lists"));
                }
                match conns.get(idx).and_then(|c| c.as_ref()) {
                    Some(c) if matches!(c.state, ConnState::Waiting) => {}
                    Some(_) => {
                        return Err(format!("waiter {idx} on {path} is not in Waiting state"))
                    }
                    None => return Err(format!("waiter {idx} on {path} is an empty slot")),
                }
            }
        }
        for path in self.pending_jobs.keys() {
            if !self.waiters.contains_key(path) {
                return Err(format!(
                    "pending job for {path} with no waiters (leak: nobody can consume it)"
                ));
            }
        }
        for (idx, slot) in conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let armed = wheel.is_armed(token_of(idx));
            let class = conn.deadline != DeadlineKind::None;
            if class != armed {
                return Err(format!(
                    "conn {idx}: deadline class {:?} but wheel armed={armed}",
                    conn.deadline
                ));
            }
            if matches!(conn.state, ConnState::Waiting) && !seen.contains(&idx) {
                return Err(format!(
                    "conn {idx} is Waiting but on no waiter list (permanently parked)"
                ));
            }
        }
        Ok(())
    }
}

/// A finished helper job, rendered into whatever each waiting
/// connection needs queued.
enum Completion<F> {
    /// Small body: a cached (or at least cacheable) in-memory entry.
    Small(Arc<Entry>),
    /// Large body: a shared file handle for the sendfile path, with
    /// both header forms pre-rendered once for the whole waiter list.
    Large {
        file: F,
        len: u64,
        mtime: Option<i64>,
        header_keep: Bytes,
        header_close: Bytes,
    },
    Fail(Status, Bytes),
}

pub(crate) fn queue_entry<Io: ConnIo>(conn: &mut Conn<Io>, entry: &Arc<Entry>) {
    // The header goes out as slices around a current Date segment (a
    // cached entry may be hours old; its baked-in date is not the
    // response's date) — still one writev, just more iovecs.
    entry.push_header(conn.keep_alive, &mut conn.out);
    if !conn.head_only {
        conn.out.push_back(entry.body.clone());
    }
}

/// Queues a bodyless `304 Not Modified` answering a conditional
/// request whose validator is still current. 304s are rare enough
/// that the header is rendered on demand rather than cached.
pub(crate) fn queue_not_modified<Io: ConnIo>(
    conn: &mut Conn<Io>,
    mtime: Option<i64>,
    stats: &ShardStats,
) {
    let hdr = ResponseHeader::not_modified(conn.keep_alive, mtime);
    conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
    stats.not_modified.fetch_add(1, Ordering::Relaxed);
}

/// Queues a large-body response: the pre-rendered header goes through
/// the ordinary `writev` queue; the body rides as a [`SendFileState`]
/// transmitted after the queue drains. HEAD gets the header (with the
/// true `Content-Length`) and no file state at all.
pub(crate) fn queue_sendfile<Io: ConnIo>(
    conn: &mut Conn<Io>,
    file: &Io::FileRef,
    len: u64,
    keep: &Bytes,
    close: &Bytes,
) {
    let hdr = if conn.keep_alive { keep } else { close };
    conn.out.push_back(hdr.clone());
    if !conn.head_only {
        conn.sendfile = Some(SendFileState {
            file: file.clone(),
            offset: 0,
            remaining: len,
        });
    }
}

/// Fills in the staged access-log record's outcome fields (no-op when
/// access logging is off — `pending_log` is `None`).
fn set_log<Io: ConnIo>(conn: &mut Conn<Io>, status: u16, tier: Tier) {
    if let Some(log) = conn.pending_log.as_mut() {
        log.status = status;
        log.tier = tier;
    }
}

pub(crate) fn queue_error<Io: ConnIo>(conn: &mut Conn<Io>, status: Status, body: Bytes) {
    let hdr = ResponseHeader::build(status, "text/html", body.len() as u64, false, true);
    conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
    if !conn.head_only {
        conn.out.push_back(body);
    }
    conn.keep_alive = false;
}
