//! Per-shard protocol state and transitions: the content cache, miss
//! coalescing with per-job cancellation, reload epochs, drain mode,
//! and the request → helper → response pipeline — generic over
//! [`ConnIo`], free of syscalls and clocks (every instant is a
//! parameter), so the real event loop and the deterministic sim drive
//! the identical code.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use flash_http::request::{ParseStatus, Request};
use flash_http::response::{error_body, ResponseHeader, Status};
use flash_http::Method;

use crate::cache::{ContentCache, Entry, Lookup};
use crate::timer::TimerWheel;

use super::machine::{flush_out, Conn, ConnState, DeadlineKind, Drive, FlushResult, SendFileState};
use super::{
    ConnIo, Done, DoneData, FileData, HelperJob, HelperPort, JobKind, ProtoConfig, ShardStats,
};

/// The shard's record of one dispatched, not-yet-completed job: the
/// token a completion must echo to be accepted, and the cancellation
/// flag raised if every waiter is reaped first.
pub struct PendingJob {
    pub token: u64,
    pub cancel: Arc<AtomicBool>,
}

/// Everything one shard's protocol layer owns: its cache, its
/// miss-coalescing and job-cancellation state, its statistics, and its
/// reload/drain posture. Deliberately **not** generic over the
/// transport — per-connection transport state lives in each
/// [`Conn`]; large-body handles pass through transiently.
pub struct ShardCore {
    pub shard: usize,
    pub cache: ContentCache,
    /// This shard's slice of the content-cache budget, kept so a
    /// SIGHUP reload can build a replacement cache of the same size
    /// (the cache itself has no capacity getter).
    pub cache_capacity: u64,
    /// Connections parked per URL path awaiting a helper completion.
    pub waiters: HashMap<String, Vec<usize>>,
    /// In-flight jobs per URL path. Invariant (checkable via
    /// [`ShardCore::check_invariants`]): a path has a pending job iff
    /// it has a non-empty waiter list.
    pub pending_jobs: HashMap<String, PendingJob>,
    /// Monotonic per-dispatch token source (see [`HelperJob::token`]).
    next_job_token: u64,
    pub cfg: ProtoConfig,
    pub stats: Arc<ShardStats>,
    /// Whether this shard has entered drain: accepting has stopped,
    /// keep-alive connections close after their final response.
    pub draining: bool,
    /// Reload epoch, bumped on every SIGHUP docroot swap. Helper jobs
    /// carry the epoch they were dispatched under; a completion from a
    /// previous epoch still serves its waiters (their request predates
    /// the reload) but is never inserted into the post-reload cache.
    pub epoch: u64,
}

impl ShardCore {
    /// A fresh shard core with a `cache_bytes`-bounded content cache.
    pub fn new(shard: usize, cache_bytes: u64, cfg: ProtoConfig, stats: Arc<ShardStats>) -> Self {
        ShardCore {
            shard,
            cache: ContentCache::new(cache_bytes),
            cache_capacity: cache_bytes,
            waiters: HashMap::new(),
            pending_jobs: HashMap::new(),
            next_job_token: 1,
            cfg,
            stats,
            draining: false,
            epoch: 0,
        }
    }

    /// Applies a docroot reload: the root swaps (when given), the
    /// content cache is replaced wholesale (same budget — pre-reload
    /// bytes must not be served under the new root), and the epoch
    /// advances so a completion from a job dispatched before the swap
    /// serves its parked waiters but is never inserted into the fresh
    /// cache. In-flight connections are untouched.
    pub fn apply_reload(&mut self, docroot: Option<PathBuf>, generation: u64) {
        if let Some(root) = docroot {
            self.cfg.docroot = root;
        }
        self.cache = ContentCache::new(self.cache_capacity);
        self.stats.cache_used_bytes.store(0, Ordering::Relaxed);
        self.epoch = generation;
    }

    /// Flips the shard into drain mode (bookkeeping only; the driver
    /// quiesces its listener and sweeps idle connections itself).
    pub fn begin_drain(&mut self) {
        self.draining = true;
        self.stats.draining.store(1, Ordering::Relaxed);
    }

    /// Runs one connection's state machine as far as it will go
    /// without blocking — reads drained to `WouldBlock`, writes until
    /// backpressure — and reports why it stopped. `now` is the
    /// driver's clock (cache-TTL decisions happen here).
    pub fn drive_conn<Io: ConnIo>(
        &mut self,
        idx: usize,
        conns: &mut [Option<Conn<Io>>],
        port: &mut dyn HelperPort,
        now: Instant,
    ) -> Drive {
        loop {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                return Drive::Closed;
            };
            match conn.state {
                ConnState::Reading => {
                    // Serve any request already buffered (keep-alive
                    // pipelining) before asking the transport for more.
                    match conn.parser.feed(&[]) {
                        ParseStatus::Done(req) => {
                            self.handle_request(idx, conn, req, port, now);
                            if matches!(conn.state, ConnState::Waiting) {
                                return Drive::Blocked;
                            }
                            continue;
                        }
                        ParseStatus::Error(_) => {
                            let body = Bytes::from(error_body(Status::BadRequest));
                            queue_error(conn, Status::BadRequest, body);
                            conn.state = ConnState::Writing;
                            continue;
                        }
                        ParseStatus::Incomplete => {}
                    }
                    let mut buf = [0u8; 4096];
                    match conn.io.read(&mut buf) {
                        Ok(0) => {
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                        Ok(n) => match conn.parser.feed(&buf[..n]) {
                            ParseStatus::Done(req) => {
                                self.handle_request(idx, conn, req, port, now);
                                if matches!(conn.state, ConnState::Waiting) {
                                    return Drive::Blocked;
                                }
                            }
                            ParseStatus::Incomplete => {}
                            ParseStatus::Error(_) => {
                                let body = Bytes::from(error_body(Status::BadRequest));
                                queue_error(conn, Status::BadRequest, body);
                                conn.state = ConnState::Writing;
                            }
                        },
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return Drive::Blocked
                        }
                        Err(_) => {
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                    }
                }
                ConnState::Writing => match flush_out(conn, &self.stats) {
                    FlushResult::Flushed => {
                        self.stats.requests.fetch_add(1, Ordering::Relaxed);
                        // Under drain a keep-alive connection closes
                        // after its final response — unless pipelined
                        // request bytes are already buffered, which are
                        // honoured before the close (the loop continues
                        // Reading and serves them without touching the
                        // transport).
                        if conn.keep_alive && !(self.draining && conn.parser.buffered() == 0) {
                            conn.state = ConnState::Reading;
                        } else {
                            if self.draining {
                                self.stats.drained_conns.fetch_add(1, Ordering::Relaxed);
                            }
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                    }
                    FlushResult::WouldBlock => return Drive::Blocked,
                    FlushResult::Yielded => return Drive::Yielded,
                    FlushResult::Error => {
                        conns[idx] = None;
                        return Drive::Closed;
                    }
                },
                ConnState::Waiting => return Drive::Blocked,
            }
        }
    }

    fn handle_request<Io: ConnIo>(
        &mut self,
        idx: usize,
        conn: &mut Conn<Io>,
        req: Request,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        conn.keep_alive = req.keep_alive();
        conn.head_only = req.method == Method::Head;
        // Parsed once here; an unparseable date simply makes the
        // request unconditional. Carried on the connection because the
        // response may be rendered by a helper completion after `req`
        // is dropped.
        conn.if_modified_since = req
            .if_modified_since
            .as_deref()
            .and_then(flash_http::date::parse_imf);
        if req.method == Method::Post {
            let body = Bytes::from(error_body(Status::NotImplemented));
            queue_error(conn, Status::NotImplemented, body);
            conn.state = ConnState::Writing;
            return;
        }
        let mut path = req.path.clone();
        if path.ends_with('/') {
            path.push_str("index.html");
        }
        let kind = match self
            .cache
            .lookup_at(&path, self.cfg.cache_revalidate_ttl, now)
        {
            Lookup::Hit(entry) => {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                if entry.not_modified_since(conn.if_modified_since) {
                    queue_not_modified(conn, entry.mtime, &self.stats);
                } else {
                    queue_entry(conn, &entry);
                }
                conn.state = ConnState::Writing;
                return;
            }
            // Resident but past the revalidation TTL: the bytes cannot
            // be trusted until a helper re-stats the file — a cheap
            // open+fstat, no read — so the connection parks exactly
            // like a miss and is served by the completion (from memory
            // if the stat matches, from a reload if not).
            Lookup::Stale(_) => JobKind::Revalidate,
            // Miss: hand the disk work to a helper.
            Lookup::Miss => JobKind::Load,
        };
        // Coalesce concurrent misses (and revalidations) per path. The
        // request parser has already normalized away any `..`, so
        // joining the relative remainder cannot escape the docroot.
        self.waiters.entry(path.clone()).or_default().push(idx);
        self.dispatch_job(path, kind, port);
        conn.state = ConnState::Waiting;
    }

    /// Dispatches one job per path: coalesced behind the pending map,
    /// tokened so only this dispatch's completion is accepted, and
    /// carrying a fresh cancellation flag.
    fn dispatch_job(&mut self, path: String, kind: JobKind, port: &mut dyn HelperPort) {
        if self.pending_jobs.contains_key(&path) {
            return;
        }
        let token = self.next_job_token;
        self.next_job_token += 1;
        let cancel = Arc::new(AtomicBool::new(false));
        self.pending_jobs.insert(
            path.clone(),
            PendingJob {
                token,
                cancel: Arc::clone(&cancel),
            },
        );
        self.stats.helper_jobs.fetch_add(1, Ordering::Relaxed);
        let fs_path = self.cfg.docroot.join(path.trim_start_matches('/'));
        port.submit(HelperJob {
            path,
            fs_path,
            kind,
            epoch: self.epoch,
            token,
            cancel,
        });
    }

    /// Removes a dropped connection's index from every waiter list —
    /// so a helper completion can never be delivered to a recycled
    /// slot — and **cancels the job** of any path whose waiter list
    /// emptied: the pending entry is dropped (a completion that
    /// already ran dies on token mismatch in [`Self::complete_job`])
    /// and the cancel flag is raised (an executor that has not started
    /// yet skips the job entirely).
    pub fn purge_waiter(&mut self, idx: usize) {
        let mut orphaned: Vec<String> = Vec::new();
        self.waiters.retain(|path, list| {
            list.retain(|&w| w != idx);
            if list.is_empty() {
                orphaned.push(path.clone());
                false
            } else {
                true
            }
        });
        for path in orphaned {
            if let Some(job) = self.pending_jobs.remove(&path) {
                job.cancel.store(true, Ordering::Release);
                self.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Renders a helper completion into every waiter's output queue,
    /// flipping them to `Writing` and appending their indices to
    /// `completed` for the driver to drive. A completion whose token
    /// does not match the path's pending dispatch — the job was
    /// cancelled after a waiter reap, or superseded — is dropped
    /// wholesale: no cache insert, no waiter wake.
    pub fn complete_job<Io: ConnIo>(
        &mut self,
        done: Done<Io::FileRef>,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        match self.pending_jobs.get(&done.path) {
            Some(p) if p.token == done.token => {
                self.pending_jobs.remove(&done.path);
            }
            _ => return,
        }
        let result = match done.data {
            DoneData::Stat(stat) => {
                return self.complete_revalidation(done.path, stat, conns, completed, port, now);
            }
            DoneData::Loaded(result) => result,
        };
        let completion = match result {
            Ok(FileData::Bytes { body, mtime }) => {
                let entry = Entry::build_with_mtime(&done.path, body, mtime);
                // Oversized-for-this-cache entries are refused by the
                // admission check; the waiters below are still served
                // from the entry directly. A completion from before a
                // SIGHUP reload (stale epoch) also serves its waiters —
                // their requests predate the reload — but is NOT
                // inserted: pre-reload bytes must not poison the
                // post-reload cache.
                if done.epoch == self.epoch {
                    self.cache
                        .insert_at(done.path.clone(), Arc::clone(&entry), now);
                    self.stats
                        .cache_used_bytes
                        .store(self.cache.used_bytes(), Ordering::Relaxed);
                }
                Completion::Small(entry)
            }
            Ok(FileData::Fd { file, len, mtime }) => {
                let (header_keep, header_close) = crate::cache::header_pair(&done.path, len, mtime);
                Completion::Large {
                    file,
                    len,
                    mtime,
                    header_keep,
                    header_close,
                }
            }
            Err(e) => {
                let status = match e.kind() {
                    io::ErrorKind::NotFound => Status::NotFound,
                    io::ErrorKind::PermissionDenied => Status::Forbidden,
                    _ => Status::InternalError,
                };
                Completion::Fail(status, Bytes::from(error_body(status)))
            }
        };
        self.deliver_completion(&completion, &done.path, conns, completed);
    }

    /// Handles a revalidation re-stat completion: if the cached entry
    /// still matches the file's (length, mtime), its TTL clock
    /// restarts and the waiters are served straight from memory;
    /// otherwise the stale entry is evicted and a full load is
    /// requeued — the waiters stay parked and the `Load` completion
    /// serves them the fresh bytes (or the error the reload produces).
    fn complete_revalidation<Io: ConnIo>(
        &mut self,
        path: String,
        stat: io::Result<(u64, Option<i64>)>,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        if let (Some(entry), Ok((len, mtime))) = (self.cache.peek(&path), &stat) {
            if entry.mtime == *mtime && entry.body.len() as u64 == *len {
                self.cache.refresh_at(&path, now);
                self.stats.revalidations.fetch_add(1, Ordering::Relaxed);
                self.deliver_completion(&Completion::Small(entry), &path, conns, completed);
                return;
            }
        }
        // Changed, vanished, or evicted in the meantime: the resident
        // bytes can no longer be trusted.
        if self.cache.invalidate(&path) {
            self.stats.stale_evicted.fetch_add(1, Ordering::Relaxed);
            self.stats
                .cache_used_bytes
                .store(self.cache.used_bytes(), Ordering::Relaxed);
        }
        self.dispatch_job(path, JobKind::Load, port);
    }

    /// Renders a completion into every waiter's output queue, flipping
    /// them to `Writing` and appending their indices to `completed`
    /// for the driver to drive.
    fn deliver_completion<Io: ConnIo>(
        &mut self,
        completion: &Completion<Io::FileRef>,
        path: &str,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
    ) {
        for idx in self.waiters.remove(path).unwrap_or_default() {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            match &completion {
                Completion::Small(entry) => {
                    if entry.not_modified_since(conn.if_modified_since) {
                        queue_not_modified(conn, entry.mtime, &self.stats);
                    } else {
                        queue_entry(conn, entry);
                    }
                }
                Completion::Large {
                    file,
                    len,
                    mtime,
                    header_keep,
                    header_close,
                } => {
                    if crate::cache::not_modified_since(*mtime, conn.if_modified_since) {
                        queue_not_modified(conn, *mtime, &self.stats);
                    } else {
                        queue_sendfile(conn, file, *len, header_keep, header_close);
                    }
                }
                Completion::Fail(status, body) => queue_error(conn, *status, body.clone()),
            }
            conn.state = ConnState::Writing;
            completed.push(idx);
        }
    }

    /// Verifies the shard's structural invariants against its
    /// connection table and timing wheel — the deterministic sim calls
    /// this after (samples of) every step; tests call it constantly.
    /// `token_of` maps a slot index to its wheel key.
    ///
    /// Checked: every waiter index refers to a live `Waiting`
    /// connection and appears on exactly one list; a path has a
    /// pending job iff it has (non-empty) waiters; every `Waiting`
    /// connection is on some waiter list; a connection carries a
    /// deadline class iff its wheel key is armed.
    pub fn check_invariants<Io: ConnIo>(
        &self,
        conns: &[Option<Conn<Io>>],
        wheel: &TimerWheel,
        token_of: impl Fn(usize) -> u64,
    ) -> Result<(), String> {
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (path, list) in &self.waiters {
            if list.is_empty() {
                return Err(format!("empty waiter list left behind for {path}"));
            }
            if !self.pending_jobs.contains_key(path) {
                return Err(format!("waiters parked on {path} with no pending job"));
            }
            for &idx in list {
                if !seen.insert(idx) {
                    return Err(format!("conn {idx} appears on two waiter lists"));
                }
                match conns.get(idx).and_then(|c| c.as_ref()) {
                    Some(c) if matches!(c.state, ConnState::Waiting) => {}
                    Some(_) => {
                        return Err(format!("waiter {idx} on {path} is not in Waiting state"))
                    }
                    None => return Err(format!("waiter {idx} on {path} is an empty slot")),
                }
            }
        }
        for path in self.pending_jobs.keys() {
            if !self.waiters.contains_key(path) {
                return Err(format!(
                    "pending job for {path} with no waiters (leak: nobody can consume it)"
                ));
            }
        }
        for (idx, slot) in conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let armed = wheel.is_armed(token_of(idx));
            let class = conn.deadline != DeadlineKind::None;
            if class != armed {
                return Err(format!(
                    "conn {idx}: deadline class {:?} but wheel armed={armed}",
                    conn.deadline
                ));
            }
            if matches!(conn.state, ConnState::Waiting) && !seen.contains(&idx) {
                return Err(format!(
                    "conn {idx} is Waiting but on no waiter list (permanently parked)"
                ));
            }
        }
        Ok(())
    }
}

/// A finished helper job, rendered into whatever each waiting
/// connection needs queued.
enum Completion<F> {
    /// Small body: a cached (or at least cacheable) in-memory entry.
    Small(Arc<Entry>),
    /// Large body: a shared file handle for the sendfile path, with
    /// both header forms pre-rendered once for the whole waiter list.
    Large {
        file: F,
        len: u64,
        mtime: Option<i64>,
        header_keep: Bytes,
        header_close: Bytes,
    },
    Fail(Status, Bytes),
}

pub(crate) fn queue_entry<Io: ConnIo>(conn: &mut Conn<Io>, entry: &Arc<Entry>) {
    // The header goes out as slices around a current Date segment (a
    // cached entry may be hours old; its baked-in date is not the
    // response's date) — still one writev, just more iovecs.
    entry.push_header(conn.keep_alive, &mut conn.out);
    if !conn.head_only {
        conn.out.push_back(entry.body.clone());
    }
}

/// Queues a bodyless `304 Not Modified` answering a conditional
/// request whose validator is still current. 304s are rare enough
/// that the header is rendered on demand rather than cached.
pub(crate) fn queue_not_modified<Io: ConnIo>(
    conn: &mut Conn<Io>,
    mtime: Option<i64>,
    stats: &ShardStats,
) {
    let hdr = ResponseHeader::not_modified(conn.keep_alive, mtime);
    conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
    stats.not_modified.fetch_add(1, Ordering::Relaxed);
}

/// Queues a large-body response: the pre-rendered header goes through
/// the ordinary `writev` queue; the body rides as a [`SendFileState`]
/// transmitted after the queue drains. HEAD gets the header (with the
/// true `Content-Length`) and no file state at all.
pub(crate) fn queue_sendfile<Io: ConnIo>(
    conn: &mut Conn<Io>,
    file: &Io::FileRef,
    len: u64,
    keep: &Bytes,
    close: &Bytes,
) {
    let hdr = if conn.keep_alive { keep } else { close };
    conn.out.push_back(hdr.clone());
    if !conn.head_only {
        conn.sendfile = Some(SendFileState {
            file: file.clone(),
            offset: 0,
            remaining: len,
        });
    }
}

pub(crate) fn queue_error<Io: ConnIo>(conn: &mut Conn<Io>, status: Status, body: Bytes) {
    let hdr = ResponseHeader::build(status, "text/html", body.len() as u64, false, true);
    conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
    if !conn.head_only {
        conn.out.push_back(body);
    }
    conn.keep_alive = false;
}
