//! Per-shard protocol state and transitions: the content cache, miss
//! coalescing with per-job cancellation, reload epochs, drain mode,
//! and the request → helper → response pipeline — generic over
//! [`ConnIo`], free of syscalls and clocks (every instant is a
//! parameter), so the real event loop and the deterministic sim drive
//! the identical code.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use flash_http::chunked;
use flash_http::request::{ParseStatus, Request};
use flash_http::response::{error_body, ResponseHeader, Status};
use flash_http::Method;

use crate::cache::{self, ContentCache, Entry, Lookup, Variant};
use crate::stats::{self, AccessRecord, PendingLog, Tier};
use crate::timer::TimerWheel;

use super::machine::{flush_out, Conn, ConnState, DeadlineKind, Drive, FlushResult};
use super::plan::{plan_dynamic, plan_response, queue_plan, RequestCond, Resource};
use super::{
    ConnIo, Done, DoneData, DynEvent, FileData, HelperJob, HelperPort, JobKind, LoadResult,
    ProtoConfig, ShardStats,
};

/// The shard's record of one dispatched, not-yet-completed job: the
/// token a completion must echo to be accepted, and the cancellation
/// flag raised if every waiter is reaped first.
pub struct PendingJob {
    pub token: u64,
    pub cancel: Arc<AtomicBool>,
}

/// Everything one shard's protocol layer owns: its cache, its
/// miss-coalescing and job-cancellation state, its statistics, and its
/// reload/drain posture. Deliberately **not** generic over the
/// transport — per-connection transport state lives in each
/// [`Conn`]; large-body handles pass through transiently.
pub struct ShardCore {
    pub shard: usize,
    pub cache: ContentCache,
    /// This shard's slice of the content-cache budget, kept so a
    /// SIGHUP reload can build a replacement cache of the same size
    /// (the cache itself has no capacity getter).
    pub cache_capacity: u64,
    /// Connections parked per URL path awaiting a helper completion.
    pub waiters: HashMap<String, Vec<usize>>,
    /// In-flight jobs per URL path. Invariant (checkable via
    /// [`ShardCore::check_invariants`]): a path has a pending job iff
    /// it has a non-empty waiter list.
    pub pending_jobs: HashMap<String, PendingJob>,
    /// Monotonic per-dispatch token source (see [`HelperJob::token`]).
    next_job_token: u64,
    pub cfg: ProtoConfig,
    pub stats: Arc<ShardStats>,
    /// Whether this shard has entered drain: accepting has stopped,
    /// keep-alive connections close after their final response.
    pub draining: bool,
    /// Reload epoch, bumped on every SIGHUP docroot swap. Helper jobs
    /// carry the epoch they were dispatched under; a completion from a
    /// previous epoch still serves its waiters (their request predates
    /// the reload) but is never inserted into the post-reload cache.
    pub epoch: u64,
    /// Every shard's stats, for rendering the `/.flash/` endpoints
    /// server-wide (set by the driver; when empty — the sim, tests —
    /// the endpoint renders this shard's stats alone).
    pub export: Vec<Arc<ShardStats>>,
    /// Access records staged by completed responses (only when
    /// [`ProtoConfig::access_log`] is on); the driver drains this
    /// every loop iteration and writes the lines, stamping wall time
    /// itself so the core stays clock-free.
    pub access_log: Vec<AccessRecord>,
}

impl ShardCore {
    /// A fresh shard core with a `cache_bytes`-bounded content cache.
    pub fn new(shard: usize, cache_bytes: u64, cfg: ProtoConfig, stats: Arc<ShardStats>) -> Self {
        ShardCore {
            shard,
            cache: ContentCache::new(cache_bytes),
            cache_capacity: cache_bytes,
            waiters: HashMap::new(),
            pending_jobs: HashMap::new(),
            next_job_token: 1,
            cfg,
            stats,
            draining: false,
            epoch: 0,
            export: Vec::new(),
            access_log: Vec::new(),
        }
    }

    /// Applies a docroot reload: the root swaps (when given), the
    /// content cache is replaced wholesale (same budget — pre-reload
    /// bytes must not be served under the new root), and the epoch
    /// advances so a completion from a job dispatched before the swap
    /// serves its parked waiters but is never inserted into the fresh
    /// cache. In-flight connections are untouched.
    pub fn apply_reload(&mut self, docroot: Option<PathBuf>, generation: u64) {
        if let Some(root) = docroot {
            self.cfg.docroot = root;
        }
        self.cache = ContentCache::new(self.cache_capacity);
        self.stats.cache_used_bytes.store(0, Ordering::Relaxed);
        self.epoch = generation;
    }

    /// Flips the shard into drain mode (bookkeeping only; the driver
    /// quiesces its listener and sweeps idle connections itself).
    pub fn begin_drain(&mut self) {
        self.draining = true;
        self.stats.draining.store(1, Ordering::Relaxed);
    }

    /// Records a closing connection's lifetime. The core calls it on
    /// its own close paths; drivers call it wherever *they* retire a
    /// slot (deadline expiry, drain sweeps, registration failures).
    pub fn note_close<Io: ConnIo>(&self, conn: &Conn<Io>, now: Instant) {
        if let Some(t0) = conn.opened_at {
            self.stats.hist_lifetime.record(stats::nanos_since(t0, now));
        }
    }

    /// Per-response accounting at the moment the last byte is queued
    /// out: the `requests` counter (or `metrics_requests` for
    /// `/.flash/` responses), the request-latency histogram, and the
    /// staged access-log record.
    fn finish_response<Io: ConnIo>(&mut self, conn: &mut Conn<Io>, now: Instant) {
        conn.ttfb_pending = false;
        if conn.metrics_response {
            conn.metrics_response = false;
            self.stats.metrics_requests.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let latency_nanos = conn.req_start.take().map(|t0| stats::nanos_since(t0, now));
        if let Some(ns) = latency_nanos {
            self.stats.hist_request.record(ns);
        }
        if let Some(log) = conn.pending_log.take() {
            self.access_log.push(AccessRecord {
                host: log.host,
                method: log.method,
                path: log.path,
                status: log.status,
                bytes: conn.progress - conn.progress_at_req,
                latency_us: latency_nanos.unwrap_or(0) / 1_000,
                tier: log.tier,
            });
        }
    }

    /// Serves the in-band observability endpoints: the registry
    /// rendered as Prometheus text (`/.flash/metrics`) or JSON
    /// (`/.flash/stats`), aggregated over every shard the driver
    /// exported. Rides the normal respond path — no sidecar thread —
    /// and counts under `metrics_requests`, never `requests`.
    fn serve_metrics<Io: ConnIo>(&mut self, conn: &mut Conn<Io>, path: &str) {
        conn.metrics_response = true;
        let shards: &[Arc<ShardStats>] = if self.export.is_empty() {
            std::slice::from_ref(&self.stats)
        } else {
            &self.export
        };
        let (ctype, body) = match path {
            "/.flash/metrics" => (
                "text/plain; version=0.0.4",
                stats::render_prometheus(shards),
            ),
            "/.flash/stats" => ("application/json", stats::render_json(shards)),
            _ => {
                let body = Bytes::from(error_body(Status::NotFound));
                queue_error(conn, Status::NotFound, body);
                conn.state = ConnState::Writing;
                return;
            }
        };
        let body = Bytes::from(body.into_bytes());
        let hdr =
            ResponseHeader::build(Status::Ok, ctype, body.len() as u64, conn.keep_alive, true);
        conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
        if !conn.head_only {
            conn.out.push_back(body);
        }
        conn.state = ConnState::Writing;
    }

    /// Runs one connection's state machine as far as it will go
    /// without blocking — reads drained to `WouldBlock`, writes until
    /// backpressure — and reports why it stopped. `now` is the
    /// driver's clock (cache-TTL decisions happen here).
    pub fn drive_conn<Io: ConnIo>(
        &mut self,
        idx: usize,
        conns: &mut [Option<Conn<Io>>],
        port: &mut dyn HelperPort,
        now: Instant,
    ) -> Drive {
        loop {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                return Drive::Closed;
            };
            match conn.state {
                ConnState::Reading => {
                    // Serve any request already buffered (keep-alive
                    // pipelining) before asking the transport for more.
                    match conn.parser.feed(&[]) {
                        ParseStatus::Done(req) => {
                            self.handle_request(idx, conn, req, port, now);
                            if matches!(conn.state, ConnState::Waiting) {
                                return Drive::Blocked;
                            }
                            continue;
                        }
                        ParseStatus::Error(_) => {
                            let body = Bytes::from(error_body(Status::BadRequest));
                            queue_error(conn, Status::BadRequest, body);
                            conn.state = ConnState::Writing;
                            continue;
                        }
                        ParseStatus::Incomplete => {}
                    }
                    let mut buf = [0u8; 4096];
                    match conn.io.read(&mut buf) {
                        Ok(0) => {
                            self.note_close(conn, now);
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                        Ok(n) => match conn.parser.feed(&buf[..n]) {
                            ParseStatus::Done(req) => {
                                self.handle_request(idx, conn, req, port, now);
                                if matches!(conn.state, ConnState::Waiting) {
                                    return Drive::Blocked;
                                }
                            }
                            ParseStatus::Incomplete => {}
                            ParseStatus::Error(_) => {
                                let body = Bytes::from(error_body(Status::BadRequest));
                                queue_error(conn, Status::BadRequest, body);
                                conn.state = ConnState::Writing;
                            }
                        },
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return Drive::Blocked
                        }
                        Err(_) => {
                            self.note_close(conn, now);
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                    }
                }
                ConnState::Writing => {
                    let progress_before = conn.progress;
                    let flushed = flush_out(conn, &self.stats);
                    // First response byte accepted by the transport
                    // since the request parsed: that's TTFB, whatever
                    // the flush outcome.
                    if conn.ttfb_pending && conn.progress > progress_before {
                        conn.ttfb_pending = false;
                        if let Some(t0) = conn.req_start {
                            self.stats.hist_ttfb.record(stats::nanos_since(t0, now));
                        }
                    }
                    match flushed {
                        FlushResult::Flushed => {
                            if conn.stream_open {
                                // Everything queued so far went out but
                                // the worker's stream is still open:
                                // park back in Waiting for the next
                                // chunk — the response is not finished
                                // and the dynamic-wait deadline covers
                                // the inter-chunk gap.
                                conn.state = ConnState::Waiting;
                                return Drive::Blocked;
                            }
                            self.finish_response(conn, now);
                            // Under drain a keep-alive connection closes
                            // after its final response — unless pipelined
                            // request bytes are already buffered, which are
                            // honoured before the close (the loop continues
                            // Reading and serves them without touching the
                            // transport).
                            if conn.keep_alive && !(self.draining && conn.parser.buffered() == 0) {
                                conn.state = ConnState::Reading;
                            } else {
                                if self.draining {
                                    self.stats.drained_conns.fetch_add(1, Ordering::Relaxed);
                                }
                                self.note_close(conn, now);
                                conns[idx] = None;
                                return Drive::Closed;
                            }
                        }
                        FlushResult::WouldBlock => return Drive::Blocked,
                        FlushResult::Yielded => return Drive::Yielded,
                        FlushResult::Error => {
                            self.note_close(conn, now);
                            conns[idx] = None;
                            return Drive::Closed;
                        }
                    }
                }
                ConnState::Waiting => return Drive::Blocked,
            }
        }
    }

    fn handle_request<Io: ConnIo>(
        &mut self,
        idx: usize,
        conn: &mut Conn<Io>,
        req: Request,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        conn.keep_alive = req.keep_alive();
        conn.head_only = req.method == Method::Head;
        // The conditional/negotiation fields, snapshotted once here
        // (dates parsed; an unparseable date simply makes the request
        // unconditional). Carried on the connection because the
        // response may be rendered by a helper completion after `req`
        // is dropped.
        conn.cond = RequestCond::from_request(&req);
        // The observability endpoints answer before any workload
        // accounting: no `req_start`, no access-log record, counted
        // under `metrics_requests` — scraping never skews the numbers
        // it reports.
        if self.cfg.metrics_endpoint && req.path.starts_with("/.flash/") {
            self.serve_metrics(conn, &req.path);
            return;
        }
        conn.req_start = Some(now);
        conn.ttfb_pending = true;
        conn.progress_at_req = conn.progress;
        if self.cfg.access_log {
            conn.pending_log = Some(PendingLog {
                host: req.host.clone().unwrap_or_default(),
                method: match req.method {
                    Method::Get => "GET",
                    Method::Head => "HEAD",
                    Method::Post => "POST",
                },
                path: req.path.clone(),
                status: 0,
                tier: Tier::Error,
            });
        }
        if req.method == Method::Post {
            let body = Bytes::from(error_body(Status::NotImplemented));
            queue_error(conn, Status::NotImplemented, body);
            set_log(conn, Status::NotImplemented.code(), Tier::Error);
            conn.state = ConnState::Writing;
            return;
        }
        // Dynamic-tier routing: a docroot-relative prefix rule, checked
        // after the reserved `/.flash/` namespace (which therefore can
        // never be shadowed, even by a rule covering `/`) and before
        // the trailing-slash rewrite — dynamic paths are opaque worker
        // arguments, not filesystem names.
        if let Some(prefix) = self.cfg.dynamic_prefix.as_deref() {
            if req.path.starts_with(prefix) {
                self.handle_dynamic(idx, conn, &req.path, port, now);
                return;
            }
        }
        let mut path = req.path.clone();
        if path.ends_with('/') {
            path.push_str("index.html");
        }
        let ttl = self.cfg.cache_revalidate_ttl;
        // Variant negotiation: a gzip-accepting client consults the
        // gzip slot of the variant cache first; everyone else (and any
        // resource known to have no `.gz` sibling) goes straight to the
        // identity slot. Either way the hit is served through the one
        // response plane — the planner, not the lookup, decides
        // 200/206/304/416.
        let (key, kind, variant) = if conn.cond.accept_gzip {
            let gz_key = cache::variant_key(&path, Variant::Gzip);
            match self.cache.lookup_at(&gz_key, ttl, now) {
                Lookup::Hit(entry) => {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.respond_cached(conn, &entry, &path, Tier::Hit);
                    return;
                }
                Lookup::Stale(_) => (gz_key, JobKind::Revalidate, Variant::Gzip),
                // No gzip entry yet. An identity hit that *knows* no
                // sibling exists is served as-is; anything else (miss,
                // stale, or a sibling on record) dispatches a
                // gzip-preference load, which falls back to identity
                // when no `.gz` file is found.
                Lookup::Miss => match self.cache.lookup_at(&path, ttl, now) {
                    Lookup::Hit(entry) if !entry.has_gzip => {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.respond_cached(conn, &entry, &path, Tier::Hit);
                        return;
                    }
                    _ => (gz_key, JobKind::Load, Variant::Gzip),
                },
            }
        } else {
            match self.cache.lookup_at(&path, ttl, now) {
                Lookup::Hit(entry) => {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.respond_cached(conn, &entry, &path, Tier::Hit);
                    return;
                }
                // Resident but past the revalidation TTL: the bytes
                // cannot be trusted until a helper re-stats the file —
                // a cheap open+fstat, no read — so the connection parks
                // exactly like a miss and is served by the completion
                // (from memory if the stat matches, from a reload if
                // not).
                Lookup::Stale(_) => (path.clone(), JobKind::Revalidate, Variant::Identity),
                // Miss: hand the disk work to a helper.
                Lookup::Miss => (path.clone(), JobKind::Load, Variant::Identity),
            }
        };
        // Coalesce concurrent misses (and revalidations) per variant
        // key. The request parser has already normalized away any
        // `..`, so joining the relative remainder cannot escape the
        // docroot.
        self.waiters.entry(key.clone()).or_default().push(idx);
        self.dispatch_job(key, kind, variant, port);
        conn.wait_start = Some(now);
        conn.state = ConnState::Waiting;
    }

    /// Serves a cached entry to one connection through the response
    /// plane: plan, log, queue, flip to `Writing`.
    fn respond_cached<Io: ConnIo>(
        &self,
        conn: &mut Conn<Io>,
        entry: &Arc<Entry>,
        path: &str,
        body_tier: Tier,
    ) {
        let res: Resource<'_, Io::FileRef> = Resource::Cached(entry);
        self.respond(conn, &res, path, body_tier);
    }

    /// Plans and queues one response — the only call site pattern for
    /// [`plan_response`] on this shard, so every tier and every
    /// completion shape goes through identical conditional/range
    /// handling.
    fn respond<Io: ConnIo>(
        &self,
        conn: &mut Conn<Io>,
        res: &Resource<'_, Io::FileRef>,
        path: &str,
        body_tier: Tier,
    ) {
        let plan = plan_response(
            res,
            path,
            &conn.cond,
            conn.keep_alive,
            body_tier,
            &self.stats,
        );
        set_log(conn, plan.status.code(), plan.tier);
        queue_plan(conn, plan);
        conn.state = ConnState::Writing;
    }

    /// Dispatches one job per variant key: coalesced behind the
    /// pending map, tokened so only this dispatch's completion is
    /// accepted, and carrying a fresh cancellation flag. The job
    /// carries the core's tier threshold (`inline_max`) and the wanted
    /// variant so every executor stays mechanical.
    fn dispatch_job(
        &mut self,
        key: String,
        kind: JobKind,
        variant: Variant,
        port: &mut dyn HelperPort,
    ) {
        if self.pending_jobs.contains_key(&key) {
            return;
        }
        let token = self.next_job_token;
        self.next_job_token += 1;
        let cancel = Arc::new(AtomicBool::new(false));
        self.pending_jobs.insert(
            key.clone(),
            PendingJob {
                token,
                cancel: Arc::clone(&cancel),
            },
        );
        self.stats.helper_jobs.fetch_add(1, Ordering::Relaxed);
        // The filesystem path is always the identity representation's;
        // executors derive the `.gz` sibling themselves when the job
        // concerns the gzip variant.
        let url_path = cache::split_variant_key(&key).0;
        let fs_path = self.cfg.docroot.join(url_path.trim_start_matches('/'));
        port.submit(HelperJob {
            path: key,
            fs_path,
            kind,
            variant,
            inline_max: self.cfg.sendfile_threshold,
            epoch: self.epoch,
            token,
            cancel,
        });
    }

    /// Routes one request into the dynamic tier. HEAD answers
    /// immediately with the chunked header alone — no worker runs. GET
    /// dispatches a [`JobKind::Dynamic`] helper job under a synthetic
    /// waiter key (`"\0dyn:<token>"` — the NUL prefix cannot collide
    /// with URL paths, which always start with `/`): dynamic responses
    /// are per-connection streams, never coalesced, so each dispatch
    /// owns exactly one waiter. Conditional headers (ETag/304/Range)
    /// deliberately do not apply — generated output has no validators.
    fn handle_dynamic<Io: ConnIo>(
        &mut self,
        idx: usize,
        conn: &mut Conn<Io>,
        url_path: &str,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        self.stats.dynamic_requests.fetch_add(1, Ordering::Relaxed);
        set_log(conn, Status::Ok.code(), Tier::Dynamic);
        if conn.head_only {
            // Headers only: `queue_plan` drops the `Stream` body for
            // HEAD, so no stream opens and no worker is consulted.
            queue_plan(conn, plan_dynamic(conn.keep_alive));
            conn.state = ConnState::Writing;
            return;
        }
        let token = self.next_job_token;
        self.next_job_token += 1;
        let key = format!("\0dyn:{token}");
        let cancel = Arc::new(AtomicBool::new(false));
        self.pending_jobs.insert(
            key.clone(),
            PendingJob {
                token,
                cancel: Arc::clone(&cancel),
            },
        );
        self.waiters.entry(key.clone()).or_default().push(idx);
        self.stats.helper_jobs.fetch_add(1, Ordering::Relaxed);
        // `fs_path` carries the request path verbatim: it is the
        // worker's argument, not a filesystem name, so no docroot join
        // and no trailing-slash rewrite.
        port.submit(HelperJob {
            path: key,
            fs_path: PathBuf::from(url_path),
            kind: JobKind::Dynamic,
            variant: Variant::Identity,
            inline_max: 0,
            epoch: self.epoch,
            token,
            cancel,
        });
        conn.dynamic = true;
        conn.wait_start = Some(now);
        conn.state = ConnState::Waiting;
    }

    /// Removes a dropped connection's index from every waiter list —
    /// so a helper completion can never be delivered to a recycled
    /// slot — and **cancels the job** of any path whose waiter list
    /// emptied: the pending entry is dropped (a completion that
    /// already ran dies on token mismatch in [`Self::complete_job`])
    /// and the cancel flag is raised (an executor that has not started
    /// yet skips the job entirely).
    pub fn purge_waiter(&mut self, idx: usize) {
        let mut orphaned: Vec<String> = Vec::new();
        self.waiters.retain(|path, list| {
            list.retain(|&w| w != idx);
            if list.is_empty() {
                orphaned.push(path.clone());
                false
            } else {
                true
            }
        });
        for path in orphaned {
            if let Some(job) = self.pending_jobs.remove(&path) {
                job.cancel.store(true, Ordering::Release);
                self.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Renders a helper completion into every waiter's output queue,
    /// flipping them to `Writing` and appending their indices to
    /// `completed` for the driver to drive. A completion whose token
    /// does not match the path's pending dispatch — the job was
    /// cancelled after a waiter reap, or superseded — is dropped
    /// wholesale: no cache insert, no waiter wake.
    pub fn complete_job<Io: ConnIo>(
        &mut self,
        done: Done<Io::FileRef>,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        // A dynamic job produces *several* completions under one token
        // — every mid-stream `Chunk` keeps the pending entry (and its
        // cancel flag) alive; only the final `End` (or any non-dynamic
        // completion) retires it.
        let retire = !matches!(done.data, DoneData::Dynamic(DynEvent::Chunk(_)));
        match self.pending_jobs.get(&done.path) {
            Some(p) if p.token == done.token => {
                if retire {
                    self.pending_jobs.remove(&done.path);
                }
            }
            _ => return,
        }
        let result = match done.data {
            DoneData::Stat(stat) => {
                return self.complete_revalidation(done.path, stat, conns, completed, port, now);
            }
            DoneData::Dynamic(ev) => {
                return self.deliver_dynamic(&done.path, ev, conns, completed, now);
            }
            DoneData::Loaded(result) => result,
        };
        let url_path = cache::split_variant_key(&done.path).0.to_string();
        let completion = match result {
            Ok(LoadResult {
                data: FileData::Bytes { body, mtime },
                variant,
                has_gzip,
            }) => {
                let entry = Entry::build_variant(&url_path, body, mtime, variant, has_gzip);
                // Oversized-for-this-cache entries are refused by the
                // admission check; the waiters below are still served
                // from the entry directly. A completion from before a
                // SIGHUP reload (stale epoch) also serves its waiters —
                // their requests predate the reload — but is NOT
                // inserted: pre-reload bytes must not poison the
                // post-reload cache. The insert key follows the variant
                // that actually loaded: a gzip-preference job that fell
                // back to identity (no `.gz` sibling) populates the
                // identity slot, so the next gzip-accepting request
                // hits `has_gzip: false` there and never re-dispatches.
                if done.epoch == self.epoch {
                    self.cache.insert_at(
                        cache::variant_key(&url_path, variant),
                        Arc::clone(&entry),
                        now,
                    );
                    self.stats
                        .cache_used_bytes
                        .store(self.cache.used_bytes(), Ordering::Relaxed);
                }
                Completion::Small(entry)
            }
            Ok(LoadResult {
                data: FileData::Fd { file, len, mtime },
                variant,
                has_gzip,
            }) => {
                let (header_keep, header_close, etag) =
                    cache::header_pair(&url_path, len, mtime, variant, has_gzip);
                Completion::Large {
                    file,
                    len,
                    mtime,
                    variant,
                    has_gzip,
                    etag,
                    header_keep,
                    header_close,
                }
            }
            Err(e) => {
                let status = match e.kind() {
                    io::ErrorKind::NotFound => Status::NotFound,
                    io::ErrorKind::PermissionDenied => Status::Forbidden,
                    _ => Status::InternalError,
                };
                Completion::Fail(status, Bytes::from(error_body(status)))
            }
        };
        self.deliver_completion(
            &completion,
            &done.path,
            &url_path,
            conns,
            completed,
            Tier::Miss,
            now,
        );
    }

    /// Handles a revalidation re-stat completion: if the cached entry
    /// still matches the file's (length, mtime), its TTL clock
    /// restarts and the waiters are served straight from memory;
    /// otherwise the stale entry is evicted and a full load is
    /// requeued — the waiters stay parked and the `Load` completion
    /// serves them the fresh bytes (or the error the reload produces).
    fn complete_revalidation<Io: ConnIo>(
        &mut self,
        path: String,
        stat: io::Result<(u64, Option<i64>)>,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        port: &mut dyn HelperPort,
        now: Instant,
    ) {
        let (url_path, variant) = {
            let (p, v) = cache::split_variant_key(&path);
            (p.to_string(), v)
        };
        if let (Some(entry), Ok((len, mtime))) = (self.cache.peek(&path), &stat) {
            if entry.mtime == *mtime && entry.body.len() as u64 == *len {
                self.cache.refresh_at(&path, now);
                self.stats.revalidations.fetch_add(1, Ordering::Relaxed);
                self.deliver_completion(
                    &Completion::Small(entry),
                    &path,
                    &url_path,
                    conns,
                    completed,
                    Tier::Hit,
                    now,
                );
                return;
            }
        }
        // Changed, vanished, or evicted in the meantime: the resident
        // bytes can no longer be trusted. A vanished `.gz` sibling
        // lands here too — the requeued gzip-preference load falls
        // back to the identity file.
        if self.cache.invalidate(&path) {
            self.stats.stale_evicted.fetch_add(1, Ordering::Relaxed);
            self.stats
                .cache_used_bytes
                .store(self.cache.used_bytes(), Ordering::Relaxed);
        }
        self.dispatch_job(path, JobKind::Load, variant, port);
    }

    /// Renders a completion into every waiter's output queue through
    /// the response plane, flipping them to `Writing` and appending
    /// their indices to `completed` for the driver to drive.
    /// `served_tier` is the access-log tier a body-bearing small
    /// response reports (miss for a fresh load, hit for a confirmed
    /// revalidation); `now` closes out each waiter's helper-wait
    /// interval. Each waiter gets its *own* plan — their conditional
    /// headers, ranges, and keep-alive postures all differ.
    #[allow(clippy::too_many_arguments)]
    fn deliver_completion<Io: ConnIo>(
        &mut self,
        completion: &Completion<Io::FileRef>,
        key: &str,
        url_path: &str,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        served_tier: Tier,
        now: Instant,
    ) {
        for idx in self.waiters.remove(key).unwrap_or_default() {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            if let Some(t0) = conn.wait_start.take() {
                self.stats
                    .hist_helper_wait
                    .record(stats::nanos_since(t0, now));
            }
            match &completion {
                Completion::Small(entry) => {
                    self.respond_cached(conn, entry, url_path, served_tier);
                }
                Completion::Large {
                    file,
                    len,
                    mtime,
                    variant,
                    has_gzip,
                    etag,
                    header_keep,
                    header_close,
                } => {
                    let res = Resource::File {
                        file,
                        len: *len,
                        mtime: *mtime,
                        variant: *variant,
                        has_gzip: *has_gzip,
                        etag,
                        header_keep,
                        header_close,
                    };
                    self.respond(conn, &res, url_path, Tier::Sendfile);
                }
                Completion::Fail(status, body) => {
                    queue_error(conn, *status, body.clone());
                    set_log(conn, status.code(), Tier::Error);
                    conn.state = ConnState::Writing;
                }
            }
            completed.push(idx);
        }
    }

    /// Delivers one streaming event from a dynamic worker to the
    /// (single) waiter parked on the synthetic `\0dyn:` key. `Chunk`
    /// events leave the waiter and pending entries in place — the
    /// stream is still running — while `End` retires both (the pending
    /// entry was already removed by [`Self::complete_job`]'s gate).
    /// The first event opens the response (chunked header + stream
    /// state); every chunk is framed on the spot; a clean end appends
    /// the `0\r\n\r\n` terminator; an unclean end (worker crashed)
    /// mid-stream drops terminator and connection both — chunked
    /// framing makes the truncation detectable — or, before any bytes
    /// were queued, turns into a plain 500.
    fn deliver_dynamic<Io: ConnIo>(
        &mut self,
        key: &str,
        ev: DynEvent,
        conns: &mut [Option<Conn<Io>>],
        completed: &mut Vec<usize>,
        now: Instant,
    ) {
        let ended = matches!(ev, DynEvent::End { .. });
        let waiting = if ended {
            self.waiters.remove(key).unwrap_or_default()
        } else {
            self.waiters.get(key).cloned().unwrap_or_default()
        };
        for idx in waiting {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            // Only the first event finds `wait_start` set: the
            // histogram records time-to-first-byte from the worker,
            // not per-chunk delivery.
            if let Some(start) = conn.wait_start.take() {
                self.stats
                    .hist_worker_wait
                    .record(now.duration_since(start).as_nanos() as u64);
            }
            match &ev {
                DynEvent::Chunk(bytes) => {
                    if !conn.stream_open {
                        queue_plan(conn, plan_dynamic(conn.keep_alive));
                    }
                    push_chunk(conn, bytes.clone());
                }
                DynEvent::End { clean: true } => {
                    if !conn.stream_open {
                        // Zero-chunk body: still a valid (empty)
                        // chunked response.
                        queue_plan(conn, plan_dynamic(conn.keep_alive));
                    }
                    conn.out.push_back(Bytes::from(chunked::TERMINATOR));
                    conn.stream_open = false;
                    conn.dynamic = false;
                }
                DynEvent::End { clean: false } => {
                    if conn.stream_open {
                        // Mid-body crash: no terminator, no reuse — the
                        // client sees the truncation, and the slot
                        // closes once the partial tail flushes.
                        conn.stream_open = false;
                        conn.keep_alive = false;
                    } else {
                        let body = Bytes::from(error_body(Status::InternalError));
                        queue_error(conn, Status::InternalError, body);
                        set_log(conn, Status::InternalError.code(), Tier::Error);
                    }
                    conn.dynamic = false;
                }
            }
            conn.state = ConnState::Writing;
            completed.push(idx);
        }
    }

    /// Expires a dynamic-wait deadline: the worker stayed silent past
    /// `dynamic_deadline`. Pre-header the connection gets a clean 504
    /// and the caller drives it (`true`); mid-stream the response
    /// cannot be repaired, so the caller severs the slot (`false`).
    /// Either way the waiter purge raises the job's cancel flag, which
    /// makes the helper kill — and respawn — the wedged worker.
    pub fn expire_dynamic_wait<Io: ConnIo>(
        &mut self,
        idx: usize,
        conns: &mut [Option<Conn<Io>>],
    ) -> bool {
        self.stats.dynamic_timeouts.fetch_add(1, Ordering::Relaxed);
        self.purge_waiter(idx);
        let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return false;
        };
        conn.dynamic = false;
        if conn.stream_open {
            conn.stream_open = false;
            return false;
        }
        let body = Bytes::from(error_body(Status::GatewayTimeout));
        queue_error(conn, Status::GatewayTimeout, body);
        set_log(conn, Status::GatewayTimeout.code(), Tier::Error);
        conn.state = ConnState::Writing;
        true
    }

    /// Verifies the shard's structural invariants against its
    /// connection table and timing wheel — the deterministic sim calls
    /// this after (samples of) every step; tests call it constantly.
    /// `token_of` maps a slot index to its wheel key.
    ///
    /// Checked: every waiter index refers to a live `Waiting`
    /// connection and appears on exactly one list; a path has a
    /// pending job iff it has (non-empty) waiters; every `Waiting`
    /// connection is on some waiter list; a connection carries a
    /// deadline class iff its wheel key is armed.
    pub fn check_invariants<Io: ConnIo>(
        &self,
        conns: &[Option<Conn<Io>>],
        wheel: &TimerWheel,
        token_of: impl Fn(usize) -> u64,
    ) -> Result<(), String> {
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (path, list) in &self.waiters {
            if list.is_empty() {
                return Err(format!("empty waiter list left behind for {path}"));
            }
            if !self.pending_jobs.contains_key(path) {
                return Err(format!("waiters parked on {path} with no pending job"));
            }
            for &idx in list {
                if !seen.insert(idx) {
                    return Err(format!("conn {idx} appears on two waiter lists"));
                }
                match conns.get(idx).and_then(|c| c.as_ref()) {
                    // A dynamic waiter with chunks still in flight may
                    // be `Writing` (draining queued frames) between
                    // events — `stream_open` marks it as legitimately
                    // parked on the list either way.
                    Some(c) if matches!(c.state, ConnState::Waiting) || c.stream_open => {}
                    Some(_) => {
                        return Err(format!("waiter {idx} on {path} is not in Waiting state"))
                    }
                    None => return Err(format!("waiter {idx} on {path} is an empty slot")),
                }
            }
        }
        for path in self.pending_jobs.keys() {
            if !self.waiters.contains_key(path) {
                return Err(format!(
                    "pending job for {path} with no waiters (leak: nobody can consume it)"
                ));
            }
        }
        for (idx, slot) in conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let armed = wheel.is_armed(token_of(idx));
            let class = conn.deadline != DeadlineKind::None;
            if class != armed {
                return Err(format!(
                    "conn {idx}: deadline class {:?} but wheel armed={armed}",
                    conn.deadline
                ));
            }
            if matches!(conn.state, ConnState::Waiting) && !seen.contains(&idx) {
                return Err(format!(
                    "conn {idx} is Waiting but on no waiter list (permanently parked)"
                ));
            }
        }
        Ok(())
    }
}

/// A finished helper job, rendered into whatever each waiting
/// connection needs queued.
enum Completion<F> {
    /// Small body: a cached (or at least cacheable) in-memory entry.
    Small(Arc<Entry>),
    /// Large body: a shared file handle for the sendfile window path,
    /// with the representation's identity (variant, validator) and
    /// both plain-200 header forms pre-rendered once for the whole
    /// waiter list (range/conditional responses re-render per waiter).
    Large {
        file: F,
        len: u64,
        mtime: Option<i64>,
        variant: Variant,
        has_gzip: bool,
        etag: String,
        header_keep: Bytes,
        header_close: Bytes,
    },
    Fail(Status, Bytes),
}

/// Fills in the staged access-log record's outcome fields (no-op when
/// access logging is off — `pending_log` is `None`).
fn set_log<Io: ConnIo>(conn: &mut Conn<Io>, status: u16, tier: Tier) {
    if let Some(log) = conn.pending_log.as_mut() {
        log.status = status;
        log.tier = tier;
    }
}

/// Frames one worker chunk for the wire — `size\r\n`, the bytes,
/// `\r\n`: three output segments, zero copies of the body. Empty
/// chunks are skipped (a zero-size line would terminate the chunked
/// body early).
fn push_chunk<Io: ConnIo>(conn: &mut Conn<Io>, bytes: Bytes) {
    if bytes.is_empty() {
        return;
    }
    conn.out
        .push_back(Bytes::from(chunked::size_line(bytes.len())));
    conn.out.push_back(bytes);
    conn.out.push_back(Bytes::from(chunked::CRLF));
}

pub(crate) fn queue_error<Io: ConnIo>(conn: &mut Conn<Io>, status: Status, body: Bytes) {
    let hdr = ResponseHeader::build(status, "text/html", body.len() as u64, false, true);
    conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
    if !conn.head_only {
        conn.out.push_back(body);
    }
    conn.keep_alive = false;
}
