//! The **sans-IO protocol core**: the AMPED connection state machine
//! and per-shard bookkeeping, extracted from the syscall-driven server
//! loop so one body of protocol logic can run under two drivers —
//! the real event loop in [`crate::server`] (sockets, `writev(2)`,
//! `sendfile(2)`, the shared helper-thread pool) and the deterministic
//! simulation in [`crate::sim`] (in-memory endpoints, simulated time,
//! scheduled fault injection, millions of replayed connections).
//!
//! The core speaks through two narrow traits and two existing seams:
//!
//! * [`ConnIo`] — everything the state machine ever asks of a
//!   transport: `read`, gathered `writev`, and one `sendfile` chunk
//!   against an opaque [`ConnIo::FileRef`]. The real driver implements
//!   it over a nonblocking `TcpStream` (with `FileRef = Arc<File>`);
//!   the sim implements it over byte queues with windows and injected
//!   partial writes (with a value-type file handle).
//! * [`HelperPort`] — how the core dispatches disk work. The core
//!   submits a [`HelperJob`] and later receives a [`Done`]; whether a
//!   helper thread pool or a simulated-latency scheduler sits behind
//!   the port is the driver's business.
//! * the [`crate::event::EventBackend`] and [`crate::timer::TimerWheel`]
//!   seams are unchanged: readiness and deadlines stay driver-owned,
//!   with the core exposing [`machine::desired_interest`] and
//!   [`machine::sync_deadline`] so both drivers reconcile them the
//!   same way.
//!
//! Layout: [`machine`] holds the per-connection state machine
//! ([`machine::Conn`], flush/gather/advance, deadline sync); [`shard`]
//! holds the per-shard protocol state ([`shard::ShardCore`]: content
//! cache, miss coalescing, job cancellation, reload epochs, drain) and
//! the request/completion transitions. Nothing in this module performs
//! a syscall or reads a clock — every instant is a parameter.

pub mod machine;
pub mod plan;
pub mod shard;

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use machine::{Conn, ConnState, DeadlineKind, Drive};
pub use plan::{BodySource, RequestCond, Resource, ResponsePlan};
pub use shard::ShardCore;

use crate::cache::Variant;
use crate::stats::Histogram;

/// The transport seam: every I/O operation the connection state
/// machine performs, with nonblocking semantics — `WouldBlock` means
/// "retry when the driver says so", exactly as on a nonblocking
/// socket. Implementations must never block.
pub trait ConnIo {
    /// An opaque handle to a large body served without materializing
    /// its bytes in the core (`Arc<File>` for the real `sendfile(2)`
    /// path; a value type in the sim). `Clone` because one file can be
    /// mid-stream on many connections at once.
    type FileRef: Clone;

    /// Reads request bytes; `Ok(0)` is peer EOF.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Gathered write of the queued response segments; returns bytes
    /// accepted (possibly a partial write mid-iovec).
    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize>;

    /// Transmits up to `max` bytes of `file` starting at `*offset`,
    /// advancing `*offset` past the bytes sent. `Ok(0)` means the file
    /// ended early (it shrank after stat — a protocol-fatal condition).
    fn sendfile(&mut self, file: &Self::FileRef, offset: &mut u64, max: u64) -> io::Result<usize>;
}

/// The disk seam: the core submits jobs, the driver (helper pool or
/// simulated disk) executes them and feeds the resulting [`Done`] back
/// into [`shard::ShardCore::complete_job`].
pub trait HelperPort {
    /// Dispatches one open/read (or open/fstat) job. Must not block.
    fn submit(&mut self, job: HelperJob);
}

/// What a helper does for a job: read the file, or merely re-stat it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Open and read (or open-for-`sendfile`) — a cache miss.
    Load,
    /// Open and `fstat` only — a cache hit past its revalidation TTL;
    /// the shard compares the result against the cached entry.
    Revalidate,
    /// A dynamic-tier request: hand the URL path to a persistent
    /// application worker and stream its output back as [`DynEvent`]s.
    /// Unlike the filesystem kinds this job produces *multiple*
    /// completions under one token — every chunk the worker emits,
    /// then a terminal [`DynEvent::End`]. Never coalesced and never
    /// cached; `fs_path` carries the request's URL path verbatim and
    /// `path` a synthetic per-dispatch waiter key.
    Dynamic,
}

/// One unit of disk work dispatched through a [`HelperPort`].
pub struct HelperJob {
    /// Variant-cache key (the waiter-coalescing key): the URL path for
    /// identity, [`crate::cache::variant_key`]'s marked form for gzip.
    pub path: String,
    /// Filesystem path of the **identity** representation; executors
    /// derive the `.gz` sibling path from it when the job concerns the
    /// gzip variant.
    pub fs_path: PathBuf,
    pub kind: JobKind,
    /// Which representation the job concerns. For [`JobKind::Load`]
    /// this is a *preference*: `Gzip` means "probe the `.gz` sibling,
    /// serve it if present, fall back to identity" — the result
    /// reports which variant actually loaded. For
    /// [`JobKind::Revalidate`] it is exact (a gzip entry re-stats the
    /// sibling file).
    pub variant: Variant,
    /// Read the body into memory only when the representation is at
    /// most this many bytes; larger files come back as an open handle
    /// for the `sendfile` window path. The value is core policy
    /// (`ProtoConfig::sendfile_threshold`) carried on the job so
    /// executors stay mechanical — no driver consults the config.
    pub inline_max: u64,
    /// The dispatching shard's reload epoch; echoed back on the
    /// [`Done`] so a completion that raced a SIGHUP reload can be
    /// served to its waiters without poisoning the fresh cache.
    pub epoch: u64,
    /// Per-dispatch token, echoed back on the [`Done`]. The shard
    /// accepts a completion only while the *same* dispatch is still
    /// pending — a completion surviving past a cancellation (or a
    /// newer dispatch for the same path) is dropped wholesale.
    pub token: u64,
    /// Cooperative cancellation flag, set when the job's last waiter
    /// is reaped: an executor that observes it before doing the disk
    /// work skips the job entirely (the CGI-tier prerequisite — a
    /// long-running worker must be stoppable, not merely ignorable).
    pub cancel: Arc<AtomicBool>,
}

impl HelperJob {
    /// Whether this job was cancelled after dispatch. Executors check
    /// before (and long-running ones, during) the work; a cancelled
    /// job needs no completion — its pending entry is already gone.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }
}

/// What a job execution hands back for a readable file: either the
/// bytes themselves (small representation, destined for the content
/// cache — `len <= HelperJob::inline_max`) or an opaque file handle
/// plus its stat'ed length (large representation, destined for the
/// `sendfile` window path — the shard never sees the body at all).
/// Both carry the fstat'ed mtime so responses advertise
/// `Last-Modified` and conditional requests can be answered `304`.
#[derive(Debug)]
pub enum FileData<F> {
    Bytes {
        body: Vec<u8>,
        mtime: Option<i64>,
    },
    Fd {
        file: F,
        len: u64,
        mtime: Option<i64>,
    },
}

/// A [`JobKind::Load`] execution's full result: which representation
/// actually loaded (a gzip *preference* falls back to identity when no
/// sibling exists), its payload, and whether a `.gz` sibling was seen
/// — the identity entry records that to emit `Vary` and to route
/// gzip-accepting clients.
#[derive(Debug)]
pub struct LoadResult<F> {
    pub data: FileData<F>,
    /// The representation `data` holds.
    pub variant: Variant,
    /// Whether a `.gz` sibling existed at load time.
    pub has_gzip: bool,
}

/// One event in a dynamic job's completion stream. A [`JobKind::Dynamic`]
/// job delivers zero or more `Chunk`s followed by exactly one `End`,
/// all under the same dispatch token; the pending entry survives until
/// the `End` (or a cancellation) retires it.
#[derive(Debug, Clone)]
pub enum DynEvent {
    /// One body chunk produced by the worker, rendered on the wire as
    /// one `Transfer-Encoding: chunked` frame.
    Chunk(bytes::Bytes),
    /// The worker finished. `clean` means the protocol's terminal
    /// frame was seen (the response ends with the zero-length chunk);
    /// `!clean` means the worker crashed or was killed mid-body — the
    /// response is truncated without a terminal frame (pre-header, it
    /// becomes a `500`).
    End { clean: bool },
}

/// A completion's payload, matching the job's [`JobKind`].
pub enum DoneData<F> {
    /// [`JobKind::Load`]: the file's contents (or open handle), ready
    /// to render and cache.
    Loaded(io::Result<LoadResult<F>>),
    /// [`JobKind::Revalidate`]: the file's current (length, mtime)
    /// from a bare open+`fstat` — no bytes read.
    Stat(io::Result<(u64, Option<i64>)>),
    /// [`JobKind::Dynamic`]: one event of the worker's output stream.
    Dynamic(DynEvent),
}

/// A finished helper job, routed back to the dispatching shard.
pub struct Done<F> {
    pub path: String,
    pub data: DoneData<F>,
    /// Echo of [`HelperJob::epoch`] — see there.
    pub epoch: u64,
    /// Echo of [`HelperJob::token`] — see there.
    pub token: u64,
}

/// The protocol-relevant slice of the server configuration: what the
/// core needs to route requests and classify deadlines, and nothing a
/// driver owns (shard counts, socket options, backend choice).
#[derive(Debug, Clone)]
pub struct ProtoConfig {
    /// Directory served as the document root (the sim resolves
    /// against its simulated filesystem; the URL-path join rule is the
    /// core's either way).
    pub docroot: PathBuf,
    /// Keep-alive idle deadline (`None` disables the class).
    pub idle_timeout: Option<Duration>,
    /// Slow-header deadline, armed once per request.
    pub header_read_timeout: Option<Duration>,
    /// Write-progress deadline, re-armed on forward progress.
    pub write_stall_timeout: Option<Duration>,
    /// Helper-completion deadline for `Waiting` connections.
    pub helper_wait_timeout: Option<Duration>,
    /// Content-cache revalidation TTL (`None` trusts entries forever).
    pub cache_revalidate_ttl: Option<Duration>,
    /// The two-tier body policy, owned by the core: representations at
    /// most this many bytes are cached pre-rendered and sent with
    /// `writev`; larger ones stream through the `sendfile` window seam.
    /// Carried onto every [`HelperJob`] as `inline_max`.
    pub sendfile_threshold: u64,
    /// Serve `GET /.flash/metrics` (Prometheus text) and
    /// `/.flash/stats` (JSON) in-band on the normal parse/respond
    /// path. Off by default; endpoint responses count under
    /// [`ShardStats::metrics_requests`], not `requests`.
    pub metrics_endpoint: bool,
    /// URL-path prefix routed to the dynamic tier (persistent
    /// application workers, chunked responses). `None` disables the
    /// tier. The `/.flash/` endpoints always take precedence, even
    /// under a prefix of `/`.
    pub dynamic_prefix: Option<String>,
    /// Per-request worker deadline for `Waiting` dynamic connections,
    /// re-armed on every chunk: a wedged worker yields a `504` (or a
    /// severed stream once headers are out) and the worker is killed
    /// and respawned. `None` disables the class.
    pub dynamic_deadline: Option<Duration>,
    /// Stage an [`crate::stats::AccessRecord`] per completed response
    /// in [`ShardCore::access_log`] for the driver to drain and write.
    pub access_log: bool,
}

/// Live counters for one event-loop shard (real or simulated —
/// atomics so the real driver's cross-thread readers need no locks;
/// the sim reads them single-threaded).
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Completed responses (any status).
    pub requests: AtomicU64,
    /// Connections dealt to this shard by the acceptor.
    pub accepted: AtomicU64,
    /// Jobs this shard dispatched to the helper pool (content-cache
    /// misses, after coalescing).
    pub helper_jobs: AtomicU64,
    /// Responses served from this shard's content cache.
    pub cache_hits: AtomicU64,
    /// Gathered `writev(2)` calls issued on the send path.
    pub writev_calls: AtomicU64,
    /// `sendfile(2)` calls issued on the large-body path.
    pub sendfile_calls: AtomicU64,
    /// Body bytes transmitted via `sendfile(2)` (page cache → socket,
    /// never through userspace).
    pub bytes_sendfile: AtomicU64,
    /// Gauge: bytes currently resident in this shard's content cache
    /// (refreshed after every insert).
    pub cache_used_bytes: AtomicU64,
    /// Readiness `wait` calls this shard has issued.
    pub wait_calls: AtomicU64,
    /// Readiness events those waits returned (the ratio
    /// `wait_events / wait_calls` is the batching gauge exposed as
    /// [`crate::server::ServerStats::events_per_wait`]).
    pub wait_events: AtomicU64,
    /// Keep-alive connections closed by the idle deadline (no request
    /// in flight).
    pub idle_reaped: AtomicU64,
    /// Connections closed by the header-read deadline (slow or silent
    /// request senders).
    pub read_timeouts: AtomicU64,
    /// Connections closed by the write-progress deadline (peers that
    /// stopped draining a response).
    pub write_stall_timeouts: AtomicU64,
    /// `304 Not Modified` responses served to conditional requests.
    pub not_modified: AtomicU64,
    /// Requests carrying a well-formed single-range `Range` header
    /// that reached a file response (satisfiable or not).
    pub range_requests: AtomicU64,
    /// `416 Range Not Satisfiable` responses (`Content-Range: bytes
    /// */len`).
    pub range_unsatisfiable: AtomicU64,
    /// Times this shard's reuseport listener was throttled by fd
    /// exhaustion (`EMFILE`/`ENFILE`) or another accept failure — read
    /// interest dropped, re-armed once a connection slot frees.
    pub accept_backpressure: AtomicU64,
    /// Cache hits past the revalidation TTL whose re-stat confirmed
    /// the entry still matches the file (served, TTL clock restarted).
    pub revalidations: AtomicU64,
    /// Cache entries evicted because a revalidation re-stat saw a
    /// different mtime or size (the file changed or vanished) — the
    /// stale bytes were dropped instead of served.
    pub stale_evicted: AtomicU64,
    /// `Waiting` connections closed by the helper-completion deadline
    /// — their helper or disk wedged; the late completion, if it ever
    /// arrives, is discarded by its stale token.
    pub helper_wait_timeouts: AtomicU64,
    /// In-flight helper jobs cancelled because their last waiter was
    /// reaped: the cancel flag was raised and the pending entry
    /// dropped, so the job is skipped if still queued and its
    /// completion (if it already ran) dies on token mismatch — never
    /// populating the cache, never waking a reused slot.
    pub jobs_cancelled: AtomicU64,
    /// Gauge: 1 while this shard is in drain mode (listener quiesced,
    /// serving out existing connections), 0 otherwise.
    pub draining: AtomicU64,
    /// Connections retired *by the drain*: idle keep-alive
    /// connections closed at drain entry plus keep-alive connections
    /// closed after their final response went out whole.
    pub drained_conns: AtomicU64,
    /// Responses served by the `/.flash/metrics` and `/.flash/stats`
    /// endpoints (kept out of `requests` so workload counters stay
    /// exact under scraping).
    pub metrics_requests: AtomicU64,
    /// Requests routed to the dynamic tier (matched the configured
    /// prefix), whether they completed, timed out, or crashed.
    pub dynamic_requests: AtomicU64,
    /// Application workers killed and replaced: crashes (EOF before
    /// the protocol's END) plus deadline kills of wedged workers.
    pub worker_respawns: AtomicU64,
    /// Dynamic requests that hit `dynamic_deadline`: answered `504`
    /// before headers went out, severed mid-stream after.
    pub dynamic_timeouts: AtomicU64,
    /// Event-loop iterations whose non-wait time exceeded the
    /// configured `loop_stall_threshold` — the direct "did the AMPED
    /// loop block?" probe.
    pub loop_stalls: AtomicU64,
    /// Gauge (max-merged): high-water mark of per-iteration non-wait
    /// loop time, in microseconds.
    pub loop_stall_max_us: AtomicU64,
    /// Cumulative microseconds the loop spent blocked in readiness
    /// wait (the only phase *allowed* to block).
    pub phase_wait_us: AtomicU64,
    /// Cumulative microseconds spent accepting connections.
    pub phase_accept_us: AtomicU64,
    /// Cumulative microseconds spent driving readiness events.
    pub phase_read_us: AtomicU64,
    /// Cumulative microseconds spent driving connections whose helper
    /// completion just arrived.
    pub phase_respond_us: AtomicU64,
    /// Cumulative microseconds spent applying helper completions.
    pub phase_completions_us: AtomicU64,
    /// Cumulative microseconds spent expiring deadline timers.
    pub phase_timers_us: AtomicU64,
    /// Request latency: request parsed → final response byte queued.
    pub hist_request: Histogram,
    /// Time to first byte: request parsed → first response byte
    /// accepted by the transport.
    pub hist_ttfb: Histogram,
    /// Helper-job wait: connection parked `Waiting` → completion
    /// delivered.
    pub hist_helper_wait: Histogram,
    /// Worker wait: dynamic request dispatched → first worker event
    /// (first chunk or an immediate end) delivered.
    pub hist_worker_wait: Histogram,
    /// Connection lifetime: accept → close, any close reason.
    pub hist_lifetime: Histogram,
}
