//! Persistent application-worker pool — the dynamic tier's backend
//! (the paper's §5.6 CGI successor: long-lived worker *processes*
//! reused across requests instead of a fork+exec per hit).
//!
//! Each worker is spawned **once** over a `socketpair(2)`
//! ([`std::os::unix::net::UnixStream::pair`]) with both stdin and
//! stdout bound to the child end, parked in an idle list between
//! requests, and killed + replaced only when it crashes, corrupts the
//! framing, or is cancelled mid-exchange (a kill is the only way to
//! resynchronize a stream protocol with no request ids). The helper
//! pool runs the exchange — the event-loop shards never block on a
//! worker, exactly as they never block on disk.
//!
//! ## Wire protocol (server ↔ worker, newline-framed)
//!
//! ```text
//! server → worker:   GET <path>\n
//! worker → server:   DATA <len>\n<len raw bytes>     (zero or more)
//!                    END\n
//! ```
//!
//! Every `DATA` frame becomes one HTTP chunk on the wire
//! ([`crate::conn::DynEvent::Chunk`]); `END` terminates the exchange
//! cleanly and returns the worker to the idle list. EOF or a garbled
//! frame before `END` is a crash: the worker is killed and the
//! response ends unclean ([`crate::conn::DynEvent::End`] with
//! `clean: false` — a detectable truncation, because chunked framing
//! never sees its `0\r\n\r\n` terminator).

use std::io::{self, Read, Write};
use std::os::fd::OwnedFd;
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

use bytes::Bytes;

use crate::conn::{DynEvent, HelperJob};

/// Cadence at which a blocked frame read wakes to check the job's
/// cancellation flag — the path by which a shard's `dynamic_deadline`
/// expiry (or a vanished client) reaches a helper mid-exchange.
const CANCEL_POLL: Duration = Duration::from_millis(50);

/// Upper bound on a single `DATA` frame. A length past this is treated
/// as framing corruption (worker killed), not an allocation request.
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// The built-in worker program: a POSIX `sh` loop that answers every
/// request with one `DATA` frame echoing the path, then `END`. Real
/// deployments point [`crate::NetConfig::dynamic_command`] at their own
/// binary speaking the same protocol; this default exists so the
/// dynamic tier works — and is testable — out of the box.
pub const DEFAULT_WORKER_SCRIPT: &str = r#"while read -r m p; do
  b="hello from worker: $p"
  printf 'DATA %s\n%s' "${#b}" "$b"
  printf 'END\n'
done"#;

/// One live worker process and the parent's end of its socketpair.
pub(crate) struct Worker {
    pub(crate) child: Child,
    pub(crate) sock: UnixStream,
}

impl Worker {
    fn spawn(command: &[String]) -> io::Result<Worker> {
        if command.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty worker command",
            ));
        }
        let (ours, theirs) = UnixStream::pair()?;
        // Both child stdio ends are dups of the same socket — one
        // bidirectional pipe, the socketpair(2) shape the paper's
        // persistent CGI processes used.
        let stdin_fd = OwnedFd::from(theirs.try_clone()?);
        let stdout_fd = OwnedFd::from(theirs);
        let child = Command::new(&command[0])
            .args(&command[1..])
            .stdin(Stdio::from(stdin_fd))
            .stdout(Stdio::from(stdout_fd))
            .spawn()?;
        ours.set_read_timeout(Some(CANCEL_POLL))?;
        Ok(Worker { child, sock: ours })
    }

    /// Whether the process has already exited (a dead idle worker is
    /// discarded at checkout instead of being handed a request).
    fn exited(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)) | Err(_))
    }
}

impl Drop for Worker {
    // Kill + wait on every drop: no zombies, whether the worker is
    // retired for crash, cancellation, or pool teardown.
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The shared pool: a command line and the idle list. Workers are
/// spawned lazily (first dynamic request), reused FIFO-ish (LIFO,
/// actually — the hottest worker stays hottest), and never counted
/// against a cap: the helper pool's own size bounds concurrent
/// exchanges, so at most `helpers` workers can be checked out at once.
pub struct WorkerPool {
    command: Vec<String>,
    idle: Mutex<Vec<Worker>>,
}

impl WorkerPool {
    pub fn new(command: Vec<String>) -> WorkerPool {
        WorkerPool {
            command,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The built-in echo worker (see [`DEFAULT_WORKER_SCRIPT`]).
    pub fn default_command() -> Vec<String> {
        vec![
            "/bin/sh".to_string(),
            "-c".to_string(),
            DEFAULT_WORKER_SCRIPT.to_string(),
        ]
    }

    /// Pops an idle worker (discarding any that died while parked —
    /// each discard is counted in the returned tally) or spawns a
    /// fresh one.
    pub(crate) fn checkout(&self) -> (io::Result<Worker>, u64) {
        let mut dead = 0;
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        while let Some(mut w) = idle.pop() {
            if w.exited() {
                dead += 1;
                continue;
            }
            return (Ok(w), dead);
        }
        drop(idle);
        (Worker::spawn(&self.command), dead)
    }

    pub(crate) fn checkin(&self, worker: Worker) {
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(worker);
    }
}

/// What one attempt to pull bytes from the worker produced.
enum Pull {
    Data,
    Eof,
    Stopped,
}

/// A hand-rolled line/frame reader over the worker socket. Not a
/// `BufReader`: the cancel-poll read timeout can land mid-line, and
/// this buffer must survive that timeout intact. The `stop` predicate
/// is checked on every poll tick — the helper pool plugs in the job's
/// cancel flag, the MT driver its silence deadline.
pub(crate) struct FrameReader<'a> {
    sock: &'a UnixStream,
    stop: &'a dyn Fn() -> bool,
    buf: Vec<u8>,
}

impl<'a> FrameReader<'a> {
    pub(crate) fn new(sock: &'a UnixStream, stop: &'a dyn Fn() -> bool) -> FrameReader<'a> {
        FrameReader {
            sock,
            stop,
            buf: Vec::new(),
        }
    }

    /// Blocks (on the cancel-poll cadence) until at least one more
    /// byte is buffered, EOF, or the stop predicate fires.
    fn fill(&mut self) -> io::Result<Pull> {
        let mut tmp = [0u8; 4096];
        loop {
            match (&mut self.sock).read(&mut tmp) {
                Ok(0) => return Ok(Pull::Eof),
                Ok(n) => {
                    self.buf.extend_from_slice(&tmp[..n]);
                    return Ok(Pull::Data);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if (self.stop)() {
                        return Ok(Pull::Stopped);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// One `\n`-terminated line (returned without the newline), or
    /// `None` on EOF/stop/garbage-oversized-line.
    pub(crate) fn read_line(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                return Ok(Some(line));
            }
            if self.buf.len() > 4096 {
                // A kilobyte-scale "line" is framing corruption, not a
                // header — stop buffering it.
                return Ok(None);
            }
            match self.fill()? {
                Pull::Data => {}
                Pull::Eof | Pull::Stopped => return Ok(None),
            }
        }
    }

    /// Exactly `len` payload bytes, or `None` on EOF/stop.
    pub(crate) fn read_exact(&mut self, len: usize) -> io::Result<Option<Vec<u8>>> {
        while self.buf.len() < len {
            match self.fill()? {
                Pull::Data => {}
                Pull::Eof | Pull::Stopped => return Ok(None),
            }
        }
        let rest = self.buf.split_off(len);
        Ok(Some(std::mem::replace(&mut self.buf, rest)))
    }

    pub(crate) fn stopped(&self) -> bool {
        (self.stop)()
    }
}

/// Runs one dynamic exchange end to end on the calling (helper)
/// thread: checkout, request line, frame loop, checkin-or-kill.
///
/// `emit` is called once per streaming event, in order; a clean
/// exchange ends with `End { clean: true }`, a crash with
/// `End { clean: false }`, and a **cancelled** exchange emits nothing
/// further at all — the shard already purged the waiter, so any late
/// completion would die at the token gate anyway.
///
/// Returns how many workers this call retired (killed or found dead);
/// the caller feeds the tally into the `worker_respawns` counter —
/// every retirement is followed by a respawn on the next checkout.
pub fn run_job(pool: &WorkerPool, job: &HelperJob, emit: &mut dyn FnMut(DynEvent)) -> u64 {
    let (worker, mut retired) = pool.checkout();
    let mut worker = match worker {
        Ok(w) => w,
        Err(_) => {
            // Cannot even spawn the worker program: fail the request
            // (a pre-header unclean end renders as a 500).
            emit(DynEvent::End { clean: false });
            return retired;
        }
    };
    let line = format!("GET {}\n", job.fs_path.display());
    if worker.sock.write_all(line.as_bytes()).is_err() {
        drop(worker); // kills
        emit(DynEvent::End { clean: false });
        return retired + 1;
    }
    let stop = || job.is_cancelled();
    let mut reader = FrameReader::new(&worker.sock, &stop);
    // Loop exits (EOF, cancel, oversized line, unparseable header, or
    // a hard socket error) all mean the worker cannot be trusted to be
    // frame-aligned again — fall through to the kill below.
    while let Ok(Some(line)) = reader.read_line() {
        if line == b"END" {
            drop(reader);
            pool.checkin(worker);
            emit(DynEvent::End { clean: true });
            return retired;
        }
        let Some(len) = parse_data_header(&line) else {
            break;
        };
        match reader.read_exact(len) {
            Ok(Some(body)) => emit(DynEvent::Chunk(Bytes::from(body))),
            Ok(None) | Err(_) => break,
        }
    }
    let cancelled = reader.stopped();
    drop(reader);
    drop(worker); // kills — the only way to resync the framing
    retired += 1;
    if !cancelled {
        emit(DynEvent::End { clean: false });
    }
    retired
}

/// Parses `DATA <len>` (ASCII decimal, bounded by [`MAX_FRAME`]).
pub(crate) fn parse_data_header(line: &[u8]) -> Option<usize> {
    let rest = line.strip_prefix(b"DATA ")?;
    let s = std::str::from_utf8(rest).ok()?;
    let len: usize = s.trim().parse().ok()?;
    (len <= MAX_FRAME).then_some(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Variant;
    use crate::conn::JobKind;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn dyn_job(path: &str) -> HelperJob {
        HelperJob {
            path: "\0dyn:1".to_string(),
            fs_path: PathBuf::from(path),
            kind: JobKind::Dynamic,
            variant: Variant::Identity,
            inline_max: 0,
            epoch: 0,
            token: 1,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    fn collect(pool: &WorkerPool, job: &HelperJob) -> (Vec<DynEvent>, u64) {
        let mut events = Vec::new();
        let retired = run_job(pool, job, &mut |ev| events.push(ev));
        (events, retired)
    }

    #[test]
    fn default_worker_round_trips_and_is_reused() {
        let pool = WorkerPool::new(WorkerPool::default_command());
        for i in 0..3 {
            let (events, retired) = collect(&pool, &dyn_job(&format!("/app/{i}")));
            assert_eq!(retired, 0, "clean exchange must not retire the worker");
            assert!(matches!(events.last(), Some(DynEvent::End { clean: true })));
            let body: Vec<u8> = events
                .iter()
                .filter_map(|e| match e {
                    DynEvent::Chunk(b) => Some(b.to_vec()),
                    _ => None,
                })
                .flatten()
                .collect();
            assert_eq!(body, format!("hello from worker: /app/{i}").into_bytes());
        }
        // All three requests were served by the one persistent worker.
        assert_eq!(pool.idle.lock().unwrap().len(), 1);
    }

    #[test]
    fn crash_mid_body_ends_unclean_and_retires_the_worker() {
        // One DATA frame, then exit without END: a mid-stream crash.
        let pool = WorkerPool::new(vec![
            "/bin/sh".into(),
            "-c".into(),
            "read -r m p; printf 'DATA 5\\nhello'; exit 7".into(),
        ]);
        let (events, retired) = collect(&pool, &dyn_job("/app/x"));
        assert_eq!(retired, 1);
        assert!(matches!(events[0], DynEvent::Chunk(ref b) if &b[..] == b"hello"));
        assert!(matches!(
            events.last(),
            Some(DynEvent::End { clean: false })
        ));
        assert!(pool.idle.lock().unwrap().is_empty());
        // The pool recovers: the next request spawns a fresh worker.
        let pool2 = WorkerPool::new(WorkerPool::default_command());
        let (events, _) = collect(&pool2, &dyn_job("/app/y"));
        assert!(matches!(events.last(), Some(DynEvent::End { clean: true })));
    }

    #[test]
    fn garbage_framing_is_a_crash() {
        let pool = WorkerPool::new(vec![
            "/bin/sh".into(),
            "-c".into(),
            "read -r m p; printf 'WAT\\n'; sleep 60".into(),
        ]);
        let (events, retired) = collect(&pool, &dyn_job("/app/x"));
        assert_eq!(retired, 1);
        assert!(matches!(
            events.last(),
            Some(DynEvent::End { clean: false })
        ));
    }

    #[test]
    fn cancellation_kills_without_emitting() {
        // A wedged worker: answers nothing, sleeps. The cancel flag is
        // pre-raised, so the first cancel-poll tick aborts the
        // exchange without emitting any event.
        let pool = WorkerPool::new(vec!["/bin/sh".into(), "-c".into(), "sleep 60".into()]);
        let job = dyn_job("/app/wedge");
        job.cancel.store(true, Ordering::Release);
        let (events, retired) = collect(&pool, &job);
        assert!(events.is_empty(), "cancelled exchange must stay silent");
        assert_eq!(retired, 1);
        assert!(pool.idle.lock().unwrap().is_empty());
    }

    #[test]
    fn dead_idle_worker_is_discarded_at_checkout() {
        let pool = WorkerPool::new(WorkerPool::default_command());
        let (events, _) = collect(&pool, &dyn_job("/a"));
        assert!(matches!(events.last(), Some(DynEvent::End { clean: true })));
        // Kill the parked worker behind the pool's back.
        {
            let mut idle = pool.idle.lock().unwrap();
            let w = &mut idle[0];
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
        let (events, retired) = collect(&pool, &dyn_job("/b"));
        assert_eq!(retired, 1, "the dead idle worker counts as a retirement");
        assert!(matches!(events.last(), Some(DynEvent::End { clean: true })));
    }
}
