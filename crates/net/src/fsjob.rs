//! The **shared real-filesystem job executor**: one mechanical
//! implementation of [`HelperJob`] execution used by every real
//! driver — the AMPED helper pool ([`crate::server`]) and the
//! thread-per-connection server ([`crate::mt`]) — so the two can never
//! drift on tier selection, variant negotiation, or TOCTOU hygiene.
//! The deterministic sim implements the same mechanics against its
//! in-memory filesystem.
//!
//! "Mechanical" means: no policy lives here. The tier threshold rides
//! on the job as [`HelperJob::inline_max`]; the wanted representation
//! rides as [`HelperJob::variant`]. This module just opens files and
//! obeys.
//!
//! TOCTOU rule (inherited from the old helper loop): the file is
//! opened *first* and everything after that — the regular-file check,
//! the length, the bytes read or the fd handed out — comes from the
//! open descriptor (`fstat` semantics). A `fs::metadata` + `fs::read`
//! pair races with path swaps: the metadata could describe one inode
//! and the read return another.

use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::cache::Variant;
use crate::conn::{DoneData, FileData, HelperJob, JobKind, LoadResult};

/// The `.gz` sibling of an identity filesystem path (`a/b.html` →
/// `a/b.html.gz`) — the on-disk layout of the precompressed variant.
pub fn gzip_sibling(p: &Path) -> PathBuf {
    let mut os = p.as_os_str().to_os_string();
    os.push(".gz");
    PathBuf::from(os)
}

/// A file's mtime as unix seconds, if the filesystem reports one that
/// fits (pre-1970 mtimes are reported as `None` rather than lied
/// about — `Last-Modified` simply goes unsent).
pub fn unix_mtime(meta: &std::fs::Metadata) -> Option<i64> {
    let t = meta.modified().ok()?;
    let d = t.duration_since(std::time::UNIX_EPOCH).ok()?;
    Some(d.as_secs() as i64)
}

/// Executes one helper job against the real filesystem, producing the
/// completion payload for [`crate::conn::Done`].
pub fn exec_job(job: &HelperJob) -> DoneData<Arc<File>> {
    match job.kind {
        JobKind::Load => DoneData::Loaded(exec_load(job)),
        JobKind::Revalidate => DoneData::Stat(exec_stat(job)),
        // Dynamic jobs are multi-event streams run by the worker pool
        // (`crate::appworker`); the helper loop intercepts them before
        // this single-shot executor. Reaching here means a driver
        // forgot that interception — fail the request, don't guess.
        JobKind::Dynamic => DoneData::Loaded(Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "dynamic job reached the filesystem executor",
        ))),
    }
}

/// Opens a regular file, refusing directories and anything unreadable;
/// returns the descriptor with its fstat'ed length and mtime.
fn open_regular(p: &Path) -> io::Result<(File, u64, Option<i64>)> {
    let file = File::open(p)?;
    let meta = file.metadata()?; // fstat on the open fd — no second path lookup
    if !meta.is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "not a regular file",
        ));
    }
    let len = meta.len();
    let mtime = unix_mtime(&meta);
    Ok((file, len, mtime))
}

/// Applies the job's tier rule to an open file: bodies at most
/// `inline_max` bytes come back as bytes (destined for the content
/// cache and the `writev` path), larger ones as the open descriptor
/// for the `sendfile` window path — a multi-gigabyte file never
/// materializes in executor memory.
fn tiered(
    file: File,
    len: u64,
    mtime: Option<i64>,
    inline_max: u64,
) -> io::Result<FileData<Arc<File>>> {
    if len > inline_max {
        return Ok(FileData::Fd {
            file: Arc::new(file),
            len,
            mtime,
        });
    }
    let mut body = Vec::with_capacity(len as usize);
    (&file).read_to_end(&mut body)?;
    Ok(FileData::Bytes { body, mtime })
}

/// Executes a [`JobKind::Load`]: opens the identity file, negotiates
/// the variant, and reports which representation actually loaded.
///
/// The identity file is opened *first* even for a gzip-preference job:
/// a missing resource must `404` identically for gzip-accepting and
/// plain clients, and a sibling-only `.gz` (no original) is
/// deliberately never served. A gzip preference then probes the
/// sibling and serves it when present — under the `.gz` file's **own**
/// length and mtime (its `Content-Length`, `Last-Modified`, and `ETag`
/// describe the bytes actually sent) — falling back to identity when
/// absent. An identity load still stats the sibling so the entry can
/// advertise `Vary: Accept-Encoding` and route future gzip-accepting
/// clients. Sibling discovery happens only here, at load time: a
/// `.gz` added or removed afterwards is picked up by the next
/// revalidation or cache miss, not mid-entry.
pub fn exec_load(job: &HelperJob) -> io::Result<LoadResult<Arc<File>>> {
    let (id_file, id_len, id_mtime) = open_regular(&job.fs_path)?;
    let sibling = gzip_sibling(&job.fs_path);
    if job.variant.is_gzip() {
        if let Ok((gz_file, gz_len, gz_mtime)) = open_regular(&sibling) {
            return Ok(LoadResult {
                data: tiered(gz_file, gz_len, gz_mtime, job.inline_max)?,
                variant: Variant::Gzip,
                has_gzip: true,
            });
        }
        return Ok(LoadResult {
            data: tiered(id_file, id_len, id_mtime, job.inline_max)?,
            variant: Variant::Identity,
            has_gzip: false,
        });
    }
    let has_gzip = std::fs::metadata(&sibling)
        .map(|m| m.is_file())
        .unwrap_or(false);
    Ok(LoadResult {
        data: tiered(id_file, id_len, id_mtime, job.inline_max)?,
        variant: Variant::Identity,
        has_gzip,
    })
}

/// Executes a [`JobKind::Revalidate`]: the cheap open + `fstat` probe,
/// no bytes read, against the file the entry's variant actually came
/// from (the `.gz` sibling for gzip entries). Returns the current
/// (length, mtime) for comparison against the cached entry.
pub fn exec_stat(job: &HelperJob) -> io::Result<(u64, Option<i64>)> {
    let sibling;
    let p: &Path = if job.variant.is_gzip() {
        sibling = gzip_sibling(&job.fs_path);
        &sibling
    } else {
        &job.fs_path
    };
    let (_file, len, mtime) = open_regular(p)?;
    Ok((len, mtime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A throwaway directory under the OS temp root (the workspace has
    /// no tempdir crate), removed on drop.
    struct TestDir(PathBuf);

    impl TestDir {
        fn new(tag: &str) -> TestDir {
            let p = std::env::temp_dir().join(format!("flash-fsjob-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TestDir(p)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn job(dir: &Path, name: &str, kind: JobKind, variant: Variant, inline_max: u64) -> HelperJob {
        HelperJob {
            path: format!("/{name}"),
            fs_path: dir.join(name),
            kind,
            variant,
            inline_max,
            epoch: 0,
            token: 1,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn gzip_preference_serves_sibling_and_falls_back() {
        let dir = TestDir::new("gzpref");
        std::fs::write(dir.path().join("a.html"), b"identity-bytes").unwrap();
        std::fs::write(dir.path().join("a.html.gz"), b"gz").unwrap();
        std::fs::write(dir.path().join("b.html"), b"plain-only").unwrap();

        let got = exec_load(&job(
            dir.path(),
            "a.html",
            JobKind::Load,
            Variant::Gzip,
            1024,
        ))
        .unwrap();
        assert_eq!(got.variant, Variant::Gzip);
        assert!(got.has_gzip);
        match got.data {
            FileData::Bytes { body, .. } => assert_eq!(body, b"gz"),
            _ => panic!("2 bytes must come back inline"),
        }

        let got = exec_load(&job(
            dir.path(),
            "b.html",
            JobKind::Load,
            Variant::Gzip,
            1024,
        ))
        .unwrap();
        assert_eq!(
            got.variant,
            Variant::Identity,
            "no sibling: identity fallback"
        );
        assert!(!got.has_gzip);

        // Identity load of a negotiated resource records the sibling.
        let got = exec_load(&job(
            dir.path(),
            "a.html",
            JobKind::Load,
            Variant::Identity,
            1024,
        ))
        .unwrap();
        assert_eq!(got.variant, Variant::Identity);
        assert!(got.has_gzip);
    }

    #[test]
    fn inline_max_decides_the_tier_mechanically() {
        let dir = TestDir::new("tier");
        std::fs::write(dir.path().join("x.bin"), vec![7u8; 100]).unwrap();
        let got = exec_load(&job(
            dir.path(),
            "x.bin",
            JobKind::Load,
            Variant::Identity,
            99,
        ))
        .unwrap();
        match got.data {
            FileData::Fd { len, .. } => assert_eq!(len, 100),
            _ => panic!("100 > 99 must come back as an fd"),
        }
        let got = exec_load(&job(
            dir.path(),
            "x.bin",
            JobKind::Load,
            Variant::Identity,
            100,
        ))
        .unwrap();
        assert!(
            matches!(got.data, FileData::Bytes { .. }),
            "100 <= 100 stays inline"
        );
    }

    #[test]
    fn revalidate_stats_the_variant_file() {
        let dir = TestDir::new("reval");
        std::fs::write(dir.path().join("a.html"), b"0123456789").unwrap();
        std::fs::write(dir.path().join("a.html.gz"), b"123").unwrap();
        let (len, _) = exec_stat(&job(
            dir.path(),
            "a.html",
            JobKind::Revalidate,
            Variant::Gzip,
            0,
        ))
        .unwrap();
        assert_eq!(len, 3, "gzip revalidation must stat the sibling");
        let (len, _) = exec_stat(&job(
            dir.path(),
            "a.html",
            JobKind::Revalidate,
            Variant::Identity,
            0,
        ))
        .unwrap();
        assert_eq!(len, 10);
    }

    #[test]
    fn missing_identity_fails_even_with_sibling_present() {
        let dir = TestDir::new("ghost");
        std::fs::write(dir.path().join("ghost.html.gz"), b"gz").unwrap();
        let err = exec_load(&job(
            dir.path(),
            "ghost.html",
            JobKind::Load,
            Variant::Gzip,
            1024,
        ))
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
