//! A hashed timing wheel: per-connection deadlines with O(1) arm,
//! O(1) cancel, and O(expired) expiry.
//!
//! The idle reaper this replaces swept the whole connection table on
//! every wait — O(conns) per cadence, the ROADMAP's scaling blocker
//! past ~10k connections per shard. The wheel instead hashes each
//! deadline into one of [`WHEEL_SLOTS`] coarse tick buckets
//! (`slot = deadline_tick % WHEEL_SLOTS`), so advancing the clock
//! touches only the buckets whose ticks have elapsed, and each bucket
//! holds only the timers that hash there. Deadlines further out than
//! one wheel revolution simply stay in their bucket until their tick
//! actually comes around (the "hashed" scheme, versus a cascading
//! hierarchical wheel — at one revolution ≥ 256 × tick, a multi-lap
//! timer is touched a handful of times over its whole life).
//!
//! **Cancellation is lazy.** Re-arming a timer on every byte of write
//! progress must be cheap, so `arm`/`cancel` never search a bucket:
//! the wheel keeps an authoritative `armed` map (key → generation +
//! tick) and every bucket entry carries the generation it was pushed
//! with. A bucket entry whose generation no longer matches the map is
//! stale — dropped for free when its bucket is next processed. As an
//! extra guard against churn, re-arming to the *same* tick (a
//! steadily-progressing sender re-arming faster than the tick
//! granularity) is a no-op.
//!
//! Timers never fire **early**: deadlines round *up* to a tick
//! boundary and a tick is processed only once it has fully elapsed.
//! They fire at most one tick late (plus the caller's wait cadence,
//! which [`TimerWheel::next_timeout_ms`] bounds to the next tick
//! boundary) — callers pick the tick as a fraction of their smallest
//! timeout ([`tick_for`] uses 1/8th) to keep worst-case lateness
//! within ~1.25× the configured deadline.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Number of buckets in the wheel. 256 keeps the per-revolution
/// re-touch cost of long timers negligible while the bucket array
/// stays a fraction of a page.
pub const WHEEL_SLOTS: usize = 256;

/// The authoritative record of one armed timer.
#[derive(Debug, Clone, Copy)]
struct Armed {
    gen: u64,
    tick: u64,
}

/// One bucket entry; live iff its `gen` matches the `armed` map.
#[derive(Debug, Clone, Copy)]
struct Slotted {
    key: u64,
    gen: u64,
    tick: u64,
}

/// The wheel. Keys are caller-chosen `u64`s (the server uses the same
/// packed slot+fd tokens its event backend uses, so an expiry can be
/// validated against slot reuse exactly like a readiness event).
pub struct TimerWheel {
    tick: Duration,
    start: Instant,
    /// Next tick to process: every tick < `cur` has been processed.
    cur: u64,
    slots: Vec<Vec<Slotted>>,
    armed: HashMap<u64, Armed>,
    gen: u64,
}

/// Tick duration for a set of configured timeouts: an eighth of the
/// smallest, clamped to [1 ms, 1 s]. Rounding (≤1 tick) plus wait
/// cadence (≤1 tick) then bounds expiry lateness to ≤ deadline × 1.25
/// for every timeout in the set.
pub fn tick_for<I>(timeouts: I) -> Duration
where
    I: IntoIterator<Item = Duration>,
{
    let min = timeouts.into_iter().min();
    match min {
        Some(t) => (t / 8).clamp(Duration::from_millis(1), Duration::from_secs(1)),
        None => Duration::from_secs(1),
    }
}

impl TimerWheel {
    /// An empty wheel ticking at `tick` granularity, starting now.
    pub fn new(tick: Duration) -> TimerWheel {
        TimerWheel::new_at(tick, Instant::now())
    }

    /// An empty wheel with an explicit epoch — the seam the
    /// deterministic sim driver uses: every `arm`/`expire` instant is
    /// derived from one base `Instant` plus simulated nanoseconds, so
    /// the wheel's behavior is a pure function of the simulation.
    pub fn new_at(tick: Duration, start: Instant) -> TimerWheel {
        TimerWheel {
            tick: tick.max(Duration::from_millis(1)),
            start,
            cur: 0,
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            armed: HashMap::new(),
            gen: 0,
        }
    }

    /// Whether `key` currently has a live (armed) timer — the
    /// invariant checkers' view, so "every conn with a deadline class
    /// has a wheel entry and vice versa" is directly assertable.
    pub fn is_armed(&self, key: u64) -> bool {
        self.armed.contains_key(&key)
    }

    /// The tick granularity.
    pub fn tick_duration(&self) -> Duration {
        self.tick
    }

    /// Number of armed (live) timers.
    pub fn pending(&self) -> usize {
        self.armed.len()
    }

    /// Ticks that have *fully elapsed* by `now` (floor).
    fn elapsed_ticks(&self, now: Instant) -> u64 {
        (now.saturating_duration_since(self.start).as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// The tick a deadline rounds up to — never earlier than the
    /// deadline, and never a tick the wheel has already processed.
    fn deadline_tick(&self, deadline: Instant) -> u64 {
        let nanos = deadline.saturating_duration_since(self.start).as_nanos();
        let t = self.tick.as_nanos().max(1);
        (nanos.div_ceil(t) as u64).max(self.cur)
    }

    /// Arms (or re-arms) the timer for `key` to fire at `deadline`.
    /// O(1). Re-arming to a deadline that rounds to the already-armed
    /// tick is a no-op, so per-byte progress re-arms cost nothing until
    /// they actually move the deadline by a tick.
    pub fn arm(&mut self, key: u64, deadline: Instant) {
        let tick = self.deadline_tick(deadline);
        if let Some(a) = self.armed.get(&key) {
            if a.tick == tick {
                return;
            }
        }
        self.gen += 1;
        let gen = self.gen;
        self.armed.insert(key, Armed { gen, tick });
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(Slotted { key, gen, tick });
    }

    /// Disarms `key`'s timer. O(1): the bucket entry goes stale and is
    /// dropped when its bucket next comes around.
    pub fn cancel(&mut self, key: u64) {
        self.armed.remove(&key);
    }

    /// Milliseconds until the next tick boundary — what the event
    /// loop's wait should be bounded by. `None` when nothing is armed
    /// (the loop may block indefinitely).
    pub fn next_timeout_ms(&self, now: Instant) -> Option<i32> {
        if self.armed.is_empty() {
            return None;
        }
        let tick = self.tick.as_nanos().max(1);
        let boundary = (self.elapsed_ticks(now) as u128 + 1) * tick;
        let since_start = now.saturating_duration_since(self.start).as_nanos();
        let ms = (boundary.saturating_sub(since_start) / 1_000_000) as i64;
        Some(ms.clamp(1, i32::MAX as i64) as i32)
    }

    /// Advances the wheel to `now`, appending every expired key to
    /// `out` (cleared first) and disarming it. Work is proportional to
    /// elapsed ticks plus the entries in their buckets — **never** to
    /// the total number of armed timers.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<u64>) {
        out.clear();
        let now_tick = self.elapsed_ticks(now);
        if self.cur > now_tick {
            return;
        }
        // After a stall longer than a full revolution every bucket is
        // due anyway; one pass over the wheel replaces the (arbitrarily
        // long) tick-by-tick walk.
        if now_tick - self.cur >= WHEEL_SLOTS as u64 {
            for slot in 0..WHEEL_SLOTS {
                self.process_slot(slot, now_tick, out);
            }
            self.cur = now_tick + 1;
            return;
        }
        while self.cur <= now_tick {
            let slot = (self.cur % WHEEL_SLOTS as u64) as usize;
            let due = self.cur;
            self.process_slot(slot, due, out);
            self.cur += 1;
        }
    }

    /// Drains one bucket: fires live entries due by `due_tick`, keeps
    /// live future-revolution entries, drops stale ones.
    fn process_slot(&mut self, slot: usize, due_tick: u64, out: &mut Vec<u64>) {
        if self.slots[slot].is_empty() {
            return;
        }
        let mut bucket = std::mem::take(&mut self.slots[slot]);
        bucket.retain(|e| {
            match self.armed.get(&e.key) {
                Some(a) if a.gen == e.gen => {
                    if e.tick <= due_tick {
                        out.push(e.key);
                        false // fired; disarmed below
                    } else {
                        true // a later revolution of this bucket
                    }
                }
                _ => false, // stale: cancelled or re-armed since
            }
        });
        self.slots[slot] = bucket;
        for key in out.iter() {
            self.armed.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expire at an absolute offset from the wheel's start.
    fn expire_at(w: &mut TimerWheel, offset: Duration) -> Vec<u64> {
        let mut out = Vec::new();
        w.expire(w.start + offset, &mut out);
        out
    }

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn fires_at_rounded_tick_never_early() {
        let mut w = TimerWheel::new(10 * MS);
        let deadline = w.start + 25 * MS; // rounds up to tick 3 = 30 ms
        w.arm(1, deadline);
        assert_eq!(w.pending(), 1);
        assert!(expire_at(&mut w, 24 * MS).is_empty(), "before deadline");
        assert!(
            expire_at(&mut w, 29 * MS).is_empty(),
            "deadline rounds UP: 25 ms arms tick 30 ms"
        );
        assert_eq!(expire_at(&mut w, 30 * MS), vec![1]);
        assert_eq!(w.pending(), 0);
        assert!(expire_at(&mut w, 100 * MS).is_empty(), "fires once");
    }

    #[test]
    fn cancel_suppresses_firing() {
        let mut w = TimerWheel::new(10 * MS);
        w.arm(7, w.start + 15 * MS);
        w.cancel(7);
        assert_eq!(w.pending(), 0);
        assert!(expire_at(&mut w, 500 * MS).is_empty());
    }

    #[test]
    fn rearm_on_progress_moves_the_deadline() {
        let mut w = TimerWheel::new(10 * MS);
        w.arm(3, w.start + 20 * MS);
        // Forward progress: push the deadline out before it fires.
        w.arm(3, w.start + 200 * MS);
        assert_eq!(w.pending(), 1, "re-arm replaces, never duplicates");
        assert!(
            expire_at(&mut w, 100 * MS).is_empty(),
            "old deadline is dead"
        );
        assert_eq!(expire_at(&mut w, 200 * MS), vec![3]);
    }

    #[test]
    fn rearm_to_same_tick_is_a_noop_not_a_duplicate() {
        let mut w = TimerWheel::new(10 * MS);
        for _ in 0..1000 {
            // A fast sender re-arming within one tick: the bucket must
            // not accumulate an entry per call.
            w.arm(9, w.start + 55 * MS);
        }
        assert_eq!(w.slots[6].len(), 1, "same-tick re-arms must not pile up");
        assert_eq!(expire_at(&mut w, 60 * MS), vec![9]);
    }

    #[test]
    fn multi_revolution_timer_survives_wrap() {
        // Deadline more than one full revolution out: its bucket is
        // visited WHEEL_SLOTS ticks earlier, where it must be kept, not
        // fired (the hashed wheel's lap check).
        let mut w = TimerWheel::new(MS);
        let one_rev = MS * WHEEL_SLOTS as u32;
        w.arm(5, w.start + one_rev + 50 * MS);
        assert!(
            expire_at(&mut w, one_rev).is_empty(),
            "first lap must keep the timer"
        );
        assert_eq!(w.pending(), 1);
        assert!(expire_at(&mut w, one_rev + 49 * MS).is_empty());
        assert_eq!(expire_at(&mut w, one_rev + 50 * MS), vec![5]);
    }

    #[test]
    fn stall_past_a_revolution_fires_everything_due() {
        let mut w = TimerWheel::new(MS);
        for k in 0..50u64 {
            w.arm(k, w.start + Duration::from_millis(10 + k));
        }
        // The loop stalls for 3 revolutions; one call collects all.
        let mut fired = expire_at(&mut w, MS * (3 * WHEEL_SLOTS) as u32);
        fired.sort_unstable();
        assert_eq!(fired, (0..50).collect::<Vec<_>>());
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn expiry_touches_only_elapsed_buckets() {
        // O(expired): with 10k timers parked far in the future, an
        // expire over a few elapsed ticks must not walk them. Proxy
        // measurement: buckets for unelapsed ticks keep their entries
        // untouched (len unchanged), and nothing fires.
        let mut w = TimerWheel::new(10 * MS);
        for k in 0..10_000u64 {
            w.arm(
                k,
                w.start + Duration::from_secs(2) + Duration::from_millis(k),
            );
        }
        let before: usize = w.slots.iter().map(Vec::len).sum();
        assert!(expire_at(&mut w, 30 * MS).is_empty());
        let after: usize = w.slots.iter().map(Vec::len).sum();
        assert_eq!(before, after, "future timers must not be disturbed");
        assert_eq!(w.pending(), 10_000);
    }

    #[test]
    fn next_timeout_tracks_the_tick_boundary() {
        let mut w = TimerWheel::new(100 * MS);
        assert_eq!(w.next_timeout_ms(w.start), None, "empty wheel blocks");
        w.arm(1, w.start + Duration::from_secs(5));
        let ms = w.next_timeout_ms(w.start + 30 * MS).unwrap();
        // 70 ms to the next boundary (±1 for integer truncation).
        assert!((1..=100).contains(&ms), "got {ms}");
        w.cancel(1);
        assert_eq!(w.next_timeout_ms(w.start), None, "cancel empties the wheel");
    }

    #[test]
    fn tick_for_scales_with_the_smallest_timeout() {
        assert_eq!(
            tick_for([Duration::from_secs(30), Duration::from_secs(4)]),
            Duration::from_millis(500)
        );
        // Clamped below...
        assert_eq!(tick_for([Duration::from_millis(2)]), MS);
        // ...and above.
        assert_eq!(
            tick_for([Duration::from_secs(3600)]),
            Duration::from_secs(1)
        );
        // No timeouts configured: granularity is moot, wheel stays idle.
        assert_eq!(tick_for([]), Duration::from_secs(1));
    }

    #[test]
    fn distinct_keys_in_one_bucket_fire_independently() {
        let mut w = TimerWheel::new(10 * MS);
        // Same tick, three keys; cancel one, re-arm another later.
        w.arm(1, w.start + 20 * MS);
        w.arm(2, w.start + 20 * MS);
        w.arm(3, w.start + 20 * MS);
        w.cancel(2);
        w.arm(3, w.start + 40 * MS);
        let mut fired = expire_at(&mut w, 20 * MS);
        fired.sort_unstable();
        assert_eq!(fired, vec![1]);
        assert_eq!(expire_at(&mut w, 40 * MS), vec![3]);
    }
}
