//! The **metrics registry**: one place that knows every counter,
//! gauge, and latency histogram the server maintains, so the
//! aggregated [`crate::server::ServerStats`] getters, the Prometheus
//! text exposition, and the JSON export all read through the same
//! descriptors and cannot drift apart.
//!
//! Scalars live as plain `AtomicU64` fields on
//! [`crate::conn::ShardStats`] (one instance per shard, written with
//! relaxed ordering on the hot path, merged on read). Each field is
//! described once in [`REGISTRY`] — name, kind, merge rule, help —
//! and read through a function pointer, so adding a counter without
//! registering it is a one-line diff away from being export-visible.
//!
//! Latencies use [`Histogram`]: 64 power-of-two buckets over
//! nanoseconds, each a plain `AtomicU64`. Recording is a single
//! `leading_zeros` plus two relaxed `fetch_add`s — per-shard, no
//! locks, no shared cachelines. Merging per-shard histograms is
//! bucket-wise addition, which is exactly the histogram of the merged
//! samples (the property test below proves it), and any quantile read
//! from the merged buckets is within one bucket — a factor of two —
//! of the exact sample quantile.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::conn::ShardStats;

/// Elapsed nanoseconds between two driver-supplied instants,
/// saturating at zero — the sole conversion the instrumentation uses,
/// so real and simulated clocks feed the histograms identically.
pub fn nanos_since(t0: std::time::Instant, now: std::time::Instant) -> u64 {
    now.saturating_duration_since(t0).as_nanos() as u64
}

/// Number of power-of-two buckets; bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes 0), so the full
/// `u64` range is covered.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-size log-bucketed latency histogram: per-shard, lock-free,
/// mergeable on read like the scalar counters. Values are
/// nanoseconds; the sim records simulated time through the same code
/// path, so its histograms are bit-identical per seed.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of all recorded values (for mean / Prometheus `_sum`).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: `floor(log2(v))`, with 0 mapping to
/// bucket 0.
fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value a quantile read
/// reports for samples landing in it).
fn bucket_upper(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// Records one sample (nanoseconds). Two relaxed `fetch_add`s on
    /// shard-private cachelines — safe on the hot path.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy (individual buckets are
    /// exact; concurrent writers may land between bucket reads, as
    /// with every merged counter read).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut s = HistSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.sum = self.sum.load(Ordering::Relaxed);
        s
    }
}

/// A plain-integer copy of a [`Histogram`], mergeable bucket-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise merge; merging per-shard snapshots equals the
    /// snapshot of the merged sample stream.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.sum += other.sum;
    }

    /// Nearest-rank quantile, reported as the containing bucket's
    /// upper bound — within one bucket (≤ 2× relative error) of the
    /// exact sample quantile. `q` in `[0, 1]`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// The compact digest exported in reports: count, sum, p50, p99.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            sum_nanos: self.sum,
            p50_nanos: self.quantile(0.50),
            p99_nanos: self.quantile(0.99),
        }
    }
}

/// Count / sum / p50 / p99 digest of one histogram. Plain integers,
/// `Eq` — the deterministic sim embeds these in its fingerprinted
/// report, so same-seed runs must (and do) reproduce them bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub sum_nanos: u64,
    pub p50_nanos: u64,
    pub p99_nanos: u64,
}

/// Metric kind, for export (`# TYPE` in the Prometheus exposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically non-decreasing.
    Counter,
    /// Point-in-time level (may go down).
    Gauge,
}

/// How per-shard values aggregate into the server-wide value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeRule {
    /// Add across shards (counters, additive gauges).
    Sum,
    /// Take the maximum across shards (high-water gauges).
    Max,
}

/// One scalar metric: its export identity plus how to read it off a
/// [`ShardStats`]. Every `AtomicU64` field on `ShardStats` has exactly
/// one `Desc` in [`REGISTRY`]; the `ServerStats` getters read through
/// these same descriptors.
pub struct Desc {
    /// Export name (also the JSON key; prefixed `flash_` in the
    /// Prometheus exposition).
    pub name: &'static str,
    pub kind: Kind,
    pub merge: MergeRule,
    /// One-line help string (`# HELP` in the exposition).
    pub help: &'static str,
    read: fn(&ShardStats) -> u64,
}

impl Desc {
    /// This metric's value on one shard.
    pub fn read_one(&self, s: &ShardStats) -> u64 {
        (self.read)(s)
    }

    /// The server-wide value: per-shard values combined by the merge
    /// rule.
    pub fn merged(&self, shards: &[Arc<ShardStats>]) -> u64 {
        let vals = shards.iter().map(|s| (self.read)(s));
        match self.merge {
            MergeRule::Sum => vals.sum(),
            MergeRule::Max => vals.max().unwrap_or(0),
        }
    }
}

macro_rules! registry {
    ($( $konst:ident / $field:ident : $kind:ident, $merge:ident, $help:expr; )+) => {
        $(
            pub const $konst: Desc = Desc {
                name: stringify!($field),
                kind: Kind::$kind,
                merge: MergeRule::$merge,
                help: $help,
                read: |s: &ShardStats| s.$field.load(Ordering::Relaxed),
            };
        )+
        /// Every scalar metric the server maintains, in export order.
        pub static REGISTRY: &[Desc] = &[ $( $konst ),+ ];
    };
}

registry! {
    REQUESTS / requests: Counter, Sum, "Completed responses (any status), excluding /.flash/ endpoint responses";
    METRICS_REQUESTS / metrics_requests: Counter, Sum, "Responses served by the /.flash/metrics and /.flash/stats endpoints";
    ACCEPTED / accepted: Counter, Sum, "Connections accepted and dealt to shards";
    HELPER_JOBS / helper_jobs: Counter, Sum, "Disk jobs dispatched to the helper pool after miss coalescing";
    CACHE_HITS / cache_hits: Counter, Sum, "Responses served from the per-shard content cache";
    WRITEV_CALLS / writev_calls: Counter, Sum, "Gathered writev(2) calls issued on the send path";
    SENDFILE_CALLS / sendfile_calls: Counter, Sum, "sendfile(2) calls issued on the large-body path";
    BYTES_SENDFILE / bytes_sendfile: Counter, Sum, "Body bytes transmitted via sendfile(2)";
    CACHE_USED_BYTES / cache_used_bytes: Gauge, Sum, "Bytes currently resident in the content caches";
    WAIT_CALLS / wait_calls: Counter, Sum, "Readiness wait calls issued by the shard loops";
    WAIT_EVENTS / wait_events: Counter, Sum, "Readiness events returned by those waits";
    IDLE_REAPED / idle_reaped: Counter, Sum, "Keep-alive connections closed by the idle deadline";
    READ_TIMEOUTS / read_timeouts: Counter, Sum, "Connections closed by the header-read deadline";
    WRITE_STALL_TIMEOUTS / write_stall_timeouts: Counter, Sum, "Connections closed by the write-progress deadline";
    NOT_MODIFIED / not_modified: Counter, Sum, "304 Not Modified responses served to conditional requests";
    RANGE_REQUESTS / range_requests: Counter, Sum, "Well-formed single-range requests reaching a file response (satisfiable or not)";
    RANGE_UNSATISFIABLE / range_unsatisfiable: Counter, Sum, "Range requests answered 416 because no byte of the representation was addressable";
    ACCEPT_BACKPRESSURE / accept_backpressure: Counter, Sum, "Accept throttles from fd exhaustion or accept failure";
    REVALIDATIONS / revalidations: Counter, Sum, "Cache re-stats confirming an entry past its TTL still matches";
    STALE_EVICTED / stale_evicted: Counter, Sum, "Cache entries evicted because a re-stat saw them change";
    HELPER_WAIT_TIMEOUTS / helper_wait_timeouts: Counter, Sum, "Waiting connections closed by the helper-completion deadline";
    JOBS_CANCELLED / jobs_cancelled: Counter, Sum, "In-flight helper jobs cancelled after their last waiter left";
    DYNAMIC_REQUESTS / dynamic_requests: Counter, Sum, "Requests routed to the dynamic tier by the configured prefix";
    WORKER_RESPAWNS / worker_respawns: Counter, Sum, "Application workers killed and replaced after a crash or deadline kill";
    DYNAMIC_TIMEOUTS / dynamic_timeouts: Counter, Sum, "Dynamic requests that hit dynamic_deadline (504 pre-header, severed mid-stream)";
    DRAINING / draining: Gauge, Sum, "Shards currently in drain mode";
    DRAINED_CONNS / drained_conns: Counter, Sum, "Connections retired by a drain";
    LOOP_STALLS / loop_stalls: Counter, Sum, "Event-loop iterations whose non-wait time exceeded loop_stall_threshold";
    LOOP_STALL_MAX_US / loop_stall_max_us: Gauge, Max, "High-water mark of per-iteration non-wait loop time, microseconds";
    PHASE_WAIT_US / phase_wait_us: Counter, Sum, "Cumulative microseconds spent blocked in readiness wait";
    PHASE_ACCEPT_US / phase_accept_us: Counter, Sum, "Cumulative microseconds spent accepting connections";
    PHASE_READ_US / phase_read_us: Counter, Sum, "Cumulative microseconds spent driving readiness events";
    PHASE_RESPOND_US / phase_respond_us: Counter, Sum, "Cumulative microseconds spent driving completed connections";
    PHASE_COMPLETIONS_US / phase_completions_us: Counter, Sum, "Cumulative microseconds spent applying helper completions";
    PHASE_TIMERS_US / phase_timers_us: Counter, Sum, "Cumulative microseconds spent expiring deadline timers";
}

/// One latency histogram: export identity plus how to read it off a
/// [`ShardStats`].
pub struct HistDesc {
    /// Export name; values are nanoseconds.
    pub name: &'static str,
    pub help: &'static str,
    read: fn(&ShardStats) -> &Histogram,
}

impl HistDesc {
    /// Per-shard snapshots merged bucket-wise into the server-wide
    /// histogram.
    pub fn merged(&self, shards: &[Arc<ShardStats>]) -> HistSnapshot {
        let mut total = HistSnapshot::default();
        for s in shards {
            total.merge(&(self.read)(s).snapshot());
        }
        total
    }
}

pub const HIST_REQUEST: HistDesc = HistDesc {
    name: "request_latency_nanos",
    help: "Request latency: request parsed to final response byte queued for the transport",
    read: |s: &ShardStats| &s.hist_request,
};
pub const HIST_TTFB: HistDesc = HistDesc {
    name: "ttfb_nanos",
    help: "Time to first byte: request parsed to first response byte accepted by the transport",
    read: |s: &ShardStats| &s.hist_ttfb,
};
pub const HIST_HELPER_WAIT: HistDesc = HistDesc {
    name: "helper_wait_nanos",
    help: "Helper-job wait: connection parked Waiting to its completion delivered",
    read: |s: &ShardStats| &s.hist_helper_wait,
};
pub const HIST_WORKER_WAIT: HistDesc = HistDesc {
    name: "worker_wait_nanos",
    help: "Worker wait: dynamic request dispatched to first worker event delivered",
    read: |s: &ShardStats| &s.hist_worker_wait,
};
pub const HIST_LIFETIME: HistDesc = HistDesc {
    name: "conn_lifetime_nanos",
    help: "Connection lifetime: accept to close, any close reason",
    read: |s: &ShardStats| &s.hist_lifetime,
};

/// Every latency histogram the server maintains, in export order.
pub static HIST_REGISTRY: &[HistDesc] = &[
    HIST_REQUEST,
    HIST_TTFB,
    HIST_HELPER_WAIT,
    HIST_WORKER_WAIT,
    HIST_LIFETIME,
];

/// Renders the full registry in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`): every scalar as
/// `flash_<name> <value>` with `# HELP` / `# TYPE` preamble, every
/// histogram as cumulative `_bucket{le="..."}` lines (nanosecond
/// bounds) plus `_sum` and `_count`.
pub fn render_prometheus(shards: &[Arc<ShardStats>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    for d in REGISTRY {
        let kind = match d.kind {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
        };
        let _ = writeln!(out, "# HELP flash_{} {}", d.name, d.help);
        let _ = writeln!(out, "# TYPE flash_{} {}", d.name, kind);
        let _ = writeln!(out, "flash_{} {}", d.name, d.merged(shards));
    }
    for h in HIST_REGISTRY {
        let snap = h.merged(shards);
        let _ = writeln!(out, "# HELP flash_{} {}", h.name, h.help);
        let _ = writeln!(out, "# TYPE flash_{} histogram", h.name);
        let mut cum = 0u64;
        for (i, &b) in snap.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            cum += b;
            let _ = writeln!(
                out,
                "flash_{}_bucket{{le=\"{}\"}} {}",
                h.name,
                bucket_upper(i),
                cum
            );
        }
        let _ = writeln!(out, "flash_{}_bucket{{le=\"+Inf\"}} {}", h.name, cum);
        let _ = writeln!(out, "flash_{}_sum {}", h.name, snap.sum);
        let _ = writeln!(out, "flash_{}_count {}", h.name, cum);
    }
    out
}

/// Renders the full registry as a JSON document: `"counters"` and
/// `"gauges"` objects keyed by metric name, plus `"histograms"` with
/// each histogram's count / sum / p50 / p99 (nanoseconds).
pub fn render_json(shards: &[Arc<ShardStats>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    out.push_str("{\n  \"counters\": {");
    let mut first = true;
    for d in REGISTRY.iter().filter(|d| d.kind == Kind::Counter) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", d.name, d.merged(shards));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    first = true;
    for d in REGISTRY.iter().filter(|d| d.kind == Kind::Gauge) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", d.name, d.merged(shards));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    first = true;
    for h in HIST_REGISTRY {
        if !first {
            out.push(',');
        }
        first = false;
        let s = h.merged(shards).summary();
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum_nanos\": {}, \"p50_nanos\": {}, \"p99_nanos\": {}}}",
            h.name, s.count, s.sum_nanos, s.p50_nanos, s.p99_nanos
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Which tier served a response — the access log's last field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Served from the content cache (including confirmed
    /// revalidations).
    Hit,
    /// Loaded from disk by a helper for this (coalesced) request.
    Miss,
    /// Large body streamed via the `sendfile` path.
    Sendfile,
    /// `304 Not Modified` — no body either way.
    NotModified,
    /// Generated by an application worker on the dynamic tier
    /// (chunked response).
    Dynamic,
    /// An error response.
    Error,
}

impl Tier {
    /// The token written in the access-log line.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Hit => "hit",
            Tier::Miss => "miss",
            Tier::Sendfile => "sendfile",
            Tier::NotModified => "not_modified",
            Tier::Dynamic => "dynamic",
            Tier::Error => "error",
        }
    }
}

/// Response metadata staged on a connection between request parse and
/// response completion, when access logging is on. Bytes and latency
/// are filled in at completion time.
#[derive(Debug, Clone)]
pub struct PendingLog {
    pub host: String,
    pub method: &'static str,
    pub path: String,
    pub status: u16,
    pub tier: Tier,
}

/// One finished response, ready to be written as an access-log line.
/// The sans-IO core fills everything but the wall-clock timestamp;
/// the driver stamps that at write time (keeping the core free of
/// clock reads).
#[derive(Debug, Clone)]
pub struct AccessRecord {
    pub host: String,
    pub method: &'static str,
    pub path: String,
    pub status: u16,
    /// Response bytes put on the wire for this request (header +
    /// body, as transmitted).
    pub bytes: u64,
    /// Request latency in microseconds (same measurement as the
    /// `request_latency_nanos` histogram).
    pub latency_us: u64,
    pub tier: Tier,
}

impl AccessRecord {
    /// Formats one structured access-log line (common-log field order
    /// with latency and tier appended):
    /// `host - - [unix_ts] "METHOD path" status bytes latency_us tier`.
    pub fn render_line(&self, unix_ts: u64) -> String {
        format!(
            "{} - - [{}] \"{} {}\" {} {} {} {}\n",
            if self.host.is_empty() {
                "-"
            } else {
                &self.host
            },
            unix_ts,
            self.method,
            self.path,
            self.status,
            self.bytes,
            self.latency_us,
            self.tier.name()
        )
    }
}

/// Append-only access-log writer: a batch of records is formatted
/// into one buffer and written with a single `write_all` against an
/// `O_APPEND` descriptor, so concurrent writers (shards, or the MT
/// server's threads) interleave whole batches — never fragments of a
/// line. An `open` failure disables the writer (records drain to
/// nowhere) rather than killing its owner; `reopen` retries the same
/// path — the SIGHUP/logrotate handshake.
#[derive(Debug)]
pub struct AccessLogWriter {
    path: std::path::PathBuf,
    file: Option<std::fs::File>,
    buf: String,
}

impl AccessLogWriter {
    pub fn open(path: std::path::PathBuf) -> Self {
        let file = Self::open_file(&path);
        AccessLogWriter {
            path,
            file,
            buf: String::new(),
        }
    }

    fn open_file(path: &std::path::Path) -> Option<std::fs::File> {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()
    }

    /// Closes the current file and appends to whatever now lives at
    /// the configured path (after logrotate renamed the old one).
    pub fn reopen(&mut self) {
        self.file = Self::open_file(&self.path);
    }

    /// Stamps wall-clock time on the staged records and appends them
    /// as one write. Records are consumed even with no open file, so
    /// a failed open cannot grow the staging buffer without bound.
    pub fn drain(&mut self, records: &mut Vec<AccessRecord>) {
        if records.is_empty() {
            return;
        }
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.buf.clear();
        for r in records.drain(..) {
            self.buf.push_str(&r.render_line(ts));
        }
        if let Some(f) = &mut self.file {
            use std::io::Write;
            let _ = f.write_all(self.buf.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — no dev-dependencies needed for the
    /// property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// A latency-shaped sample: spread across many orders of
        /// magnitude, occasionally huge.
        fn sample(&mut self) -> u64 {
            let shift = self.next() % 40; // up to ~2^40 ns ≈ 18 min
            self.next() & ((1u64 << (shift + 1)) - 1)
        }
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        for v in [0u64, 1, 2, 3, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_upper(i));
            if i > 0 {
                assert!(v > bucket_upper(i - 1));
            }
        }
    }

    /// Property: merging per-shard histograms bucket-wise equals the
    /// histogram of the merged sample stream.
    #[test]
    fn merge_of_shards_equals_histogram_of_merged_samples() {
        let mut rng = Rng(0x5EED01);
        for round in 0..32 {
            let shards: Vec<Histogram> = (0..4).map(|_| Histogram::default()).collect();
            let whole = Histogram::default();
            for i in 0..500 {
                let v = rng.sample();
                shards[(i + round) % 4].record(v);
                whole.record(v);
            }
            let mut merged = HistSnapshot::default();
            for s in &shards {
                merged.merge(&s.snapshot());
            }
            assert_eq!(merged, whole.snapshot(), "round {round}");
        }
    }

    /// Property: the reported quantile is within one bucket of the
    /// exact nearest-rank sample quantile — i.e. the exact quantile's
    /// bucket upper bound, which is at most 2× the exact value.
    #[test]
    fn quantiles_within_one_bucket_of_exact() {
        let mut rng = Rng(0x5EED02);
        for round in 0..16 {
            let h = Histogram::default();
            let mut samples = Vec::with_capacity(1000);
            for _ in 0..1000 {
                let v = rng.sample();
                h.record(v);
                samples.push(v);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
                let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
                let exact = samples[rank - 1];
                let got = snap.quantile(q);
                // The report is the upper bound of the exact value's
                // bucket: never below the exact value, never past the
                // end of its bucket.
                assert!(
                    got >= exact && got <= bucket_upper(bucket_of(exact)),
                    "round {round} q {q}: exact {exact} got {got}"
                );
            }
        }
    }

    #[test]
    fn quantile_on_empty_is_zero() {
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
        assert_eq!(HistSnapshot::default().count(), 0);
    }

    #[test]
    fn summary_counts_and_sums() {
        let h = Histogram::default();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot().summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_nanos, 1111);
        assert!(s.p50_nanos >= 10 && s.p99_nanos >= 1000);
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for d in REGISTRY {
            assert!(!d.name.is_empty() && !d.help.is_empty());
            assert!(seen.insert(d.name), "duplicate metric {}", d.name);
        }
        for h in HIST_REGISTRY {
            assert!(seen.insert(h.name), "duplicate metric {}", h.name);
        }
    }

    #[test]
    fn renderers_cover_every_metric() {
        let shards = vec![Arc::new(ShardStats::default())];
        shards[0].requests.fetch_add(7, Ordering::Relaxed);
        shards[0].hist_request.record(1500);
        let prom = render_prometheus(&shards);
        let json = render_json(&shards);
        for d in REGISTRY {
            assert!(prom.contains(&format!("flash_{} ", d.name)), "{}", d.name);
            assert!(json.contains(&format!("\"{}\":", d.name)), "{}", d.name);
        }
        for h in HIST_REGISTRY {
            assert!(prom.contains(&format!("flash_{}_count", h.name)));
            assert!(json.contains(&format!("\"{}\":", h.name)));
        }
        assert!(prom.contains("flash_requests 7"));
        assert!(prom.contains("flash_request_latency_nanos_count 1"));
    }

    #[test]
    fn access_record_renders_one_line() {
        let rec = AccessRecord {
            host: "10.0.0.1".into(),
            method: "GET",
            path: "/index.html".into(),
            status: 200,
            bytes: 1234,
            latency_us: 87,
            tier: Tier::Hit,
        };
        let line = rec.render_line(1_700_000_000);
        assert_eq!(
            line,
            "10.0.0.1 - - [1700000000] \"GET /index.html\" 200 1234 87 hit\n"
        );
        assert!(line.ends_with('\n') && line.matches('\n').count() == 1);
    }
}
