//! Minimal safe wrapper over `poll(2)`.
//!
//! The AMPED event loop needs exactly one kernel interface beyond what
//! `std` offers: readiness multiplexing. Rather than pulling in `libc` or
//! `mio`, a single foreign function is declared here (the platform libc
//! is already linked by every Rust program on Unix). This mirrors the
//! paper's portability argument: the server uses only ubiquitous APIs.

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (POLLIN).
pub const POLL_IN: i16 = 0x001;
/// Writable readiness (POLLOUT).
pub const POLL_OUT: i16 = 0x004;
/// Error condition (POLLERR; only returned in `revents`).
pub const POLL_ERR: i16 = 0x008;
/// Hang-up (POLLHUP; only returned in `revents`).
pub const POLL_HUP: i16 = 0x010;

/// One entry of the poll set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLL_IN` / `POLL_OUT`).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

impl PollFd {
    /// Creates an entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True if the descriptor is readable (or peer-closed/errored, which
    /// a reader must observe to reap the connection).
    pub fn readable(&self) -> bool {
        self.revents & (POLL_IN | POLL_ERR | POLL_HUP) != 0
    }

    /// True if the descriptor is writable.
    pub fn writable(&self) -> bool {
        self.revents & (POLL_OUT | POLL_ERR | POLL_HUP) != 0
    }
}

unsafe extern "C" {
    // `nfds_t` is `c_ulong` on every Unix Rust supports.
    fn poll(
        fds: *mut PollFd,
        nfds: core::ffi::c_ulong,
        timeout: core::ffi::c_int,
    ) -> core::ffi::c_int;
}

/// Blocks until a descriptor in `fds` is ready or `timeout_ms` expires
/// (negative = infinite). Returns the number of ready descriptors.
///
/// `EINTR` is retried internally, so callers never observe it.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-compatible structs; the kernel writes only
        // `revents` within the slice bounds; the pointer does not outlive
        // the call.
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn timeout_returns_zero_ready() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLL_IN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn data_makes_fd_readable() {
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLL_IN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable());
    }

    #[test]
    fn sockets_start_writable() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLL_OUT)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn hangup_reported_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLL_IN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "peer close must wake readers");
    }
}
