//! The recorded perf trajectory: a tiny hand-rolled JSON emitter for
//! `BENCH_net.json`, so smoke runs and benches leave machine-readable
//! numbers behind instead of only printing — future PRs diff against
//! the recorded scenarios rather than against anecdotes in commit
//! messages.
//!
//! Deliberately minimal (the workspace builds against local shims
//! only — no serde): scenario names are plain identifiers, values are
//! numbers, and the output is stable, pretty-printed JSON of the
//! shape:
//!
//! ```json
//! {
//!   "scenarios": [
//!     {"name": "accept_churn/reuseport", "requests": 2000,
//!      "elapsed_secs": 0.41, "requests_per_sec": 4878.0,
//!      "conns_per_sec": 4878.0}
//!   ]
//! }
//! ```
//!
//! The destination defaults to `BENCH_net.json` in the current
//! directory, overridable with `FLASH_BENCH_JSON`.

use std::io;
use std::path::PathBuf;

/// One measured scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Identifier, `harness/variant` by convention.
    pub name: String,
    /// Requests completed over the measurement.
    pub requests: u64,
    /// Wall-clock seconds the measurement took.
    pub elapsed_secs: f64,
    /// Requests per second.
    pub requests_per_sec: f64,
    /// Connections per second, where the scenario churns connections
    /// (`None` for keep-alive workloads).
    pub conns_per_sec: Option<f64>,
    /// Response bytes per second, where the harness counted bytes.
    pub bytes_per_sec: Option<f64>,
    /// Median request (or connection) latency in milliseconds, where
    /// the harness sampled latencies.
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: Option<f64>,
}

/// The `q`-quantile (0.0–1.0) of an **already sorted** sample, by the
/// nearest-rank method every harness shares. Empty samples yield
/// `None` rather than a fake zero.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// Accumulates scenarios and writes them as one JSON document.
#[derive(Debug, Default)]
pub struct BenchReport {
    scenarios: Vec<Scenario>,
}

impl BenchReport {
    pub fn new() -> BenchReport {
        BenchReport::default()
    }

    /// Records a scenario from its raw counts; rates are derived here
    /// so every caller computes them the same way.
    pub fn record(&mut self, name: &str, requests: u64, elapsed_secs: f64, conn_churn: bool) {
        self.record_full(name, requests, elapsed_secs, conn_churn, None, None, None);
    }

    /// [`BenchReport::record`] plus the optional columns: total
    /// response bytes (→ `bytes_per_sec`) and latency percentiles in
    /// milliseconds — harnesses with a raw sample derive those with
    /// [`percentile`]; the sim reads them off its report. For
    /// simulated scenarios `elapsed_secs` is simulated time, so the
    /// derived rates are simulated-time throughput.
    #[allow(clippy::too_many_arguments)]
    pub fn record_full(
        &mut self,
        name: &str,
        requests: u64,
        elapsed_secs: f64,
        conn_churn: bool,
        bytes: Option<u64>,
        p50_ms: Option<f64>,
        p99_ms: Option<f64>,
    ) {
        let rate = |n: f64| {
            if elapsed_secs > 0.0 {
                n / elapsed_secs
            } else {
                0.0
            }
        };
        self.scenarios.push(Scenario {
            name: name.to_string(),
            requests,
            elapsed_secs,
            requests_per_sec: rate(requests as f64),
            conns_per_sec: conn_churn.then_some(rate(requests as f64)),
            bytes_per_sec: bytes.map(|b| rate(b as f64)),
            p50_ms,
            p99_ms,
        });
    }

    /// The recorded scenarios.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The destination path: `FLASH_BENCH_JSON` or `BENCH_net.json`.
    pub fn default_path() -> PathBuf {
        std::env::var_os("FLASH_BENCH_JSON")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_net.json"))
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        render_document(self.scenarios.iter().map(scenario_line))
    }

    /// Writes the report to [`BenchReport::default_path`], **merging**
    /// with any document already there: scenarios this report recorded
    /// replace same-named entries, everything else is kept. Separate
    /// harnesses (the accept-churn smoke, the graceful-restart smoke,
    /// `cargo bench`) thereby accumulate into one trajectory file
    /// instead of clobbering each other. Returns the path written.
    ///
    /// The document is published atomically — rendered into a sibling
    /// temp file and renamed over the destination — so a concurrent
    /// reader never sees a torn file. The read-merge-write itself is
    /// last-writer-wins, though: harnesses writing the *same* file are
    /// assumed to run sequentially (as the CI workflow does); truly
    /// concurrent writers should point `FLASH_BENCH_JSON` at distinct
    /// paths.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = Self::default_path();
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let fresh: Vec<String> = self.scenarios.iter().map(scenario_line).collect();
        let kept = existing_scenario_lines(&existing)
            .into_iter()
            .filter(|old| {
                scenario_name(old)
                    .is_none_or(|name| fresh.iter().all(|new| scenario_name(new) != Some(name)))
            });
        let mut tmp = path.clone().into_os_string();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, render_document(kept.chain(fresh.clone())))?;
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        Ok(path)
    }
}

/// One scenario as its single-line JSON object (no trailing comma).
fn scenario_line(s: &Scenario) -> String {
    let mut out = format!(
        "{{\"name\": \"{}\", \"requests\": {}, \"elapsed_secs\": {:.6}, \"requests_per_sec\": {:.1}",
        escape(&s.name),
        s.requests,
        s.elapsed_secs,
        s.requests_per_sec
    );
    if let Some(c) = s.conns_per_sec {
        out.push_str(&format!(", \"conns_per_sec\": {c:.1}"));
    }
    if let Some(b) = s.bytes_per_sec {
        out.push_str(&format!(", \"bytes_per_sec\": {b:.1}"));
    }
    if let Some(p) = s.p50_ms {
        out.push_str(&format!(", \"p50_ms\": {p:.3}"));
    }
    if let Some(p) = s.p99_ms {
        out.push_str(&format!(", \"p99_ms\": {p:.3}"));
    }
    out.push('}');
    out
}

/// Assembles scenario object lines into the output document.
fn render_document(lines: impl Iterator<Item = String>) -> String {
    let lines: Vec<String> = lines.collect();
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Recovers the scenario object lines from a previously written
/// document. This reads only the format [`render_document`] itself
/// produces — one object per line — so a hand-edited or foreign file
/// degrades to "nothing recovered", never to a parse error.
fn existing_scenario_lines(doc: &str) -> Vec<String> {
    doc.lines()
        .map(str::trim)
        .filter(|l| l.starts_with("{\"name\": \""))
        .map(|l| l.strip_suffix(',').unwrap_or(l).to_string())
        .collect()
}

/// The (escaped) scenario name inside an object line.
fn scenario_name(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"name\": \"")?;
    // Names are escaped, so the first unescaped quote terminates; an
    // escaped-form comparison is exact because escaping is canonical.
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(&rest[..end]),
            _ => end += 1,
        }
    }
    None
}

/// JSON string escaping for the characters a scenario name could
/// plausibly contain.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_shape() {
        let mut r = BenchReport::new();
        r.record("accept_churn/single", 2000, 0.5, true);
        r.record("graceful_restart/reuseport", 100, 0.25, false);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"accept_churn/single\""));
        assert!(json.contains("\"requests_per_sec\": 4000.0"));
        assert!(json.contains("\"conns_per_sec\": 4000.0"));
        // The keep-alive scenario must not claim a conn rate.
        let ka_line = json
            .lines()
            .find(|l| l.contains("graceful_restart"))
            .unwrap();
        assert!(!ka_line.contains("conns_per_sec"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn record_full_derives_percentiles_and_byte_rate() {
        let mut r = BenchReport::new();
        let mut lat = [5.0, 1.0, 3.0, 2.0, 4.0];
        lat.sort_by(f64::total_cmp);
        let (p50, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
        r.record_full(
            "sim_zipf/seed41",
            1000,
            2.0,
            true,
            Some(1_000_000),
            p50,
            p99,
        );
        let s = &r.scenarios()[0];
        assert_eq!(s.bytes_per_sec, Some(500_000.0));
        assert_eq!(s.p50_ms, Some(3.0));
        assert_eq!(s.p99_ms, Some(5.0));
        let json = r.to_json();
        assert!(json.contains("\"bytes_per_sec\": 500000.0"));
        assert!(json.contains("\"p50_ms\": 3.000"));
        assert!(json.contains("\"p99_ms\": 5.000"));
        // Plain record() still omits every optional column.
        let mut plain = BenchReport::new();
        plain.record("accept_churn/single", 10, 1.0, false);
        let line = plain.to_json();
        assert!(!line.contains("bytes_per_sec"));
        assert!(!line.contains("p50_ms"));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
    }

    #[test]
    fn names_are_escaped() {
        let mut r = BenchReport::new();
        r.record("we\"ird\\name", 1, 1.0, false);
        assert!(r.to_json().contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let mut r = BenchReport::new();
        r.record("instant", 5, 0.0, true);
        assert_eq!(r.scenarios()[0].requests_per_sec, 0.0);
    }

    #[test]
    fn write_merges_latest_wins_by_name() {
        let path = std::env::temp_dir().join(format!("flash-report-{}.json", std::process::id()));
        std::env::set_var("FLASH_BENCH_JSON", &path);
        let _ = std::fs::remove_file(&path);

        let mut first = BenchReport::new();
        first.record("accept_churn/single", 100, 1.0, true);
        first.record("net_throughput/amped", 500, 1.0, false);
        first.write().unwrap();

        // A second harness re-records one scenario and adds another:
        // its numbers replace the same-named entry, the unrelated
        // entry survives.
        let mut second = BenchReport::new();
        second.record("accept_churn/single", 300, 1.0, true);
        second.record("graceful_restart/single", 50, 1.0, true);
        second.write().unwrap();

        let doc = std::fs::read_to_string(&path).unwrap();
        std::env::remove_var("FLASH_BENCH_JSON");
        let _ = std::fs::remove_file(&path);
        assert_eq!(doc.matches("accept_churn/single").count(), 1);
        assert!(doc.contains("\"requests\": 300"), "latest numbers win");
        assert!(!doc.contains("\"requests\": 100"), "stale numbers gone");
        assert!(doc.contains("net_throughput/amped"));
        assert!(doc.contains("graceful_restart/single"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
