//! The **deterministic simulation driver** for the sans-IO protocol
//! core in [`crate::conn`]: the same `ShardCore`/`Conn` state machine
//! the real event loop runs, bound to in-memory endpoints, a simulated
//! clock ([`flash_simcore::EventQueue`]), and a seeded RNG
//! ([`flash_simcore::SimRng`]) — so millions of connections replay in
//! seconds of wall time, **bit-for-bit reproducibly**: the same seed
//! produces the same [`SimReport`], fingerprint included.
//!
//! What the sim injects that loopback tests cannot (not reliably, not
//! on demand, and never twice the same way):
//!
//! * **partial writes** — the peer's receive window opens a few dozen
//!   bytes at a time, landing every flush mid-iovec and mid-`sendfile`;
//! * **trickled headers** — request bytes dribble in 1–4 byte chunks,
//!   walking a slowloris straight into the header-read deadline;
//! * **disk stalls and wedged helpers** — job completions delayed past
//!   the helper-wait deadline, so waiters are reaped, jobs cancelled,
//!   and late completions must die on the token gate;
//! * **EMFILE storms** — accepts that fail and retry, exercising the
//!   backpressure path;
//! * **mid-run reloads and a final drain** — epoch bumps with jobs in
//!   flight (stale-epoch completions must serve waiters but never
//!   populate the fresh cache) and a drain that must terminate.
//!
//! After every event (configurable cadence at scale) the harness runs
//! [`ShardCore::check_invariants`]: no leaked slots or waiter
//! registrations, waiters ⇔ pending-jobs bijection, every armed
//! deadline tracked by the wheel. A run that violates an invariant,
//! livelocks (fuel exhausted), or strands a connection returns `Err`.
//!
//! Determinism rules: the only wall-clock value in the response stream
//! is the `Date` header (rendered by `flash_http::date` from real
//! time); the fingerprint scrubs those 29 bytes before hashing.
//! Everything else — simulated time, RNG, event order (FIFO within an
//! instant) — is a pure function of the seed.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use flash_core::{FileKind, FileSpec};
use flash_simcore::time::{Nanos, SimTime, MILLI, SEC};
use flash_simcore::{EventQueue, SimRng};
use flash_workload::Zipf;

use crate::cache::{self, Variant};
use crate::conn::machine::{sync_deadline, Conn, ConnState};
use crate::conn::{
    ConnIo, DeadlineKind, Done, DoneData, Drive, DynEvent, FileData, HelperJob, HelperPort,
    JobKind, LoadResult, ProtoConfig, ShardCore, ShardStats,
};
use crate::stats::HistSummary;
use crate::timer::TimerWheel;

/// Fault-injection probabilities, all independent. `none()` is a
/// clean-network baseline; [`FaultPlan::heavy`] is the CI setting.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Per-connection: request bytes arrive in 1–4 byte chunks with
    /// millisecond gaps (slowloris; many die on the header deadline).
    pub trickle: f64,
    /// Per-connection: the receive window opens 64–512 bytes at a
    /// time, forcing partial writes on every flush.
    pub partial_write: f64,
    /// Per-job: completion delayed ~50 ms (past the helper-wait
    /// deadline — the waiter is reaped, the job cancelled).
    pub disk_stall: f64,
    /// Per-job: completion delayed 5 s (a wedged helper; the late
    /// completion must be dropped by cancel flag or token mismatch).
    pub wedge: f64,
    /// Per-accept: the accept fails (EMFILE storm) and is retried.
    pub emfile: f64,
    /// Per-dynamic-exchange: the application worker crashes mid-body —
    /// some chunks arrive, then an unclean end (no chunked terminator
    /// on the wire) and a worker respawn.
    pub worker_crash: f64,
}

impl FaultPlan {
    /// No faults: every byte arrives promptly, every window is wide,
    /// every helper answers fast.
    pub fn none() -> FaultPlan {
        FaultPlan {
            trickle: 0.0,
            partial_write: 0.0,
            disk_stall: 0.0,
            wedge: 0.0,
            emfile: 0.0,
            worker_crash: 0.0,
        }
    }

    /// The fault mix the CI replay runs under.
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            trickle: 0.05,
            partial_write: 0.06,
            disk_stall: 0.04,
            wedge: 0.01,
            emfile: 0.02,
            worker_crash: 0.03,
        }
    }
}

/// One simulated run's shape. `connections` is the number admitted;
/// each plays a 1–4 request keep-alive script drawn from the seed.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    pub connections: u64,
    /// Admission cap (the sim's `max_conns_per_shard`); opens beyond
    /// it are backpressured and retried.
    pub max_concurrent: usize,
    /// Content-cache budget — deliberately small so eviction and
    /// re-load churn under Zipf traffic.
    pub cache_bytes: u64,
    /// Bodies at or above this stream through the simulated
    /// `sendfile` path instead of the cache.
    pub sendfile_threshold: u64,
    /// Run the full invariant check every N events (0 = only at
    /// reloads, drain, and end). Small runs use 1; CI-scale uses ~512.
    pub check_every: u64,
    /// Mean open-to-open gap in simulated nanoseconds.
    pub interarrival_nanos: Nanos,
    /// Per-GET/HEAD fraction carrying a single-range `Range` header
    /// (mix of satisfiable spans, suffixes, and past-EOF → 416).
    pub range_fraction: f64,
    /// Per-GET fraction carrying `If-None-Match` (60/40 current
    /// validator → 304 vs stale → 200), drawn against the
    /// representation the request will negotiate.
    pub inm_fraction: f64,
    /// Per-request fraction advertising `Accept-Encoding: gzip`,
    /// steering negotiation onto the simulated `.gz` siblings.
    pub gzip_fraction: f64,
    /// Per-request fraction routed to the dynamic tier (a simulated
    /// application endpoint under [`DYN_PREFIX`], streamed back as
    /// chunked frames — the [`flash_core::FileKind::Cgi`] workload
    /// model replayed through the shard's streaming plane).
    pub dynamic_fraction: f64,
    /// Mean of the exponential jitter added to each simulated
    /// application's fixed per-request compute time.
    pub dynamic_compute_nanos: Nanos,
    pub faults: FaultPlan,
}

impl SimConfig {
    /// Defaults tuned for fault-heavy replay: small cache, low
    /// `sendfile` threshold (both body tiers exercised), sampled
    /// invariant checks.
    pub fn new(seed: u64, connections: u64) -> SimConfig {
        SimConfig {
            seed,
            connections,
            max_concurrent: 256,
            cache_bytes: 256 * 1024,
            sendfile_threshold: 16 * 1024,
            check_every: 512,
            interarrival_nanos: 150_000,
            range_fraction: 0.12,
            inm_fraction: 0.10,
            gzip_fraction: 0.25,
            dynamic_fraction: 0.08,
            dynamic_compute_nanos: 2 * MILLI,
            faults: FaultPlan::heavy(),
        }
    }
}

/// Everything a run observed, every field a pure function of
/// (`SimConfig`, file set): two runs with the same inputs must compare
/// equal — that comparison IS the determinism test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Connections admitted (== `SimConfig::connections` on success).
    pub connections: u64,
    /// Responses completed (any status).
    pub requests: u64,
    /// Response bytes transmitted (headers + both body tiers).
    pub bytes: u64,
    /// Order-sensitive FNV fold of every connection's full response
    /// stream (Date headers scrubbed — the one wall-clock leak).
    pub fingerprint: u64,
    pub cache_hits: u64,
    pub helper_jobs: u64,
    pub jobs_cancelled: u64,
    pub helper_wait_timeouts: u64,
    pub read_timeouts: u64,
    pub write_stall_timeouts: u64,
    pub idle_reaped: u64,
    pub not_modified: u64,
    /// Well-formed single-range requests that reached a file response
    /// (satisfiable or not), and the subset answered 416.
    pub range_requests: u64,
    pub range_unsatisfiable: u64,
    pub revalidations: u64,
    pub stale_evicted: u64,
    pub drained_conns: u64,
    pub accept_backpressure: u64,
    /// Dynamic-tier traffic: requests routed to the worker pool, the
    /// 504s/severs its silence deadline produced, and the worker
    /// respawns (crashes, plus kills of wedged/cancelled exchanges).
    pub dynamic_requests: u64,
    pub dynamic_timeouts: u64,
    pub worker_respawns: u64,
    /// Mid-run docroot reloads applied (epoch bumps).
    pub reloads: u64,
    /// Connection-lifetime percentiles, simulated nanoseconds.
    pub p50_conn_nanos: u64,
    pub p99_conn_nanos: u64,
    /// Simulated instant the last event fired.
    pub sim_elapsed_nanos: u64,
    /// Calendar events processed.
    pub events: u64,
    /// Summaries of the same per-shard latency histograms the real
    /// drivers record ([`crate::stats`]), fed simulated time through
    /// the identical instrumentation path — and, via this report's
    /// `Eq`, part of the bit-identical-per-seed guarantee.
    pub hist_request: HistSummary,
    pub hist_ttfb: HistSummary,
    pub hist_helper_wait: HistSummary,
    pub hist_lifetime: HistSummary,
    /// Submit-to-first-frame wait per dynamic exchange — the sim's
    /// worker-wait histogram, fingerprint-stable per seed.
    pub hist_worker_wait: HistSummary,
}

/// A simulated file: identity and metadata only — body bytes are the
/// pure function [`body_byte`]`(id, offset)`, so a multi-gigabyte
/// simulated docroot costs nothing to hold.
#[derive(Debug, Clone)]
pub struct SimFile {
    pub id: u32,
    pub len: u64,
    pub mtime: i64,
}

/// Deterministic body byte for file `id` at `offset` — what the
/// simulated disk "reads" and the simulated `sendfile` streams.
pub fn body_byte(id: u32, offset: u64) -> u8 {
    ((id as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(offset.wrapping_mul(0x9E37_79B1))
        % 251) as u8
}

/// The gzip twin of an identity file id — high bit set, so
/// [`body_byte`] streams a distinct (still deterministic) sequence for
/// the compressed representation.
pub fn gz_id(id: u32) -> u32 {
    id | 0x8000_0000
}

/// The simulated `.gz` sibling of an identity file, if the docroot
/// "has one": every third file is precompressed, ~2/3 the identity
/// length (so siblings land on both sides of the sendfile threshold
/// too) and slightly newer. A pure function of the identity file —
/// part of the per-seed determinism contract.
pub fn gzip_sibling(f: &SimFile) -> Option<SimFile> {
    if f.id & 0x8000_0000 != 0 || !f.id.is_multiple_of(3) {
        return None;
    }
    Some(SimFile {
        id: gz_id(f.id),
        len: (f.len * 2 / 3).max(1),
        mtime: f.mtime + 7,
    })
}

/// The URL namespace the sim routes to its dynamic tier (the
/// `ProtoConfig::dynamic_prefix` every simulated shard runs with).
pub const DYN_PREFIX: &str = "/app/";

/// One simulated application endpoint — the sim's realization of the
/// workload model's [`FileKind::Cgi`] `{ compute_ns, output_bytes }`:
/// a fixed per-request compute time and a deterministic response body
/// streamed back as chunked frames.
#[derive(Debug, Clone)]
struct DynApp {
    /// Body-byte id-space with the top two bits set — never collides
    /// with static file ids or their gzip twins.
    id: u32,
    compute_ns: Nanos,
    output_bytes: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Blanks the 29-byte IMF-fixdate value after every `Date: ` in place
/// — the only wall-clock bytes in a response stream.
fn scrub_dates(buf: &mut [u8]) {
    const PAT: &[u8] = b"Date: ";
    const VAL: usize = flash_http::date::IMF_FIXDATE_LEN;
    let mut i = 0;
    while i + PAT.len() + VAL <= buf.len() {
        if &buf[i..i + PAT.len()] == PAT {
            for b in &mut buf[i + PAT.len()..i + PAT.len() + VAL] {
                *b = b'#';
            }
            i += PAT.len() + VAL;
        } else {
            i += 1;
        }
    }
}

/// What one connection transmitted, shared between its [`SimIo`] (which
/// appends) and the driver's slot table (which outlives the `Conn` —
/// the state machine closes slots internally, and the response stream
/// must survive that close to be fingerprinted).
#[derive(Clone)]
struct Capture {
    opened_at: SimTime,
    /// The `writev` stream verbatim (headers + small bodies).
    bytes: Vec<u8>,
    /// Running FNV over the `sendfile` stream (never buffered — large
    /// bodies carry no headers, so no scrubbing is needed).
    body_hash: u64,
    body_bytes: u64,
}

impl Capture {
    fn new(opened_at: SimTime) -> Capture {
        Capture {
            opened_at,
            bytes: Vec::new(),
            body_hash: FNV_OFFSET,
            body_bytes: 0,
        }
    }
}

/// The simulated transport: an inbox the driver fills from the
/// connection's arrival script, a receive window the driver refills
/// (tiny refills = the partial-write fault), and the shared capture.
pub struct SimIo {
    uid: u32,
    inbox: VecDeque<u8>,
    window: usize,
    refill_pending: bool,
    /// Remaining request chunks: (delay before this chunk, bytes).
    script: VecDeque<(Nanos, Vec<u8>)>,
    /// Window refills stay tiny for this connection's whole life.
    partial: bool,
    cap: Rc<RefCell<Capture>>,
}

impl ConnIo for SimIo {
    type FileRef = SimFile;

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.inbox.is_empty() {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.inbox.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.inbox.pop_front().unwrap();
        }
        Ok(n)
    }

    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
        if self.window == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let mut cap = self.cap.borrow_mut();
        let mut n = 0;
        for b in bufs {
            if self.window == 0 {
                break;
            }
            let take = self.window.min(b.len());
            cap.bytes.extend_from_slice(&b[..take]);
            self.window -= take;
            n += take;
        }
        Ok(n)
    }

    fn sendfile(&mut self, file: &SimFile, offset: &mut u64, max: u64) -> io::Result<usize> {
        if self.window == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let left = file.len.saturating_sub(*offset);
        if left == 0 {
            return Ok(0);
        }
        let n = max.min(self.window as u64).min(left);
        let mut cap = self.cap.borrow_mut();
        for off in *offset..*offset + n {
            cap.body_hash = fnv(cap.body_hash, body_byte(file.id, off));
        }
        cap.body_bytes += n;
        *offset += n;
        self.window -= n as usize;
        Ok(n as usize)
    }
}

/// The sim's [`HelperPort`]: collects submissions for the driver to
/// schedule as latency-delayed completion events.
struct SimPort {
    jobs: Vec<HelperJob>,
}

impl HelperPort for SimPort {
    fn submit(&mut self, job: HelperJob) {
        self.jobs.push(job);
    }
}

/// The calendar's event alphabet.
enum Ev {
    /// Admit the next planned connection (or backpressure and retry).
    Open,
    /// Deliver the next request chunk to a connection's inbox.
    Arrive { slot: usize, uid: u32 },
    /// The peer's receive window opens further.
    Refill { slot: usize, uid: u32 },
    /// A helper job's completion lands at the shard.
    HelperDone(HelperJob),
    /// Timer-wheel backstop: expire deadlines in a quiet calendar.
    Tick,
    /// All connections admitted: the shard enters drain.
    BeginDrain,
}

fn conn_token(slot: usize, uid: u32) -> u64 {
    ((slot as u64) << 32) | uid as u64
}

struct Sim {
    cfg: SimConfig,
    files: HashMap<String, SimFile>,
    paths: Vec<String>,
    /// Dynamic endpoints by URL path, plus a stable pick order.
    apps: HashMap<String, DynApp>,
    app_paths: Vec<String>,
    zipf: Zipf,
    rng: SimRng,
    queue: EventQueue<Ev>,
    /// Real-clock anchor: simulated instant `t` is `base + t` (the
    /// wheel and cache speak `Instant`; only differences matter).
    base: Instant,
    wheel: TimerWheel,
    core: ShardCore,
    port: SimPort,
    conns: Vec<Option<Conn<SimIo>>>,
    caps: Vec<Option<Rc<RefCell<Capture>>>>,
    uids: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    opened: u64,
    next_uid: u32,
    tick_at: Option<SimTime>,
    latencies: Vec<u64>,
    fingerprint: u64,
    bytes: u64,
    reloads: u64,
    completed_scratch: Vec<usize>,
    expired_scratch: Vec<u64>,
}

impl Sim {
    fn new(cfg: SimConfig, specs: &[FileSpec]) -> Sim {
        let mut files = HashMap::new();
        let mut paths = Vec::with_capacity(specs.len());
        let mut apps = HashMap::new();
        let mut app_paths = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            // Cgi specs become dynamic endpoints (below), not files.
            if let FileKind::Cgi {
                compute_ns,
                output_bytes,
            } = s.kind
            {
                let path = if s.path.starts_with(DYN_PREFIX) {
                    s.path.clone()
                } else {
                    format!("/app{}", s.path)
                };
                let app = DynApp {
                    id: 0xC000_0000 | app_paths.len() as u32,
                    compute_ns,
                    output_bytes,
                };
                app_paths.push(path.clone());
                apps.insert(path, app);
                continue;
            }
            let id = i as u32;
            files.insert(
                s.path.clone(),
                SimFile {
                    id,
                    len: s.size,
                    // Deterministic, distinct per file, in the
                    // parseable IMF-fixdate range.
                    mtime: 800_000_000 + id as i64 * 61,
                },
            );
            paths.push(s.path.clone());
        }
        if apps.is_empty() {
            // No Cgi specs in the site: synthesize a small application
            // set, a pure function of the index (compute times 1–5 ms,
            // bodies a few chunks long — the FileKind::Cgi shape).
            for i in 0u32..12 {
                let path = format!("{DYN_PREFIX}{i}");
                let app = DynApp {
                    id: 0xC000_0000 | i,
                    compute_ns: (1 + i as u64 % 5) * MILLI,
                    output_bytes: 200 + (i as u64 * 977) % 6000,
                };
                app_paths.push(path.clone());
                apps.insert(path, app);
            }
        }
        let base = Instant::now();
        let proto = ProtoConfig {
            docroot: PathBuf::from("/sim"),
            idle_timeout: Some(Duration::from_millis(120)),
            header_read_timeout: Some(Duration::from_millis(100)),
            write_stall_timeout: Some(Duration::from_millis(150)),
            helper_wait_timeout: Some(Duration::from_millis(20)),
            cache_revalidate_ttl: Some(Duration::from_millis(5)),
            sendfile_threshold: cfg.sendfile_threshold,
            metrics_endpoint: false,
            access_log: false,
            dynamic_prefix: Some(DYN_PREFIX.to_string()),
            // Generous against the 1–5 ms compute times, decisive
            // against the 5 s wedge fault.
            dynamic_deadline: Some(Duration::from_millis(100)),
        };
        let stats = Arc::new(ShardStats::default());
        Sim {
            core: ShardCore::new(0, cfg.cache_bytes, proto, stats),
            zipf: Zipf::new(paths.len().max(1), 1.0),
            rng: SimRng::new(cfg.seed),
            queue: EventQueue::new(),
            wheel: TimerWheel::new_at(Duration::from_millis(2), base),
            base,
            files,
            paths,
            apps,
            app_paths,
            port: SimPort { jobs: Vec::new() },
            conns: Vec::new(),
            caps: Vec::new(),
            uids: Vec::new(),
            free: Vec::new(),
            live: 0,
            opened: 0,
            next_uid: 0,
            tick_at: None,
            latencies: Vec::new(),
            fingerprint: FNV_OFFSET,
            bytes: 0,
            reloads: 0,
            completed_scratch: Vec::new(),
            expired_scratch: Vec::new(),
            cfg,
        }
    }

    fn now_i(&self) -> Instant {
        self.base + Duration::from_nanos(self.queue.now().as_nanos())
    }

    /// One connection's whole life as request chunks: 1–4 pipelineable
    /// requests (the last `Connection: close`), a sprinkling of HEAD,
    /// POST, conditional, and missing-path requests, delivered whole
    /// or trickled byte-by-byte per the fault plan.
    fn build_script(&mut self, trickle: bool) -> VecDeque<(Nanos, Vec<u8>)> {
        let nreq = 1 + self.rng.uniform(0, 4);
        let mut stream = Vec::new();
        for i in 0..nreq {
            let last = i + 1 == nreq;
            let roll = self.rng.unit();
            let (method, path) = if roll < 0.02 {
                ("POST", "/submit".to_string())
            } else if roll < 0.05 {
                ("GET", format!("/missing/{}.html", self.rng.uniform(0, 997)))
            } else if roll < 0.07 {
                ("GET", "/".to_string())
            } else if self.rng.chance(self.cfg.dynamic_fraction) {
                // Dynamic tier: a worker-pool endpoint. No validators
                // or ranges are drawn below — `rep` resolves to None —
                // matching the tier's conditional bypass.
                let pick = self.rng.uniform(0, self.app_paths.len() as u64) as usize;
                let m = if self.rng.chance(0.05) { "HEAD" } else { "GET" };
                (m, self.app_paths[pick].clone())
            } else {
                let pick = self.zipf.sample(&mut self.rng);
                let m = if self.rng.chance(0.05) { "HEAD" } else { "GET" };
                (m, self.paths[pick].clone())
            };
            let accept_gzip = method != "POST" && self.rng.chance(self.cfg.gzip_fraction);
            // The representation this request will negotiate: the `.gz`
            // sibling when the client accepts gzip and the file has
            // one, the identity file otherwise. Conditional validators
            // and range bounds are drawn against it, exactly as a real
            // client revalidating or resuming a prior download would.
            let rep = self.files.get(&path).map(|f| {
                if accept_gzip {
                    gzip_sibling(f).unwrap_or_else(|| f.clone())
                } else {
                    f.clone()
                }
            });
            let ims = if method == "GET" && self.rng.chance(0.15) {
                rep.as_ref().map(|f| {
                    // 60/40 current validator (→ 304) vs stale (→ 200).
                    if self.rng.chance(0.6) {
                        f.mtime
                    } else {
                        f.mtime - 7200
                    }
                })
            } else {
                None
            };
            let inm = if method == "GET" && self.rng.chance(self.cfg.inm_fraction) {
                rep.as_ref().map(|f| {
                    let gz = f.id & 0x8000_0000 != 0;
                    if self.rng.chance(0.6) {
                        flash_http::etag_value(Some(f.mtime), f.len, gz)
                    } else {
                        flash_http::etag_value(Some(f.mtime - 7200), f.len, gz)
                    }
                })
            } else {
                None
            };
            let range = if method != "POST" && self.rng.chance(self.cfg.range_fraction) {
                rep.as_ref().map(|f| {
                    let roll = self.rng.unit();
                    if roll < 0.10 {
                        // Past EOF: unsatisfiable → 416.
                        format!("bytes={}-", f.len + 1 + self.rng.uniform(0, 1000))
                    } else if roll < 0.25 {
                        // Suffix form.
                        format!("bytes=-{}", 1 + self.rng.uniform(0, f.len.max(1)))
                    } else {
                        let start = self.rng.uniform(0, f.len.max(1));
                        let end = start + self.rng.uniform(0, f.len - start + 64);
                        format!("bytes={start}-{end}")
                    }
                })
            } else {
                None
            };
            stream
                .extend_from_slice(format!("{method} {path} HTTP/1.1\r\nHost: sim\r\n").as_bytes());
            if accept_gzip {
                stream.extend_from_slice(b"Accept-Encoding: gzip\r\n");
            }
            if let Some(t) = ims {
                stream.extend_from_slice(
                    format!("If-Modified-Since: {}\r\n", flash_http::date::format_imf(t))
                        .as_bytes(),
                );
            }
            if let Some(tag) = inm {
                stream.extend_from_slice(format!("If-None-Match: {tag}\r\n").as_bytes());
            }
            if let Some(r) = range {
                stream.extend_from_slice(format!("Range: {r}\r\n").as_bytes());
            }
            if last {
                stream.extend_from_slice(b"Connection: close\r\n");
            }
            stream.extend_from_slice(b"\r\n");
        }
        let mut script = VecDeque::new();
        let mut off = 0;
        while off < stream.len() {
            let (chunk, delay) = if trickle {
                // Slow enough that a typical request needs longer than
                // the header deadline — most trickled requests are the
                // slowloris the deadline exists for; short ones squeak
                // through.
                (
                    1 + self.rng.uniform(0, 4) as usize,
                    MILLI + self.rng.uniform(0, 9 * MILLI),
                )
            } else {
                (
                    256 + self.rng.uniform(0, 1792) as usize,
                    50_000 + self.rng.uniform(0, MILLI),
                )
            };
            let end = (off + chunk).min(stream.len());
            script.push_back((delay, stream[off..end].to_vec()));
            off = end;
        }
        script
    }

    fn admit(&mut self) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.caps.push(None);
            self.uids.push(0);
            self.conns.len() - 1
        });
        let uid = self.next_uid;
        self.next_uid = self.next_uid.wrapping_add(1);
        let trickle = self.rng.chance(self.cfg.faults.trickle);
        let partial = self.rng.chance(self.cfg.faults.partial_write);
        let window = if partial {
            64 + self.rng.uniform(0, 448) as usize
        } else {
            2048 + self.rng.uniform(0, 30 * 1024) as usize
        };
        let script = self.build_script(trickle);
        let cap = Rc::new(RefCell::new(Capture::new(self.queue.now())));
        let first_delay = script.front().map(|(d, _)| *d);
        let mut conn = Conn::new(SimIo {
            uid,
            inbox: VecDeque::new(),
            window,
            refill_pending: false,
            script,
            partial,
            cap: Rc::clone(&cap),
        });
        // Simulated accept instant: the lifetime histogram ticks in
        // simulated time, exactly like the real driver's wall clock.
        conn.opened_at = Some(self.now_i());
        self.conns[slot] = Some(conn);
        self.caps[slot] = Some(cap);
        self.uids[slot] = uid;
        self.live += 1;
        self.core.stats.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = first_delay {
            self.queue.schedule_in(d, Ev::Arrive { slot, uid });
        }
        // Drive immediately (arms the idle deadline, exactly like the
        // real driver's admit path).
        self.drive(slot);
    }

    /// Pumps one connection as far as it goes, reconciling deadlines
    /// and scheduling a window refill when output is gated on the
    /// peer; mirrors the real driver's `drive_and_sync`.
    fn drive(&mut self, slot: usize) {
        loop {
            let now = self.now_i();
            let outcome = self
                .core
                .drive_conn(slot, &mut self.conns, &mut self.port, now);
            self.dispatch_jobs();
            match outcome {
                Drive::Yielded => continue,
                Drive::Closed => {
                    self.finalize(slot);
                    return;
                }
                Drive::Blocked => {
                    let Some(conn) = self.conns[slot].as_mut() else {
                        return;
                    };
                    let token = conn_token(slot, conn.io.uid);
                    sync_deadline(conn, token, &self.core.cfg, &mut self.wheel, now);
                    let gated =
                        conn.io.window == 0 && (!conn.out.is_empty() || conn.sendfile.is_some());
                    if gated && !conn.io.refill_pending {
                        conn.io.refill_pending = true;
                        let uid = conn.io.uid;
                        let d = 50_000 + self.rng.exp(0.4 * MILLI as f64) as u64;
                        self.queue.schedule_in(d, Ev::Refill { slot, uid });
                    }
                    return;
                }
            }
        }
    }

    /// Turns collected job submissions into latency-delayed completion
    /// events, with the disk-stall and wedged-helper faults applied
    /// per job.
    fn dispatch_jobs(&mut self) {
        if self.port.jobs.is_empty() {
            return;
        }
        let jobs = std::mem::take(&mut self.port.jobs);
        for job in jobs {
            let delay = if job.kind == JobKind::Dynamic {
                // The compute-time model: the endpoint's fixed
                // per-request compute plus exponential jitter — or a
                // wedged worker, parked far past `dynamic_deadline`.
                if self.rng.chance(self.cfg.faults.wedge) {
                    5 * SEC
                } else {
                    let compute = self
                        .apps
                        .get(job.fs_path.to_string_lossy().as_ref())
                        .map(|a| a.compute_ns)
                        .unwrap_or(MILLI);
                    compute + 100_000 + self.rng.exp(self.cfg.dynamic_compute_nanos as f64) as u64
                }
            } else if self.rng.chance(self.cfg.faults.wedge) {
                5 * SEC
            } else if self.rng.chance(self.cfg.faults.disk_stall) {
                50 * MILLI + self.rng.exp(5.0 * MILLI as f64) as u64
            } else {
                100_000 + self.rng.exp(2.0 * MILLI as f64) as u64
            };
            self.queue.schedule_in(delay, Ev::HelperDone(job));
        }
    }

    /// The simulated disk, mirroring [`crate::fsjob`] mechanically: no
    /// tier or variant policy of its own — the inline/fd split obeys
    /// [`HelperJob::inline_max`], the representation obeys
    /// [`HelperJob::variant`] (a gzip preference serves the simulated
    /// `.gz` sibling when the identity file has one, falling back to
    /// identity otherwise; a missing identity file is `NotFound` even
    /// when a sibling "exists").
    fn exec_job(&self, job: &HelperJob) -> Done<SimFile> {
        let url = cache::split_variant_key(&job.path).0;
        let data = match self.files.get(url) {
            None => match job.kind {
                JobKind::Load => DoneData::Loaded(Err(io::ErrorKind::NotFound.into())),
                JobKind::Revalidate => DoneData::Stat(Err(io::ErrorKind::NotFound.into())),
                // Dynamic jobs are intercepted in `Ev::HelperDone` and
                // streamed through `dynamic_done`, never this
                // single-shot executor.
                JobKind::Dynamic => unreachable!("dynamic job reached the sim disk"),
            },
            Some(f) => match job.kind {
                JobKind::Dynamic => unreachable!("dynamic job reached the sim disk"),
                JobKind::Revalidate => {
                    // Stat the file the entry's variant came from.
                    let probe = if job.variant.is_gzip() {
                        gzip_sibling(f)
                    } else {
                        Some(f.clone())
                    };
                    match probe {
                        Some(v) => DoneData::Stat(Ok((v.len, Some(v.mtime)))),
                        None => DoneData::Stat(Err(io::ErrorKind::NotFound.into())),
                    }
                }
                JobKind::Load => {
                    let sibling = gzip_sibling(f);
                    let has_gzip = sibling.is_some();
                    let (serve, variant) = match sibling.filter(|_| job.variant.is_gzip()) {
                        Some(gz) => (gz, Variant::Gzip),
                        None => (f.clone(), Variant::Identity),
                    };
                    let data = if serve.len > job.inline_max {
                        FileData::Fd {
                            len: serve.len,
                            mtime: Some(serve.mtime),
                            file: serve,
                        }
                    } else {
                        FileData::Bytes {
                            body: (0..serve.len).map(|o| body_byte(serve.id, o)).collect(),
                            mtime: Some(serve.mtime),
                        }
                    };
                    DoneData::Loaded(Ok(LoadResult {
                        data,
                        variant,
                        has_gzip,
                    }))
                }
            },
        };
        Done {
            path: job.path.clone(),
            data,
            epoch: job.epoch,
            token: job.token,
        }
    }

    /// Delivers one dynamic exchange's whole event stream at a single
    /// simulated instant: the worker's frames synthesized from the
    /// endpoint's [`FileKind::Cgi`]-shaped model (1 KiB chunk split),
    /// ending clean — or unclean on the worker-crash fault, killing
    /// the body roughly halfway. A cancelled job (the `DynamicWait`
    /// deadline fired and purged the waiter, raising the flag) models
    /// the helper's kill+respawn: the respawn is counted, and half the
    /// time the completion is delivered anyway — it must die on the
    /// token gate inside `complete_job`.
    fn dynamic_done(&mut self, job: HelperJob) {
        if job.is_cancelled() {
            self.core
                .stats
                .worker_respawns
                .fetch_add(1, Ordering::Relaxed);
            if self.rng.chance(0.5) {
                return;
            }
        }
        let mut events = Vec::new();
        match self.apps.get(job.fs_path.to_string_lossy().as_ref()) {
            // No such application: the exchange fails pre-header.
            None => events.push(DynEvent::End { clean: false }),
            Some(app) => {
                let crash = self.rng.chance(self.cfg.faults.worker_crash);
                let emit_up_to = if crash {
                    app.output_bytes / 2
                } else {
                    app.output_bytes
                };
                let mut off = 0u64;
                while off < emit_up_to {
                    let take = (emit_up_to - off).min(1024);
                    let body: Vec<u8> = (off..off + take).map(|o| body_byte(app.id, o)).collect();
                    events.push(DynEvent::Chunk(Bytes::from(body)));
                    off += take;
                }
                events.push(DynEvent::End { clean: !crash });
            }
        }
        if !job.is_cancelled() && matches!(events.last(), Some(DynEvent::End { clean: false })) {
            // A crashed worker is killed and respawned by the helper.
            self.core
                .stats
                .worker_respawns
                .fetch_add(1, Ordering::Relaxed);
        }
        let mut completed = std::mem::take(&mut self.completed_scratch);
        completed.clear();
        let now = self.now_i();
        for ev in events {
            let done = Done {
                path: job.path.clone(),
                data: DoneData::Dynamic(ev),
                epoch: job.epoch,
                token: job.token,
            };
            self.core
                .complete_job(done, &mut self.conns, &mut completed, &mut self.port, now);
        }
        self.dispatch_jobs();
        // Every event pushes the same slot; drive it once.
        completed.dedup();
        for idx in completed.drain(..) {
            self.drive(idx);
        }
        self.completed_scratch = completed;
    }

    /// Retires a now-empty slot: cancels its wheel key, scrubs and
    /// fingerprints its captured response stream, frees the slot.
    fn finalize(&mut self, slot: usize) {
        self.wheel.cancel(conn_token(slot, self.uids[slot]));
        let Some(cap) = self.caps[slot].take() else {
            return;
        };
        let cap = Rc::try_unwrap(cap)
            .map(RefCell::into_inner)
            .unwrap_or_else(|rc| rc.borrow().clone());
        let mut head = cap.bytes;
        scrub_dates(&mut head);
        let mut h = FNV_OFFSET;
        for &b in &head {
            h = fnv(h, b);
        }
        h ^= cap.body_hash.rotate_left(17);
        self.fingerprint = (self.fingerprint ^ h).wrapping_mul(FNV_PRIME);
        self.bytes += head.len() as u64 + cap.body_bytes;
        self.latencies.push(self.queue.now().since(cap.opened_at));
        self.free.push(slot);
        self.live -= 1;
    }

    /// Expires due deadlines (mirroring the real loop's expiry block)
    /// and keeps a backstop `Tick` scheduled for the next pending one.
    fn pump_timers(&mut self) {
        let now = self.now_i();
        let mut expired = std::mem::take(&mut self.expired_scratch);
        self.wheel.expire(now, &mut expired);
        for tok in expired.drain(..) {
            let slot = (tok >> 32) as usize;
            let uid = tok as u32;
            let kind = match self
                .conns
                .get(slot)
                .and_then(|c| c.as_ref())
                .filter(|c| c.io.uid == uid)
            {
                Some(c) => c.deadline,
                None => continue,
            };
            if kind == DeadlineKind::DynamicWait {
                // A wedged application worker. The shared expiry path
                // purges the waiter (raising the job's cancel flag)
                // and either queues the 504 — pre-header — or demands
                // a mid-stream sever.
                if self.core.expire_dynamic_wait(slot, &mut self.conns) {
                    self.drive(slot);
                } else {
                    if let Some(c) = self.conns[slot].as_ref() {
                        self.core.note_close(c, now);
                    }
                    self.conns[slot] = None;
                    self.finalize(slot);
                }
                continue;
            }
            let counter = match kind {
                DeadlineKind::Idle => &self.core.stats.idle_reaped,
                DeadlineKind::Header => &self.core.stats.read_timeouts,
                DeadlineKind::WriteStall => &self.core.stats.write_stall_timeouts,
                DeadlineKind::HelperWait => &self.core.stats.helper_wait_timeouts,
                DeadlineKind::DynamicWait => unreachable!("handled above"),
                DeadlineKind::None => continue,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = self.conns[slot].as_ref() {
                self.core.note_close(c, now);
            }
            self.conns[slot] = None;
            if kind == DeadlineKind::HelperWait {
                self.core.purge_waiter(slot);
            }
            self.finalize(slot);
        }
        self.expired_scratch = expired;
        if let Some(ms) = self.wheel.next_timeout_ms(now) {
            let at = self.queue.now() + (ms.max(1) as u64) * MILLI;
            if self.tick_at.is_none_or(|t| at < t) {
                self.queue.schedule_at(at, Ev::Tick);
                self.tick_at = Some(at);
            }
        }
    }

    fn check(&self, when: &str) -> Result<(), String> {
        let uids = &self.uids;
        self.core
            .check_invariants(&self.conns, &self.wheel, |i| conn_token(i, uids[i]))
            .map_err(|e| {
                format!(
                    "invariant violated ({when}, event {}, t={:?}): {e}",
                    self.queue.events_processed(),
                    self.queue.now()
                )
            })
    }

    fn handle(&mut self, ev: Ev) -> Result<(), String> {
        match ev {
            Ev::Open => {
                if self.opened >= self.cfg.connections {
                    return Ok(());
                }
                if self.live >= self.cfg.max_concurrent || self.rng.chance(self.cfg.faults.emfile) {
                    self.core
                        .stats
                        .accept_backpressure
                        .fetch_add(1, Ordering::Relaxed);
                    self.queue.schedule_in(2 * MILLI, Ev::Open);
                    return Ok(());
                }
                self.admit();
                self.opened += 1;
                // Two mid-run reloads with jobs in flight: stale-epoch
                // completions must serve waiters, never the new cache.
                let third = self.cfg.connections / 3;
                if third > 0 && (self.opened == third || self.opened == 2 * third) {
                    let generation = self.core.epoch + 1;
                    self.core.apply_reload(None, generation);
                    self.reloads += 1;
                    self.check("after reload")?;
                }
                if self.opened < self.cfg.connections {
                    let gap = 1 + self.rng.exp(self.cfg.interarrival_nanos as f64) as u64;
                    self.queue.schedule_in(gap, Ev::Open);
                } else {
                    self.queue.schedule_in(5 * MILLI, Ev::BeginDrain);
                }
            }
            Ev::Arrive { slot, uid } => {
                let Some(conn) = self
                    .conns
                    .get_mut(slot)
                    .and_then(|c| c.as_mut())
                    .filter(|c| c.io.uid == uid)
                else {
                    return Ok(());
                };
                if let Some((_, chunk)) = conn.io.script.pop_front() {
                    conn.io.inbox.extend(chunk);
                    if let Some(&(d, _)) = conn.io.script.front() {
                        self.queue.schedule_in(d, Ev::Arrive { slot, uid });
                    }
                    self.drive(slot);
                }
            }
            Ev::Refill { slot, uid } => {
                let Some(conn) = self
                    .conns
                    .get_mut(slot)
                    .and_then(|c| c.as_mut())
                    .filter(|c| c.io.uid == uid)
                else {
                    return Ok(());
                };
                conn.io.refill_pending = false;
                let add = if conn.io.partial {
                    64 + self.rng.uniform(0, 448) as usize
                } else {
                    8 * 1024 + self.rng.uniform(0, 56 * 1024) as usize
                };
                conn.io.window += add;
                self.drive(slot);
            }
            Ev::HelperDone(job) => {
                if job.kind == JobKind::Dynamic {
                    self.dynamic_done(job);
                    return Ok(());
                }
                // A cancelled job is usually skipped by the executor
                // (the cooperative flag); half the time we model a
                // helper already past the check — its completion must
                // then die on the token gate inside `complete_job`.
                if job.is_cancelled() && self.rng.chance(0.5) {
                    return Ok(());
                }
                let done = self.exec_job(&job);
                let mut completed = std::mem::take(&mut self.completed_scratch);
                completed.clear();
                let now = self.now_i();
                self.core
                    .complete_job(done, &mut self.conns, &mut completed, &mut self.port, now);
                self.dispatch_jobs();
                for idx in completed.drain(..) {
                    self.drive(idx);
                }
                self.completed_scratch = completed;
            }
            Ev::Tick => {
                self.tick_at = None;
            }
            Ev::BeginDrain => {
                self.core.begin_drain();
                // Sweep idle keep-alives at once, like the real
                // driver's drain entry.
                for slot in 0..self.conns.len() {
                    let idle = matches!(
                        &self.conns[slot],
                        Some(c) if matches!(c.state, ConnState::Reading)
                            && c.parser.buffered() == 0
                            && c.out.is_empty()
                            && c.sendfile.is_none()
                    );
                    if idle {
                        self.core
                            .stats
                            .drained_conns
                            .fetch_add(1, Ordering::Relaxed);
                        if let Some(c) = self.conns[slot].as_ref() {
                            let now = self.now_i();
                            self.core.note_close(c, now);
                        }
                        self.conns[slot] = None;
                        self.finalize(slot);
                    }
                }
                self.check("after drain entry")?;
            }
        }
        Ok(())
    }
}

/// Replays `cfg.connections` simulated connections against the shared
/// protocol core and the given file set. Returns the run's
/// [`SimReport`] — or `Err` on any invariant violation, stranded
/// connection, or livelock. Same inputs ⇒ equal report, always.
pub fn run(cfg: &SimConfig, specs: &[FileSpec]) -> Result<SimReport, String> {
    if specs.is_empty() {
        return Err("sim needs a non-empty file set".into());
    }
    let mut sim = Sim::new(cfg.clone(), specs);
    sim.queue.schedule_in(1, Ev::Open);
    let fuel = cfg.connections.saturating_mul(500) + 1_000_000;
    while let Some((_, ev)) = sim.queue.pop() {
        sim.handle(ev)?;
        sim.pump_timers();
        if cfg.check_every > 0 && sim.queue.events_processed().is_multiple_of(cfg.check_every) {
            sim.check("periodic")?;
        }
        if sim.queue.events_processed() > fuel {
            return Err(format!(
                "fuel exhausted after {} events with {} connections live — livelock",
                sim.queue.events_processed(),
                sim.live
            ));
        }
    }
    if sim.live != 0 {
        return Err(format!(
            "calendar empty but {} connections never terminated",
            sim.live
        ));
    }
    sim.check("final")?;
    if !sim.core.waiters.is_empty() || !sim.core.pending_jobs.is_empty() {
        return Err("leaked waiter lists or pending jobs at end of run".into());
    }
    sim.latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if sim.latencies.is_empty() {
            0
        } else {
            sim.latencies[((sim.latencies.len() - 1) as f64 * q) as usize]
        }
    };
    let s = &sim.core.stats;
    let ld = Ordering::Relaxed;
    Ok(SimReport {
        connections: sim.opened,
        requests: s.requests.load(ld),
        bytes: sim.bytes,
        fingerprint: sim.fingerprint,
        cache_hits: s.cache_hits.load(ld),
        helper_jobs: s.helper_jobs.load(ld),
        jobs_cancelled: s.jobs_cancelled.load(ld),
        helper_wait_timeouts: s.helper_wait_timeouts.load(ld),
        read_timeouts: s.read_timeouts.load(ld),
        write_stall_timeouts: s.write_stall_timeouts.load(ld),
        idle_reaped: s.idle_reaped.load(ld),
        not_modified: s.not_modified.load(ld),
        range_requests: s.range_requests.load(ld),
        range_unsatisfiable: s.range_unsatisfiable.load(ld),
        revalidations: s.revalidations.load(ld),
        stale_evicted: s.stale_evicted.load(ld),
        drained_conns: s.drained_conns.load(ld),
        accept_backpressure: s.accept_backpressure.load(ld),
        dynamic_requests: s.dynamic_requests.load(ld),
        dynamic_timeouts: s.dynamic_timeouts.load(ld),
        worker_respawns: s.worker_respawns.load(ld),
        reloads: sim.reloads,
        p50_conn_nanos: pct(0.50),
        p99_conn_nanos: pct(0.99),
        sim_elapsed_nanos: sim.queue.now().as_nanos(),
        events: sim.queue.events_processed(),
        hist_request: s.hist_request.snapshot().summary(),
        hist_ttfb: s.hist_ttfb.snapshot().summary(),
        hist_helper_wait: s.hist_helper_wait.snapshot().summary(),
        hist_lifetime: s.hist_lifetime.snapshot().summary(),
        hist_worker_wait: s.hist_worker_wait.snapshot().summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_workload::sitegen::{generate_files, SizeDist};

    fn small_site(seed: u64) -> Vec<FileSpec> {
        let mut rng = SimRng::new(seed);
        let dist = SizeDist {
            body_median: 2_000.0,
            body_sigma: 1.0,
            tail_fraction: 0.03,
            tail_scale: 20_000.0,
            tail_alpha: 1.3,
            max_bytes: 128 * 1024,
        };
        generate_files(&mut rng, 512 * 1024, &dist)
    }

    /// Checked on every event: a few thousand fault-heavy connections
    /// with the invariant checker at maximum cadence.
    #[test]
    fn fault_heavy_run_holds_invariants_every_event() {
        let site = small_site(7);
        let mut cfg = SimConfig::new(42, 2_000);
        cfg.check_every = 1;
        let report = run(&cfg, &site).expect("invariants must hold");
        assert_eq!(report.connections, 2_000);
        assert!(report.requests > 1_000, "requests: {}", report.requests);
        assert!(report.bytes > 0);
        assert!(report.cache_hits > 0, "Zipf traffic must hit the cache");
        assert!(report.helper_jobs > 0);
        assert_eq!(report.reloads, 2, "both mid-run reloads must apply");
        assert!(
            report.helper_wait_timeouts > 0,
            "wedged/stalled helpers must reap waiters: {report:?}"
        );
        assert!(
            report.jobs_cancelled > 0,
            "reaped last-waiters must cancel their jobs: {report:?}"
        );
        assert!(
            report.read_timeouts > 0,
            "trickled headers must hit the header deadline: {report:?}"
        );
        assert!(
            report.not_modified > 0,
            "current-validator IMS/INM requests must 304: {report:?}"
        );
        assert!(
            report.range_requests > 0,
            "the range fraction must reach file responses: {report:?}"
        );
        assert!(
            report.range_unsatisfiable > 0,
            "past-EOF ranges must 416: {report:?}"
        );
        assert!(
            report.range_unsatisfiable < report.range_requests,
            "most generated ranges are satisfiable: {report:?}"
        );
        assert!(report.drained_conns > 0, "drain must retire idle conns");
        // The dynamic fraction must reach the worker pool, and the
        // fault mix must produce both respawns (crashes) and wedges
        // reaped by the DynamicWait deadline.
        assert!(report.dynamic_requests > 0, "{report:?}");
        assert!(report.worker_respawns > 0, "{report:?}");
        assert!(
            report.hist_worker_wait.count > 0,
            "delivered dynamic exchanges must record a worker wait: {report:?}"
        );
        // The histograms ride the same drive path: every completed
        // response has a latency sample, every admitted connection a
        // lifetime sample, and parked waiters a helper-wait sample.
        assert_eq!(report.hist_request.count, report.requests, "{report:?}");
        assert_eq!(report.hist_lifetime.count, report.connections, "{report:?}");
        assert!(report.hist_helper_wait.count > 0, "{report:?}");
        assert!(report.hist_ttfb.count > 0, "{report:?}");
        assert!(report.hist_request.p99_nanos >= report.hist_request.p50_nanos);
    }

    /// The acceptance bar: same seed ⇒ byte-identical report (the
    /// fingerprint folds every scrubbed response byte), different
    /// seed ⇒ a different stream.
    #[test]
    fn same_seed_is_bit_identical_different_seed_is_not() {
        let site = small_site(7);
        let cfg = SimConfig::new(1234, 3_000);
        let a = run(&cfg, &site).expect("run A");
        let b = run(&cfg, &site).expect("run B");
        assert_eq!(a, b, "same seed must replay bit-for-bit");

        let other = run(&SimConfig::new(1235, 3_000), &site).expect("run C");
        assert_ne!(
            a.fingerprint, other.fingerprint,
            "different seeds should not collide"
        );
    }

    /// With faults off and generous pacing, nothing times out and no
    /// job is ever cancelled — the reap counters are all quiet.
    #[test]
    fn clean_run_has_no_timeouts_or_cancellations() {
        let site = small_site(9);
        let mut cfg = SimConfig::new(5, 1_500);
        cfg.faults = FaultPlan::none();
        cfg.check_every = 1;
        let report = run(&cfg, &site).expect("clean run");
        assert_eq!(report.connections, 1_500);
        assert_eq!(report.helper_wait_timeouts, 0, "{report:?}");
        assert_eq!(report.jobs_cancelled, 0, "{report:?}");
        assert_eq!(report.read_timeouts, 0, "{report:?}");
        assert_eq!(report.write_stall_timeouts, 0, "{report:?}");
        assert_eq!(report.dynamic_timeouts, 0, "{report:?}");
        assert_eq!(report.worker_respawns, 0, "{report:?}");
        assert!(report.requests > 1_500, "{report:?}");
        assert!(
            report.dynamic_requests > 0,
            "the dynamic fraction must draw requests: {report:?}"
        );
    }

    /// Wedged application workers must be reaped by the DynamicWait
    /// deadline: a heavy wedge fraction yields 504s (`dynamic_timeouts`)
    /// and kills (`worker_respawns`), and the run stays bit-identical
    /// per seed — the dynamic tier is inside the fingerprint contract.
    #[test]
    fn wedged_workers_time_out_deterministically() {
        let site = small_site(17);
        let mut cfg = SimConfig::new(99, 2_000);
        cfg.dynamic_fraction = 0.25;
        cfg.faults = FaultPlan::none();
        cfg.faults.wedge = 0.10;
        cfg.faults.worker_crash = 0.05;
        cfg.check_every = 1;
        let report = run(&cfg, &site).expect("wedged run");
        assert!(report.dynamic_requests > 50, "{report:?}");
        assert!(
            report.dynamic_timeouts > 0,
            "wedged exchanges must 504 on the DynamicWait deadline: {report:?}"
        );
        assert!(
            report.worker_respawns > 0,
            "wedges and crashes must retire workers: {report:?}"
        );
        assert!(
            report.jobs_cancelled > 0,
            "purged dynamic waiters must cancel their jobs: {report:?}"
        );
        let again = run(&cfg, &site).expect("wedged run again");
        assert_eq!(report, again, "dynamic traffic stays bit-identical");
    }

    /// Both body tiers must be exercised: the sim's threshold sits
    /// inside the generated size range, so some bodies stream through
    /// the simulated `sendfile` and some through `writev`.
    #[test]
    fn both_body_tiers_are_exercised() {
        let site = small_site(11);
        assert!(
            site.iter().any(|f| f.size >= 16 * 1024),
            "need a large file"
        );
        assert!(site.iter().any(|f| f.size < 16 * 1024), "need a small file");
        let report = run(&SimConfig::new(77, 2_000), &site).expect("run");
        assert!(report.bytes > 0);
    }

    /// Variant negotiation must be live in the stream: turning the
    /// Accept-Encoding fraction off changes what the same seed serves
    /// (the gzip representation has different bytes, lengths, and
    /// validators). `chance(0.0)` still consumes an RNG draw, so the
    /// two runs share arrival order and differ only in negotiation.
    #[test]
    fn gzip_negotiation_reaches_the_wire() {
        let site = small_site(13);
        assert!(
            site.len() >= 3,
            "need enough files for some to have gz siblings"
        );
        let mut cfg = SimConfig::new(21, 1_000);
        cfg.faults = FaultPlan::none();
        let with_gz = run(&cfg, &site).expect("gzip run");
        let mut cfg_id = cfg.clone();
        cfg_id.gzip_fraction = 0.0;
        let identity_only = run(&cfg_id, &site).expect("identity run");
        assert_ne!(
            with_gz.fingerprint, identity_only.fingerprint,
            "negotiated gzip variants must change the response stream"
        );
        let again = run(&cfg, &site).expect("gzip run again");
        assert_eq!(with_gz, again, "variant traffic stays bit-identical");
    }

    #[test]
    fn date_scrubbing_blanks_only_the_value() {
        let mut buf =
            b"HTTP/1.1 200 OK\r\nDate: Fri, 08 Aug 2026 12:00:00 GMT\r\nX: y\r\n\r\n".to_vec();
        let before = buf.len();
        scrub_dates(&mut buf);
        assert_eq!(buf.len(), before);
        assert!(buf.windows(6).any(|w| w == b"Date: "));
        assert!(
            !buf.windows(3).any(|w| w == b"GMT"),
            "the date value must be gone"
        );
        assert!(
            buf.windows(8).any(|w| w == b"\r\nX: y\r\n"),
            "neighbours intact"
        );
    }
}
