//! Server lifecycle: signal-driven orchestration and the shared
//! drain/reload state the event-loop shards consult.
//!
//! Two halves:
//!
//! * [`Signals`] — the classic **self-pipe trick**. A signal handler
//!   may only call async-signal-safe functions, so the handler here
//!   does exactly one thing: `write(2)` the signal number as a single
//!   byte into the write end of a socketpair installed at
//!   [`Signals::install`] time. The read end is an ordinary fd the
//!   process's control thread can block on (or register in an event
//!   backend), turning asynchronous signal delivery into ordinary
//!   readable-fd events — the same shape as the servers' existing
//!   stop-pipe/wake machinery. The conventional mapping, applied by
//!   [`drive`] and the `graceful_restart` example:
//!
//!   | signal    | meaning                                        |
//!   |-----------|------------------------------------------------|
//!   | `SIGTERM` | drain: stop accepting, serve out, then exit    |
//!   | `SIGHUP`  | reload config/site tables, drop no connection  |
//!   | `SIGINT`  | immediate stop (today's abrupt teardown)       |
//!
//! * [`LifecycleShared`] — the per-server state those orders mutate:
//!   a monotonic phase (`Running → Draining → Stopping`; a drain can
//!   escalate to a stop, never the reverse), the drain deadline, and
//!   a generation-counted reload slot the shards poll for free (one
//!   relaxed atomic load per loop iteration).
//!
//! The sigaction FFI follows the crate's thin-syscall idiom
//! ([`crate::sock`], [`crate::poll`]): glibc's `struct sigaction`
//! layout on Linux, the portable ANSI `signal(2)` registration
//! elsewhere — `SA_RESTART` is a nicety, not a correctness
//! requirement, because every blocking site in the servers already
//! tolerates `EINTR`.

use std::io::{self, Read};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The signals the lifecycle machinery speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// `SIGHUP` — reload configuration without dropping a connection.
    Hup,
    /// `SIGINT` — stop immediately (sever in-flight connections).
    Int,
    /// `SIGTERM` — drain gracefully, then exit.
    Term,
}

impl Signal {
    /// The OS signal number (identical across unix platforms for
    /// these three).
    pub fn number(self) -> i32 {
        match self {
            Signal::Hup => 1,
            Signal::Int => 2,
            Signal::Term => 15,
        }
    }

    fn from_number(n: i32) -> Option<Signal> {
        match n {
            1 => Some(Signal::Hup),
            2 => Some(Signal::Int),
            15 => Some(Signal::Term),
            _ => None,
        }
    }
}

/// Write end of the self-pipe, stashed where the (process-global)
/// signal handler can reach it. −1 = no receiver installed.
static SIGNAL_FD: AtomicI32 = AtomicI32::new(-1);

unsafe extern "C" {
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
    fn kill(pid: i32, sig: i32) -> i32;
    fn getpid() -> i32;
}

/// The installed handler: forward the signal number as one byte down
/// the self-pipe. `write(2)` is async-signal-safe; nothing else here
/// allocates, locks, or calls into the runtime. A full pipe (wildly
/// unlikely — the receiver drains on every wait) drops the byte,
/// which merely coalesces repeated signals.
extern "C" fn forward_signal(signo: i32) {
    let fd = SIGNAL_FD.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = [signo as u8];
        // SAFETY: one-byte write of a stack buffer to an fd we own.
        unsafe { write(fd, byte.as_ptr() as *const core::ffi::c_void, 1) };
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod ffi {
    /// glibc's `struct sigaction` (x86-64/aarch64 layout): handler,
    /// 1024-bit mask, flags, restorer. Only the handler and flags are
    /// populated; an empty mask blocks nothing extra during delivery.
    #[repr(C)]
    struct SigAction {
        handler: usize,
        mask: [u64; 16],
        flags: core::ffi::c_int,
        restorer: usize,
    }

    const SA_RESTART: core::ffi::c_int = 0x10000000;

    unsafe extern "C" {
        fn sigaction(
            signum: core::ffi::c_int,
            act: *const core::ffi::c_void,
            oldact: *mut core::ffi::c_void,
        ) -> core::ffi::c_int;
    }

    pub fn install_handler(signo: i32, handler: extern "C" fn(i32)) -> std::io::Result<()> {
        let act = SigAction {
            handler: handler as usize,
            mask: [0; 16],
            flags: SA_RESTART,
            restorer: 0,
        };
        // SAFETY: `act` is a correctly laid out glibc sigaction the
        // kernel only reads; the handler is async-signal-safe.
        let rc = unsafe {
            sigaction(
                signo,
                &act as *const _ as *const core::ffi::c_void,
                std::ptr::null_mut(),
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }
}

#[cfg(not(any(target_os = "linux", target_os = "android")))]
mod ffi {
    unsafe extern "C" {
        fn signal(signum: core::ffi::c_int, handler: usize) -> usize;
    }

    /// ANSI `signal(2)` registration: portable, loses `SA_RESTART`
    /// (harmless — every blocking site tolerates `EINTR`).
    pub fn install_handler(signo: i32, handler: extern "C" fn(i32)) -> std::io::Result<()> {
        const SIG_ERR: usize = usize::MAX;
        // SAFETY: registering an async-signal-safe handler.
        if unsafe { signal(signo, handler as usize) } == SIG_ERR {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
}

/// The read end of the installed self-pipe: signal delivery turned
/// into ordinary readable-fd bytes (one byte per signal, the signal
/// number itself).
pub struct Signals {
    rx: UnixStream,
}

impl Signals {
    /// Installs a handler for each signal in `set`, routing deliveries
    /// into a fresh self-pipe, and returns its read end. Installing
    /// again replaces the previous pipe (the handler is process-global
    /// state — the last installer wins); the replaced pipe's write end
    /// is intentionally leaked, never closed, so a signal racing the
    /// swap cannot write into a recycled descriptor.
    pub fn install(set: &[Signal]) -> io::Result<Signals> {
        let (tx, rx) = UnixStream::pair()?;
        // The handler's write must never block — a full pipe drops
        // (coalesces) the byte instead of wedging the interrupted
        // thread.
        tx.set_nonblocking(true)?;
        let fd = tx.as_raw_fd();
        // The write end must outlive any future signal delivery, so
        // it is leaked into the handler's static slot. An fd a prior
        // install leaked stays leaked: a handler that loaded the old
        // value just before the swap may still `write(2)` to it, and
        // closing it would let that write land on a closed — or
        // since-reused — descriptor and corrupt an unrelated stream.
        // Installs happen once or twice per process, so the cost is a
        // dormant socketpair end, never a misdirected byte.
        std::mem::forget(tx);
        SIGNAL_FD.store(fd, Ordering::SeqCst);
        for s in set {
            ffi::install_handler(s.number(), forward_signal)?;
        }
        Ok(Signals { rx })
    }

    /// The three conventional lifecycle signals: `SIGHUP`, `SIGINT`,
    /// `SIGTERM`.
    pub fn install_default() -> io::Result<Signals> {
        Signals::install(&[Signal::Hup, Signal::Int, Signal::Term])
    }

    /// The self-pipe's read end, for registration in an event backend.
    pub fn as_raw_fd(&self) -> i32 {
        self.rx.as_raw_fd()
    }

    /// Blocks until a recognized signal arrives.
    pub fn wait(&mut self) -> io::Result<Signal> {
        self.rx.set_read_timeout(None)?;
        self.read_one(None)
    }

    /// Blocks up to `timeout` for a signal; `Ok(None)` on timeout.
    pub fn wait_timeout(&mut self, timeout: Duration) -> io::Result<Option<Signal>> {
        self.rx
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        match self.read_one(Some(Instant::now() + timeout)) {
            Ok(s) => Ok(Some(s)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn read_one(&mut self, deadline: Option<Instant>) -> io::Result<Signal> {
        let mut byte = [0u8; 1];
        loop {
            match self.rx.read(&mut byte) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "signal pipe closed",
                    ))
                }
                // Unknown numbers (a byte from a signal no longer in
                // the handled set) are skipped, not errors.
                Ok(_) => match Signal::from_number(byte[0] as i32) {
                    Some(s) => return Ok(s),
                    None => continue,
                },
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return Err(io::ErrorKind::TimedOut.into());
                        }
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Sends `signal` to this process (`kill(getpid(), …)`), exactly as a
/// process supervisor would — used by the graceful-restart example
/// and tests to exercise the real delivery path.
pub fn send_to_self(signal: Signal) -> io::Result<()> {
    // SAFETY: plain syscalls, no pointers.
    let rc = unsafe { kill(getpid(), signal.number()) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Lifecycle phase: the server is accepting and serving.
pub(crate) const PHASE_RUNNING: u8 = 0;
/// Lifecycle phase: accepting has stopped; existing connections are
/// served to completion or the drain deadline.
pub(crate) const PHASE_DRAINING: u8 = 1;
/// Lifecycle phase: tear down now, severing whatever remains.
pub(crate) const PHASE_STOPPING: u8 = 2;

/// State shared between a server handle and its shards: the current
/// phase, the drain deadline, and the reload slot. Phase moves only
/// forward (`Running → Draining → Stopping`), so a drain that hits
/// its deadline escalates cleanly and a late `drain()` cannot undo a
/// `stop_now()`.
#[derive(Debug)]
pub(crate) struct LifecycleShared {
    phase: AtomicU8,
    drain_deadline: Mutex<Option<Instant>>,
    /// Bumped on every published reload; shards compare against their
    /// last-seen value — one relaxed load per loop iteration when
    /// nothing changed.
    reload_gen: AtomicU64,
    reload_docroot: Mutex<Option<PathBuf>>,
    /// Bumped on every access-log rotation request; shards compare
    /// against their last-seen value and reopen their log file at the
    /// configured path — the logrotate handshake, same polling shape
    /// as the reload generation.
    log_gen: AtomicU64,
}

impl LifecycleShared {
    pub fn new() -> Self {
        LifecycleShared {
            phase: AtomicU8::new(PHASE_RUNNING),
            drain_deadline: Mutex::new(None),
            reload_gen: AtomicU64::new(0),
            reload_docroot: Mutex::new(None),
            log_gen: AtomicU64::new(0),
        }
    }

    pub fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    /// Enters the draining phase (no-op if already draining or
    /// stopping — phases only move forward).
    pub fn begin_drain(&self, deadline: Instant) {
        *self
            .drain_deadline
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(deadline);
        let _ = self.phase.compare_exchange(
            PHASE_RUNNING,
            PHASE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Escalates straight to stopping, from any phase.
    pub fn stop_now(&self) {
        self.phase.store(PHASE_STOPPING, Ordering::SeqCst);
    }

    pub fn drain_deadline(&self) -> Option<Instant> {
        *self
            .drain_deadline
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes a new docroot; shards observe the generation bump and
    /// swap their config (and flush their caches) between drives — no
    /// connection is interrupted.
    pub fn publish_reload(&self, docroot: PathBuf) {
        *self
            .reload_docroot
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(docroot);
        self.reload_gen.fetch_add(1, Ordering::Release);
    }

    pub fn reload_gen(&self) -> u64 {
        self.reload_gen.load(Ordering::Acquire)
    }

    pub fn reload_docroot(&self) -> Option<PathBuf> {
        self.reload_docroot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Asks every access-log owner to reopen its file.
    pub fn rotate_logs(&self) {
        self.log_gen.fetch_add(1, Ordering::Release);
    }

    pub fn log_gen(&self) -> u64 {
        self.log_gen.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_numbers_round_trip() {
        for s in [Signal::Hup, Signal::Int, Signal::Term] {
            assert_eq!(Signal::from_number(s.number()), Some(s));
        }
        assert_eq!(Signal::from_number(9), None);
    }

    #[test]
    fn phase_only_moves_forward() {
        let l = LifecycleShared::new();
        assert_eq!(l.phase(), PHASE_RUNNING);
        l.begin_drain(Instant::now());
        assert_eq!(l.phase(), PHASE_DRAINING);
        l.stop_now();
        assert_eq!(l.phase(), PHASE_STOPPING);
        // A late drain cannot resurrect a stopped server.
        l.begin_drain(Instant::now());
        assert_eq!(l.phase(), PHASE_STOPPING);
    }

    #[test]
    fn reload_publishes_generation_and_root() {
        let l = LifecycleShared::new();
        assert_eq!(l.reload_gen(), 0);
        assert_eq!(l.reload_docroot(), None);
        l.publish_reload(PathBuf::from("/srv/new"));
        assert_eq!(l.reload_gen(), 1);
        assert_eq!(l.reload_docroot(), Some(PathBuf::from("/srv/new")));
    }

    #[test]
    fn self_pipe_delivers_raised_signals() {
        // SIGHUP only: SIGINT/SIGTERM must keep their defaults under
        // the test harness.
        let mut signals = Signals::install(&[Signal::Hup]).unwrap();
        send_to_self(Signal::Hup).unwrap();
        let got = signals
            .wait_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("signal must arrive");
        assert_eq!(got, Signal::Hup);
        // Nothing further pending.
        assert_eq!(
            signals.wait_timeout(Duration::from_millis(50)).unwrap(),
            None
        );
    }
}
