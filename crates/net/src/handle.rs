//! One server-facing surface for both architectures.
//!
//! [`Server`] (AMPED shards) and [`MtServer`] (thread-per-connection)
//! expose the same operational verbs — address, stats, docroot reload,
//! drain, stop — but as inherent methods on two unrelated types, so
//! every loopback battery, lifecycle test, and example that compares
//! the two grew its own per-server match arms. [`ServeHandle`] is that
//! shared surface as a trait: code that only *operates* a server
//! (rather than starting one) takes a `Box<dyn ServeHandle>` and stops
//! caring which architecture is behind it.
//!
//! The consuming teardown verbs (`drain`, `stop`) take
//! `self: Box<Self>` because both servers consume themselves on
//! teardown — a drained handle cannot be reused, and the trait keeps
//! that guarantee instead of weakening it to `&mut self`.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;

use crate::mt::MtServer;
use crate::server::{NetConfig, Server, ServerStats};

/// The architecture-independent handle to a running server: everything
/// an operator (or a test battery) does to a server it did not start.
pub trait ServeHandle {
    /// The bound listening address.
    fn local_addr(&self) -> SocketAddr;

    /// The registry-backed counters and latency histograms.
    fn stats(&self) -> &ServerStats;

    /// Publishes a new document root without dropping a connection.
    fn reload_docroot(&self, docroot: PathBuf);

    /// Graceful teardown bounded by the configured drain timeout.
    fn drain(self: Box<Self>);

    /// Teardown with a short bounded grace for in-flight responses.
    fn stop(self: Box<Self>);
}

impl ServeHandle for Server {
    fn local_addr(&self) -> SocketAddr {
        self.addr()
    }
    fn stats(&self) -> &ServerStats {
        Server::stats(self)
    }
    fn reload_docroot(&self, docroot: PathBuf) {
        Server::reload_docroot(self, docroot);
    }
    fn drain(self: Box<Self>) {
        Server::drain(*self);
    }
    fn stop(self: Box<Self>) {
        Server::stop(*self);
    }
}

impl ServeHandle for MtServer {
    fn local_addr(&self) -> SocketAddr {
        self.addr()
    }
    fn stats(&self) -> &ServerStats {
        MtServer::stats(self)
    }
    fn reload_docroot(&self, docroot: PathBuf) {
        MtServer::reload_docroot(self, docroot);
    }
    fn drain(self: Box<Self>) {
        MtServer::drain(*self);
    }
    fn stop(self: Box<Self>) {
        MtServer::stop(*self);
    }
}

/// Which architecture to start — the one switch point left once
/// everything downstream goes through [`ServeHandle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerKind {
    /// The AMPED event-loop shards ([`Server`]).
    Amped,
    /// The thread-per-connection comparison server ([`MtServer`]).
    Mt,
}

/// Starts a server of the given architecture and returns it behind the
/// shared handle — the single entry point driver-parameterized tests
/// and examples loop over.
pub fn start(
    kind: ServerKind,
    addr: impl ToSocketAddrs,
    cfg: NetConfig,
) -> io::Result<Box<dyn ServeHandle>> {
    Ok(match kind {
        ServerKind::Amped => Box::new(Server::start(addr, cfg)?),
        ServerKind::Mt => Box::new(MtServer::start(addr, cfg)?),
    })
}
