//! Minimal safe wrapper over `sendfile(2)` — the zero-copy syscall
//! that transmits file bytes straight from the kernel page cache to a
//! socket, never routing them through application buffers.
//!
//! This is the large-body half of the server's two-tier send path:
//! small hot files live pre-rendered in the [`crate::ContentCache`]
//! and go out with `writev(2)`; bodies above
//! `NetConfig::sendfile_threshold_bytes` are served through this
//! module so a multi-megabyte response costs neither content-cache
//! budget nor a userspace copy (PAPER.md §4.4's mapped-file instinct,
//! taken all the way to the page cache).
//!
//! Like [`crate::poll`] and [`crate::writev`], the one foreign
//! function is declared directly against the platform libc. On
//! platforms without a usable `sendfile` (anything non-Linux here) the
//! same seam is served by a positional `read` + `write` loop —
//! strictly more copies, identical observable behavior — so callers
//! never branch on the platform.

use std::fs::File;
use std::io;
use std::os::unix::io::RawFd;

/// Largest count passed to one `sendfile` call. Linux caps a single
/// call at `0x7ffff000` regardless; staying at that bound also keeps
/// the fallback's arithmetic safely inside `usize` on 32-bit targets.
pub const MAX_SEND: u64 = 0x7fff_f000;

#[cfg(any(target_os = "linux", target_os = "android"))]
unsafe extern "C" {
    // `ssize_t sendfile(int out_fd, int in_fd, off_t *offset, size_t
    // count)` — with an explicit offset pointer the file's own cursor
    // is never read or written, so one open `File` can be shared by
    // every connection streaming it concurrently. The offset is
    // declared 64-bit unconditionally, so on 32-bit targets (where the
    // plain `sendfile` symbol takes a 32-bit `off_t`) the LFS variant
    // `sendfile64` must be bound instead — a raw extern declaration
    // gets no help from the libc's `_FILE_OFFSET_BITS` macro magic.
    #[cfg_attr(target_pointer_width = "32", link_name = "sendfile64")]
    fn sendfile(
        out_fd: core::ffi::c_int,
        in_fd: core::ffi::c_int,
        offset: *mut i64,
        count: usize,
    ) -> isize;
}

/// Transmits up to `remaining` bytes of `file`, starting at `*offset`,
/// to the socket `out_fd`, advancing `*offset` by the number of bytes
/// accepted and returning that count.
///
/// `Ok(0)` with `remaining > 0` means the file ended early (truncated
/// after its length was stat'ed); since the response header already
/// promised a `Content-Length`, the caller must treat that as a dead
/// connection. `EINTR` is retried internally; `EAGAIN`/`WouldBlock` on
/// a nonblocking socket surfaces to the caller, which retries when the
/// socket polls writable.
#[cfg(any(target_os = "linux", target_os = "android"))]
pub fn send_file(
    out_fd: RawFd,
    file: &File,
    offset: &mut u64,
    remaining: u64,
) -> io::Result<usize> {
    use std::os::unix::io::AsRawFd;
    let count = remaining.min(MAX_SEND) as usize;
    let mut off = *offset as i64;
    loop {
        // SAFETY: both fds are live for the duration of the call (the
        // caller borrows `file`); `off` is a valid exclusive pointer;
        // the kernel reads the file range and writes only `off`.
        let rc = unsafe { sendfile(out_fd, file.as_raw_fd(), &mut off, count) };
        if rc >= 0 {
            *offset = off as u64;
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Portable seam: on platforms without `sendfile(2)` the same
/// signature is served by the buffered copy loop.
#[cfg(not(any(target_os = "linux", target_os = "android")))]
pub fn send_file(
    out_fd: RawFd,
    file: &File,
    offset: &mut u64,
    remaining: u64,
) -> io::Result<usize> {
    send_file_buffered(out_fd, file, offset, remaining)
}

/// The fallback behind the [`send_file`] seam: positional `read_at`
/// into a bounce buffer, then one gathered write. One extra copy per
/// chunk versus real `sendfile`, but the same contract — positional
/// (never touches the file cursor, so the `File` stays shareable),
/// partial-write-aware, `Ok(0)` only at end-of-file.
///
/// Compiled on every platform so the portable path stays tested where
/// `sendfile` is the one actually used.
pub fn send_file_buffered(
    out_fd: RawFd,
    file: &File,
    offset: &mut u64,
    remaining: u64,
) -> io::Result<usize> {
    use std::os::unix::fs::FileExt;
    const BOUNCE: usize = 64 * 1024;
    let mut buf = [0u8; BOUNCE];
    let want = remaining.min(BOUNCE as u64) as usize;
    if want == 0 {
        return Ok(0);
    }
    let n = file.read_at(&mut buf[..want], *offset)?;
    if n == 0 {
        return Ok(0);
    }
    // A partial socket write leaves the unread tail for the next call:
    // the offset advances only by what the socket accepted.
    let w = crate::writev::writev_fd(out_fd, &[&buf[..n]])?;
    *offset += w as u64;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn temp_file(tag: &str, contents: &[u8]) -> (std::path::PathBuf, File) {
        let path =
            std::env::temp_dir().join(format!("flash-sendfile-{tag}-{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        (path.clone(), File::open(&path).unwrap())
    }

    /// Drives `send` until `len` bytes have gone out, draining the
    /// reader side concurrently; returns the reassembled stream.
    fn pump(
        send: impl Fn(RawFd, &File, &mut u64, u64) -> io::Result<usize>,
        file: &File,
        len: u64,
    ) -> Vec<u8> {
        let (a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut offset = 0u64;
        let mut got = Vec::new();
        let mut buf = [0u8; 8192];
        while offset < len || got.len() < len as usize {
            if offset < len {
                let want = len - offset;
                match send(a.as_raw_fd(), file, &mut offset, want) {
                    Ok(0) => panic!("unexpected EOF at offset {offset}"),
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("send failed: {e}"),
                }
            }
            match b.read(&mut buf) {
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("read failed: {e}"),
            }
        }
        got
    }

    #[test]
    fn send_file_streams_byte_exactly_through_backpressure() {
        // Larger than any default socket buffer, so the nonblocking
        // socket backpressures and partial sends actually happen.
        let contents: Vec<u8> = (0..600_000u32).map(|i| (i * 31) as u8).collect();
        let (path, file) = temp_file("exact", &contents);
        let got = pump(send_file, &file, contents.len() as u64);
        assert_eq!(got, contents);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn buffered_fallback_streams_byte_exactly() {
        let contents: Vec<u8> = (0..600_000u32).map(|i| (i * 13) as u8).collect();
        let (path, file) = temp_file("fallback", &contents);
        let got = pump(send_file_buffered, &file, contents.len() as u64);
        assert_eq!(got, contents);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn offset_makes_file_shareable_between_senders() {
        let contents: Vec<u8> = (0..100_000u32).map(|i| (i * 7) as u8).collect();
        let (path, file) = temp_file("share", &contents);
        // Two interleaved "connections" over the same File: explicit
        // offsets mean neither perturbs the other.
        let (a1, mut b1) = UnixStream::pair().unwrap();
        let (a2, mut b2) = UnixStream::pair().unwrap();
        let (mut o1, mut o2) = (0u64, 0u64);
        let len = contents.len() as u64;
        let (mut g1, mut g2) = (Vec::new(), Vec::new());
        let mut buf = [0u8; 16384];
        while o1 < len || o2 < len {
            if o1 < len {
                let want = (len - o1).min(8192);
                send_file(a1.as_raw_fd(), &file, &mut o1, want).unwrap();
                let n = b1.read(&mut buf).unwrap();
                g1.extend_from_slice(&buf[..n]);
            }
            if o2 < len {
                let want = (len - o2).min(8192);
                send_file(a2.as_raw_fd(), &file, &mut o2, want).unwrap();
                let n = b2.read(&mut buf).unwrap();
                g2.extend_from_slice(&buf[..n]);
            }
        }
        while g1.len() < contents.len() {
            let n = b1.read(&mut buf).unwrap();
            g1.extend_from_slice(&buf[..n]);
        }
        while g2.len() < contents.len() {
            let n = b2.read(&mut buf).unwrap();
            g2.extend_from_slice(&buf[..n]);
        }
        assert_eq!(g1, contents);
        assert_eq!(g2, contents);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncation_surfaces_as_zero_length_send() {
        let (path, file) = temp_file("trunc", &[0xCC; 4096]);
        // Stat said 4096, but the file shrinks under us.
        std::fs::write(&path, b"oops").unwrap();
        let (a, mut _b) = UnixStream::pair().unwrap();
        let mut offset = 4u64; // past the new EOF
        let n = send_file(a.as_raw_fd(), &file, &mut offset, 4092).unwrap();
        assert_eq!(n, 0, "reads past EOF must report 0, not invent bytes");
        let _ = std::fs::remove_file(path);
    }
}
