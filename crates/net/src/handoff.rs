//! Generation handoff: passing live listening sockets to a new server
//! process over a unix control socket with `SCM_RIGHTS`.
//!
//! The zero-downtime restart story has two halves. `SO_REUSEPORT`
//! (see [`crate::sock`]) lets a *new* generation bind fresh listeners
//! on the same port while the old one still serves — but a freshly
//! bound listener starts with an empty backlog, and the connections
//! already queued on the old generation's listeners are RST when those
//! sockets close. Passing the **actual listener fds** closes that
//! race: the new generation receives duplicates of the very kernel
//! sockets the old one accepts from, so the listening socket — and
//! every connection queued in its backlog — survives the generation
//! switch in both accept modes, including the `Single`/non-reuseport
//! fallback where a same-port rebind is impossible in the first place.
//!
//! The mechanism is the classic one: `sendmsg(2)` with a
//! `SCM_RIGHTS` control message over a `unix(7)` stream socket — the
//! kernel installs duplicates of the carried descriptors in the
//! receiving process. The wire format here is one data byte (the fd
//! count, which doubles as the message body `sendmsg` requires) plus
//! the fd array in ancillary data; [`send_fds`]/[`recv_fds`] carry
//! raw descriptors, [`send_listeners`]/[`recv_listeners`] wrap them
//! for the server's use, and [`HandoffControl`] is the rendezvous: the
//! old generation binds a control socket at a well-known path, the new
//! generation connects and collects the listener set, then the old
//! generation drains ([`crate::server::Server::drain`]).
//!
//! Raw FFI in the same thin-syscall idiom as [`crate::sock`]; on
//! platforms where the msghdr layout here is not verified
//! (non-Linux), the functions return `Unsupported` rather than guess —
//! those platforms run the reuseport-less `Single` mode against std
//! listeners anyway.

use std::io;
use std::net::TcpListener;
use std::os::unix::io::RawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// The most fds one handoff message carries — far above any real
/// listener set (one per shard, shards capped at 8), far below the
/// kernel's per-message `SCM_RIGHTS` ceiling (253).
pub const MAX_HANDOFF_FDS: usize = 64;

/// Sends duplicates of `fds` over a connected unix stream socket as a
/// single `SCM_RIGHTS` message.
pub fn send_fds(sock: &UnixStream, fds: &[RawFd]) -> io::Result<()> {
    if fds.is_empty() || fds.len() > MAX_HANDOFF_FDS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "fd count out of range for handoff",
        ));
    }
    imp::send_fds(sock, fds)
}

/// Receives one `SCM_RIGHTS` message, returning the installed
/// descriptor duplicates. The caller owns the returned fds.
pub fn recv_fds(sock: &UnixStream) -> io::Result<Vec<RawFd>> {
    imp::recv_fds(sock)
}

/// Sends duplicates of a listener set (see
/// [`crate::server::Server::handoff_listeners`]).
pub fn send_listeners(sock: &UnixStream, listeners: &[TcpListener]) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    let fds: Vec<RawFd> = listeners.iter().map(|l| l.as_raw_fd()).collect();
    send_fds(sock, &fds)
}

/// Receives a listener set for [`crate::server::Server::start_inherited`].
pub fn recv_listeners(sock: &UnixStream) -> io::Result<Vec<TcpListener>> {
    use std::os::unix::io::FromRawFd;
    let fds = recv_fds(sock)?;
    // SAFETY: each fd was freshly installed in this process by
    // recvmsg and is owned by nothing else; TcpListener takes over
    // closing it.
    Ok(fds
        .into_iter()
        .map(|fd| unsafe { TcpListener::from_raw_fd(fd) })
        .collect())
}

/// The old generation's rendezvous point: a unix listener at a
/// well-known filesystem path the new generation connects to. The
/// path is unlinked on drop (and a stale one replaced on bind), so a
/// crashed generation does not wedge the next restart.
pub struct HandoffControl {
    listener: UnixListener,
    path: PathBuf,
}

impl HandoffControl {
    /// Binds the control socket at `path`, replacing any stale socket
    /// file left by a dead process.
    pub fn bind(path: impl Into<PathBuf>) -> io::Result<HandoffControl> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(HandoffControl { listener, path })
    }

    /// The control socket's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serves one handoff request: blocks for a connection, then sends
    /// the listener set to it.
    pub fn serve_once(&self, listeners: &[TcpListener]) -> io::Result<()> {
        let (conn, _) = self.listener.accept()?;
        send_listeners(&conn, listeners)
    }
}

impl Drop for HandoffControl {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The new generation's side of [`HandoffControl`]: connect and
/// collect the old generation's listener set.
pub fn request_listeners(path: impl AsRef<Path>) -> io::Result<Vec<TcpListener>> {
    let conn = UnixStream::connect(path.as_ref())?;
    recv_listeners(&conn)
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod imp {
    use super::MAX_HANDOFF_FDS;
    use std::io;
    use std::mem;
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;

    const SOL_SOCKET: core::ffi::c_int = 1;
    const SCM_RIGHTS: core::ffi::c_int = 1;
    /// Atomically set `O_CLOEXEC` on every received fd, so a handoff
    /// landing mid-`fork` elsewhere in the process cannot leak
    /// listeners into unrelated children.
    const MSG_CMSG_CLOEXEC: core::ffi::c_int = 0x40000000;
    /// Returned in `msg_flags` when the control buffer was too small
    /// for the peer's ancillary data — some fds were dropped by the
    /// kernel, so the set is unusable.
    const MSG_CTRUNC: core::ffi::c_int = 0x8;

    #[repr(C)]
    struct IoVec {
        base: *mut core::ffi::c_void,
        len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        name: *mut core::ffi::c_void,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut core::ffi::c_void,
        controllen: usize,
        flags: core::ffi::c_int,
    }

    #[repr(C)]
    struct CmsgHdr {
        len: usize,
        level: core::ffi::c_int,
        ty: core::ffi::c_int,
    }

    unsafe extern "C" {
        fn sendmsg(fd: core::ffi::c_int, msg: *const MsgHdr, flags: core::ffi::c_int) -> isize;
        fn recvmsg(fd: core::ffi::c_int, msg: *mut MsgHdr, flags: core::ffi::c_int) -> isize;
        fn close(fd: core::ffi::c_int) -> core::ffi::c_int;
    }

    /// `CMSG_ALIGN` for this ABI: round up to the pointer size.
    fn cmsg_align(n: usize) -> usize {
        (n + mem::size_of::<usize>() - 1) & !(mem::size_of::<usize>() - 1)
    }

    /// A control buffer sized and aligned for one fd-carrying cmsg:
    /// `u64` elements guarantee `cmsghdr`'s alignment.
    fn control_buf(n_fds: usize) -> Vec<u64> {
        let bytes = cmsg_align(mem::size_of::<CmsgHdr>()) + cmsg_align(n_fds * 4);
        vec![0u64; bytes.div_ceil(8)]
    }

    pub fn send_fds(sock: &UnixStream, fds: &[RawFd]) -> io::Result<()> {
        let mut control = control_buf(fds.len());
        let controllen = cmsg_align(mem::size_of::<CmsgHdr>()) + fds.len() * 4;
        let base = control.as_mut_ptr() as *mut u8;
        // SAFETY: `control` is zeroed, u64-aligned, and large enough
        // for the header plus the fd array written right after it.
        unsafe {
            let hdr = base as *mut CmsgHdr;
            (*hdr).len = controllen;
            (*hdr).level = SOL_SOCKET;
            (*hdr).ty = SCM_RIGHTS;
            let data = base.add(cmsg_align(mem::size_of::<CmsgHdr>())) as *mut RawFd;
            for (i, fd) in fds.iter().enumerate() {
                data.add(i).write_unaligned(*fd);
            }
        }
        // One data byte — the fd count — both because sendmsg demands
        // a non-empty iov for ancillary data to ride on and as a
        // cross-check for the receiver.
        let mut count_byte = [fds.len() as u8];
        let mut iov = IoVec {
            base: count_byte.as_mut_ptr() as *mut core::ffi::c_void,
            len: 1,
        };
        let msg = MsgHdr {
            name: std::ptr::null_mut(),
            namelen: 0,
            iov: &mut iov,
            iovlen: 1,
            control: base as *mut core::ffi::c_void,
            controllen,
            flags: 0,
        };
        loop {
            // SAFETY: every pointer in `msg` outlives the call.
            let rc = unsafe { sendmsg(sock.as_raw_fd(), &msg, 0) };
            if rc >= 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn recv_fds(sock: &UnixStream) -> io::Result<Vec<RawFd>> {
        let mut control = control_buf(MAX_HANDOFF_FDS);
        let control_bytes = control.len() * 8;
        let mut count_byte = [0u8; 1];
        let mut iov = IoVec {
            base: count_byte.as_mut_ptr() as *mut core::ffi::c_void,
            len: 1,
        };
        let mut msg = MsgHdr {
            name: std::ptr::null_mut(),
            namelen: 0,
            iov: &mut iov,
            iovlen: 1,
            control: control.as_mut_ptr() as *mut core::ffi::c_void,
            controllen: control_bytes,
            flags: 0,
        };
        let received = loop {
            // SAFETY: every pointer in `msg` outlives the call; the
            // kernel writes within the declared lengths.
            let rc = unsafe { recvmsg(sock.as_raw_fd(), &mut msg, MSG_CMSG_CLOEXEC) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        if received == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "handoff peer closed before sending fds",
            ));
        }
        if msg.controllen < mem::size_of::<CmsgHdr>() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "handoff message carried no control data",
            ));
        }
        let base = control.as_ptr() as *const u8;
        // SAFETY: controllen covers at least one header (checked
        // above); the kernel wrote a valid cmsg there.
        let (level, ty, cmsg_len) = unsafe {
            let hdr = base as *const CmsgHdr;
            ((*hdr).level, (*hdr).ty, (*hdr).len)
        };
        // Collect whatever fds recvmsg already installed in this
        // process *before* validating: every rejection below must
        // close them, or a malformed peer leaks descriptors into us.
        let data_off = cmsg_align(mem::size_of::<CmsgHdr>());
        let mut fds = Vec::new();
        if level == SOL_SOCKET && ty == SCM_RIGHTS {
            let n = cmsg_len.saturating_sub(data_off) / 4;
            // SAFETY: cmsg_len (≤ controllen ≤ the buffer) covers n
            // fds starting at data_off.
            unsafe {
                let data = base.add(data_off) as *const RawFd;
                for i in 0..n {
                    fds.push(data.add(i).read_unaligned());
                }
            }
        }
        let reject = |fds: Vec<RawFd>, why: &str| {
            for fd in fds {
                // SAFETY: each fd was installed by this recvmsg and
                // handed to no one else.
                unsafe { close(fd) };
            }
            Err(io::Error::new(io::ErrorKind::InvalidData, why))
        };
        if msg.flags & MSG_CTRUNC != 0 {
            return reject(fds, "handoff control data truncated");
        }
        if level != SOL_SOCKET || ty != SCM_RIGHTS {
            return reject(fds, "handoff control message is not SCM_RIGHTS");
        }
        if fds.is_empty() || fds.len() != count_byte[0] as usize {
            return reject(fds, "handoff fd count mismatch");
        }
        Ok(fds)
    }
}

#[cfg(not(any(target_os = "linux", target_os = "android")))]
mod imp {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::os::unix::net::UnixStream;

    pub fn send_fds(_sock: &UnixStream, _fds: &[RawFd]) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SCM_RIGHTS handoff is implemented for Linux only",
        ))
    }

    pub fn recv_fds(_sock: &UnixStream) -> io::Result<Vec<RawFd>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SCM_RIGHTS handoff is implemented for Linux only",
        ))
    }
}

#[cfg(all(test, any(target_os = "linux", target_os = "android")))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn fds_survive_the_trip_and_still_work() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        send_listeners(&a, std::slice::from_ref(&listener)).unwrap();
        let received = recv_listeners(&b).unwrap();
        assert_eq!(received.len(), 1);
        let dup = &received[0];
        assert_ne!(dup.as_raw_fd(), listener.as_raw_fd(), "must be a dup");
        assert_eq!(dup.local_addr().unwrap(), addr);
        // The original closes; the dup's kernel socket lives on and
        // still accepts — the property generation handoff rests on.
        drop(listener);
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut served, _) = dup.accept().unwrap();
        served.write_all(b"gen2").unwrap();
        drop(served);
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"gen2");
    }

    #[test]
    fn multiple_fds_in_one_message() {
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l2 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l3 = TcpListener::bind("127.0.0.1:0").unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        send_listeners(
            &a,
            &[
                l1.try_clone().unwrap(),
                l2.try_clone().unwrap(),
                l3.try_clone().unwrap(),
            ],
        )
        .unwrap();
        let got = recv_listeners(&b).unwrap();
        assert_eq!(got.len(), 3);
        for (orig, dup) in [&l1, &l2, &l3].into_iter().zip(&got) {
            assert_eq!(orig.local_addr().unwrap(), dup.local_addr().unwrap());
        }
    }

    #[test]
    fn empty_fd_set_is_refused() {
        let (a, _b) = UnixStream::pair().unwrap();
        assert!(send_fds(&a, &[]).is_err());
    }

    #[test]
    fn closed_peer_is_a_clean_error() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        assert_eq!(
            recv_fds(&b).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn control_socket_rendezvous() {
        let path = std::env::temp_dir().join(format!("flash-handoff-{}.sock", std::process::id()));
        let control = HandoffControl::bind(&path).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let path2 = path.clone();
        let requester = std::thread::spawn(move || request_listeners(&path2).unwrap());
        control.serve_once(std::slice::from_ref(&listener)).unwrap();
        let got = requester.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].local_addr().unwrap(), addr);
        drop(control);
        assert!(!path.exists(), "control socket must be unlinked on drop");
    }
}
