//! The MT variant on real sockets: one blocking thread per connection.
//!
//! The §3.2 architecture for comparison with the AMPED server in
//! [`crate::server`]: threads share the content cache behind a lock, each
//! handles one connection at a time with blocking I/O, and the OS
//! provides all the overlap. Simpler than the event loop — the exact
//! trade the paper discusses — at the cost of per-connection threads and
//! lock traffic.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use flash_http::request::ParseStatus;
use flash_http::response::{error_body, ResponseHeader, Status};
use flash_http::Method;
use parking_lot::Mutex;

use crate::cache::{ContentCache, Entry};
use crate::server::{prepare_accept_backend, run_accept_loop, AcceptSink, NetConfig};

/// Handle to a running MT server.
pub struct MtServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stop_tx: UnixStream,
    accept_thread: Option<JoinHandle<()>>,
}

impl MtServer {
    /// Binds `addr` and starts the accept loop.
    pub fn start(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<MtServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        // Shutdown wakes the accept loop through this pipe, so the
        // loop blocks in its readiness backend with no timeout instead
        // of polling on an arbitrary interval.
        let (stop_tx, stop_rx) = UnixStream::pair()?;
        let cache = Arc::new(Mutex::new(ContentCache::new(cfg.cache_bytes)));
        // Listener + stop pipe registered before the thread exists, so
        // a backend that cannot watch them is a start error, not a
        // silently deaf accept thread (same machinery as the AMPED
        // acceptor — the loop itself is shared).
        let backend = prepare_accept_backend(cfg.backend, &listener, &stop_rx)?;
        let accept_thread = std::thread::Builder::new()
            .name("flash-mt-accept".into())
            .spawn(move || {
                let mut spawner = WorkerSpawner {
                    workers: Vec::new(),
                    cache,
                    cfg,
                    shutdown: Arc::clone(&shutdown2),
                };
                run_accept_loop(&listener, backend, &shutdown2, &mut spawner);
                drop(stop_rx); // keep the read side alive until exit
                for h in spawner.workers {
                    let _ = h.join();
                }
            })?;
        Ok(MtServer {
            addr,
            shutdown,
            stop_tx,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins the accept loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = (&self.stop_tx).write_all(b"q");
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// The MT accept sink: one blocking worker thread per connection,
/// finished workers reaped between drains.
struct WorkerSpawner {
    workers: Vec<JoinHandle<()>>,
    cache: Arc<Mutex<ContentCache>>,
    cfg: NetConfig,
    shutdown: Arc<AtomicBool>,
}

impl AcceptSink for WorkerSpawner {
    fn on_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let cache = Arc::clone(&self.cache);
        let cfg = self.cfg.clone();
        let flag = Arc::clone(&self.shutdown);
        if let Ok(h) = std::thread::Builder::new()
            .name("flash-mt-conn".into())
            .spawn(move || serve_conn(stream, cache, cfg, flag))
        {
            self.workers.push(h);
        }
    }

    fn after_drain(&mut self) {
        self.workers.retain(|h| !h.is_finished());
    }
}

fn serve_conn(
    mut stream: TcpStream,
    cache: Arc<Mutex<ContentCache>>,
    cfg: NetConfig,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut parser = flash_http::RequestParser::new();
    let mut buf = [0u8; 4096];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Serve any request already buffered (keep-alive pipelining)
        // before blocking on the socket for more bytes.
        let req = match parser.feed(&[]) {
            ParseStatus::Done(r) => r,
            ParseStatus::Error(_) => {
                let _ = respond_error(&mut stream, Status::BadRequest, false);
                return;
            }
            ParseStatus::Incomplete => {
                let n = match stream.read(&mut buf) {
                    Ok(0) => return,
                    Ok(n) => n,
                    Err(ref e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => return,
                };
                match parser.feed(&buf[..n]) {
                    ParseStatus::Done(r) => r,
                    ParseStatus::Incomplete => continue,
                    ParseStatus::Error(_) => {
                        let _ = respond_error(&mut stream, Status::BadRequest, false);
                        return;
                    }
                }
            }
        };
        let keep = req.keep_alive();
        let head_only = req.method == Method::Head;
        if req.method == Method::Post {
            let _ = respond_error(&mut stream, Status::NotImplemented, head_only);
            return;
        }
        let mut path = req.path.clone();
        if path.ends_with('/') {
            path.push_str("index.html");
        }
        // Check the shared cache (lock), then do the blocking disk work
        // on this thread — only this connection stalls.
        let cached = cache.lock().get(&path);
        let entry = match cached {
            Some(e) => Ok(e),
            None => match std::fs::read(cfg.docroot.join(path.trim_start_matches('/'))) {
                Ok(body) => {
                    let e = Entry::build(&path, body);
                    cache.lock().insert(path.clone(), Arc::clone(&e));
                    Ok(e)
                }
                Err(err) => Err(match err.kind() {
                    io::ErrorKind::NotFound => Status::NotFound,
                    io::ErrorKind::PermissionDenied => Status::Forbidden,
                    _ => Status::InternalError,
                }),
            },
        };
        let ok = match entry {
            Ok(e) => {
                let hdr = if keep {
                    &e.header_keep
                } else {
                    &e.header_close
                };
                stream.write_all(hdr).is_ok() && (head_only || stream.write_all(&e.body).is_ok())
            }
            Err(status) => respond_error(&mut stream, status, head_only).is_ok(),
        };
        if !ok || !keep {
            return;
        }
    }
}

fn respond_error(stream: &mut TcpStream, status: Status, head_only: bool) -> io::Result<()> {
    let body = Bytes::from(error_body(status));
    let hdr = ResponseHeader::build(status, "text/html", body.len() as u64, false, true);
    stream.write_all(hdr.as_bytes())?;
    if !head_only {
        stream.write_all(&body)?;
    }
    Ok(())
}
