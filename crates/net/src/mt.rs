//! The MT variant on real sockets: one blocking thread per connection.
//!
//! The §3.2 architecture for comparison with the AMPED server in
//! [`crate::server`]: threads share the content cache behind a lock, each
//! handles one connection at a time with blocking I/O, and the OS
//! provides all the overlap. Simpler than the event loop — the exact
//! trade the paper discusses — at the cost of per-connection threads and
//! lock traffic.
//!
//! The AMPED server's per-state deadlines are honoured here with the
//! blocking-I/O equivalents: the keep-alive idle and header-read
//! deadlines ([`NetConfig::idle_timeout`],
//! [`NetConfig::header_read_timeout`]) are enforced by capping the
//! socket read timeout and checking a per-phase clock, and the
//! write-progress deadline ([`NetConfig::write_stall_timeout`]) maps
//! onto `SO_SNDTIMEO` — a `send` that cannot move a single byte for
//! that long fails the write, which is exactly the "re-arm on forward
//! progress" semantics (each partial send restarts the timer).
//!
//! The lifecycle semantics match the AMPED server's too (see
//! [`crate::lifecycle`]): [`MtServer::drain`] stops accepting and lets
//! every worker finish its in-flight request (idle keep-alives close
//! within their 200 ms read cadence; a watchdog severs anything
//! slower than the grace), [`MtServer::reload_docroot`] swaps the
//! served root and flushes the shared cache without dropping a
//! connection, and [`MtServer::stop_now`] is the immediate teardown.
//! [`MtServer::start_inherited`] adopts a handed-off listener so even
//! the thread-per-connection comparison server restarts without
//! resetting a queued connection.

use std::cell::Cell;
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use flash_http::chunked;
use flash_http::request::{ParseStatus, Request};
use flash_http::response::{error_body, ResponseHeader, Status};
use flash_http::Method;
use parking_lot::Mutex;

use crate::appworker::{self, WorkerPool};
use crate::cache::{self, ContentCache, Entry, Lookup, Variant};
use crate::conn::plan::{plan_response, BodySource, RequestCond, Resource, ResponsePlan};
use crate::conn::{FileData, HelperJob, JobKind, LoadResult, ShardStats};
use crate::fsjob;
use crate::lifecycle::{LifecycleShared, PHASE_DRAINING, PHASE_STOPPING};
use crate::server::{prepare_accept_backend, run_accept_loop, AcceptSink, NetConfig, ServerStats};
use crate::sock;
use crate::stats::{self as metrics, AccessLogWriter, AccessRecord, Tier};

/// The shared content cache plus the reload generation its entries
/// were loaded under — one lock covers both, so a SIGHUP flush and
/// any insert racing it serialize: a worker still holding pre-reload
/// bytes finds `generation` advanced and skips its insert.
struct SharedCache {
    cache: ContentCache,
    generation: u64,
}

/// The MT access log: one writer shared by every worker, each
/// completed response appended under the lock as a single `write_all`
/// — whole lines, never fragments. `gen_seen` is the last rotation
/// generation any worker applied (the first to observe a bump
/// reopens).
struct MtLog {
    writer: Mutex<AccessLogWriter>,
    gen_seen: AtomicU64,
}

/// Handle to a running MT server.
pub struct MtServer {
    addr: SocketAddr,
    /// Accept-path stop flag: flipping it (plus a stop byte) ends the
    /// accept loop; workers are governed by `lifecycle`, not this.
    accept_stop: Arc<AtomicBool>,
    lifecycle: Arc<LifecycleShared>,
    drain_timeout: Duration,
    handoff: Vec<TcpListener>,
    stop_tx: UnixStream,
    accept_thread: Option<JoinHandle<()>>,
    /// One "shard" of counters and histograms — the same registry the
    /// AMPED server exports, so both architectures are compared with
    /// identical instruments.
    stats: ServerStats,
}

impl MtServer {
    /// Binds `addr` and starts the accept loop. The listener comes
    /// from the shared socket-options helper ([`crate::sock`]) — same
    /// nonblocking + `SO_REUSEADDR` setup as the AMPED listeners, one
    /// accept path's options can never drift from the other's.
    pub fn start(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<MtServer> {
        let req_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let listener = sock::bind_listener(req_addr, false)?;
        Self::start_impl(listener, cfg)
    }

    /// Starts on a listening socket inherited from a previous
    /// generation (see [`crate::handoff`]): the kernel socket — and
    /// its accept backlog — survives the generation switch.
    pub fn start_inherited(cfg: NetConfig, listener: TcpListener) -> io::Result<MtServer> {
        listener.set_nonblocking(true)?;
        Self::start_impl(listener, cfg)
    }

    fn start_impl(listener: TcpListener, cfg: NetConfig) -> io::Result<MtServer> {
        let addr = listener.local_addr()?;
        let accept_stop = Arc::new(AtomicBool::new(false));
        let accept_stop2 = Arc::clone(&accept_stop);
        let lifecycle = Arc::new(LifecycleShared::new());
        let lifecycle2 = Arc::clone(&lifecycle);
        // The handoff dup, kept so a next generation can inherit the
        // live kernel socket while this one drains.
        let handoff = vec![listener.try_clone()?];
        // Shutdown wakes the accept loop through this pipe, so the
        // loop blocks in its readiness backend with no timeout instead
        // of polling on an arbitrary interval.
        let (stop_tx, stop_rx) = UnixStream::pair()?;
        let cache = Arc::new(Mutex::new(SharedCache {
            cache: ContentCache::new(cfg.cache_bytes),
            generation: 0,
        }));
        // Listener + stop pipe registered before the thread exists, so
        // a backend that cannot watch them is a start error, not a
        // silently deaf accept thread (same machinery as the AMPED
        // acceptor — the loop itself is shared).
        let backend = prepare_accept_backend(cfg.backend, &listener, &stop_rx)?;
        let drain_timeout = cfg.drain_timeout;
        let shard = Arc::new(ShardStats::default());
        let shard2 = Arc::clone(&shard);
        // One application-worker pool shared by every connection
        // thread — the MT twin of the AMPED helper pool's workers.
        let workers = Arc::new(WorkerPool::new(
            cfg.dynamic_command
                .clone()
                .unwrap_or_else(WorkerPool::default_command),
        ));
        let log = cfg.access_log_path.clone().map(|p| {
            Arc::new(MtLog {
                writer: Mutex::new(AccessLogWriter::open(p)),
                gen_seen: AtomicU64::new(0),
            })
        });
        let accept_thread = std::thread::Builder::new()
            .name("flash-mt-accept".into())
            .spawn(move || {
                let mut spawner = WorkerSpawner {
                    workers: Vec::new(),
                    cache,
                    cfg,
                    lifecycle: lifecycle2,
                    shard: shard2,
                    log,
                    pool: workers,
                };
                run_accept_loop(&listener, backend, &accept_stop2, &mut spawner);
                drop(stop_rx); // keep the read side alive until exit
                for h in spawner.workers {
                    let _ = h.join();
                }
            })?;
        Ok(MtServer {
            addr,
            accept_stop,
            lifecycle,
            drain_timeout,
            handoff,
            stop_tx,
            accept_thread: Some(accept_thread),
            stats: ServerStats::new(vec![shard]),
        })
    }

    /// The server's counters and latency histograms — the same
    /// registry-backed [`ServerStats`] surface the AMPED server
    /// exposes (one shard here: every worker thread writes the same
    /// atomics).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The handoff set: a duplicate of the listening socket, for
    /// sending to the next generation (see [`crate::handoff`]).
    pub fn handoff_listeners(&self) -> &[TcpListener] {
        &self.handoff
    }

    /// See [`crate::server::Server::stop`]: the grace the drain-based
    /// `stop()` allows in-flight responses.
    const STOP_GRACE: Duration = Duration::from_secs(1);

    /// Drains gracefully, bounded by [`NetConfig::drain_timeout`]:
    /// accepting stops, workers finish their in-flight requests and
    /// close (idle keep-alives within their read-cadence), and a
    /// watchdog severs anything still running when the grace expires.
    pub fn drain(self) {
        let grace = self.drain_timeout;
        self.drain_for(grace);
    }

    /// [`MtServer::drain`] with an explicit grace bound.
    pub fn drain_for(mut self, grace: Duration) {
        self.lifecycle.begin_drain(Instant::now() + grace);
        // The deadline has no event loop to enforce it here — a
        // watchdog escalates to stop-now when the grace expires, so
        // the worker joins below cannot hang past it. It waits on a
        // channel rather than sleeping the full grace: when the drain
        // completes early the sender drops and the watchdog wakes and
        // exits at once, leaving no thread pinning the lifecycle Arc
        // for the rest of the grace.
        let lifecycle = Arc::clone(&self.lifecycle);
        let (drained_tx, drained_rx) = std::sync::mpsc::channel::<()>();
        let watchdog = std::thread::spawn(move || {
            if drained_rx.recv_timeout(grace) == Err(std::sync::mpsc::RecvTimeoutError::Timeout) {
                lifecycle.stop_now();
            }
        });
        // Release this generation's claim on the port: the handoff
        // dups close now (a next generation holding inherited dups
        // keeps the kernel socket alive), and the accept thread's
        // listener closes as it exits in the join below — so the
        // address is rebindable while the workers drain.
        self.handoff.clear();
        self.halt_accept_and_join();
        drop(drained_tx);
        let _ = watchdog.join();
    }

    /// Stops through the drain path with a short bounded grace (min of
    /// [`NetConfig::drain_timeout`] and 1 s), so a response already
    /// being written goes out whole. [`MtServer::stop_now`] is the
    /// immediate teardown.
    pub fn stop(self) {
        let grace = self.drain_timeout.min(Self::STOP_GRACE);
        self.drain_for(grace);
    }

    /// Stops immediately: workers notice within their 200 ms read
    /// cadence and return without finishing keep-alive conversations.
    pub fn stop_now(mut self) {
        self.lifecycle.stop_now();
        self.halt_accept_and_join();
    }

    /// Publishes a new document root: each worker swaps its docroot at
    /// the next loop turn and the shared cache is flushed exactly once
    /// (generation-checked under its lock). No connection is dropped.
    pub fn reload_docroot(&self, docroot: impl Into<std::path::PathBuf>) {
        self.lifecycle.publish_reload(docroot.into());
    }

    /// Asks the workers to reopen the access log at its configured
    /// path (the logrotate handshake — see
    /// [`crate::server::Server::rotate_access_logs`]). Applied by the
    /// first worker to observe the bump, within its 200 ms read
    /// cadence. A no-op unless [`NetConfig::access_log_path`] is set.
    pub fn rotate_access_logs(&self) {
        self.lifecycle.rotate_logs();
    }

    fn halt_accept_and_join(&mut self) {
        self.accept_stop.store(true, Ordering::SeqCst);
        let _ = (&self.stop_tx).write_all(b"q");
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// The MT accept sink: one blocking worker thread per connection,
/// finished workers reaped between drains.
struct WorkerSpawner {
    workers: Vec<JoinHandle<()>>,
    cache: Arc<Mutex<SharedCache>>,
    cfg: NetConfig,
    lifecycle: Arc<LifecycleShared>,
    shard: Arc<ShardStats>,
    log: Option<Arc<MtLog>>,
    /// Shared application-worker pool for the dynamic tier.
    pool: Arc<WorkerPool>,
}

impl AcceptSink for WorkerSpawner {
    fn on_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let cache = Arc::clone(&self.cache);
        let cfg = self.cfg.clone();
        let lifecycle = Arc::clone(&self.lifecycle);
        let shard = Arc::clone(&self.shard);
        let log = self.log.clone();
        let pool = Arc::clone(&self.pool);
        shard.accepted.fetch_add(1, Ordering::Relaxed);
        if let Ok(h) = std::thread::Builder::new()
            .name("flash-mt-conn".into())
            .spawn(move || serve_conn(stream, cache, cfg, lifecycle, shard, log, pool))
        {
            self.workers.push(h);
        }
    }

    fn after_drain(&mut self) {
        self.workers.retain(|h| !h.is_finished());
    }
}

/// Lifetime wrapper around [`serve_conn_inner`]: however the worker
/// exits — clean close, deadline, error — the connection's accept-to-
/// close span lands in the lifetime histogram.
fn serve_conn(
    stream: TcpStream,
    cache: Arc<Mutex<SharedCache>>,
    cfg: NetConfig,
    lifecycle: Arc<LifecycleShared>,
    shard: Arc<ShardStats>,
    log: Option<Arc<MtLog>>,
    pool: Arc<WorkerPool>,
) {
    let opened = Instant::now();
    serve_conn_inner(stream, cache, cfg, lifecycle, &shard, &log, &pool);
    shard
        .hist_lifetime
        .record(metrics::nanos_since(opened, Instant::now()));
}

fn serve_conn_inner(
    mut stream: TcpStream,
    cache: Arc<Mutex<SharedCache>>,
    mut cfg: NetConfig,
    lifecycle: Arc<LifecycleShared>,
    shard: &Arc<ShardStats>,
    log: &Option<Arc<MtLog>>,
    pool: &Arc<WorkerPool>,
) {
    // The blocking read is capped at 200 ms so shutdown and the phase
    // deadlines below are checked on that cadence even when the peer
    // is silent.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    // Write-progress deadline: SO_SNDTIMEO makes any single send that
    // cannot move a byte for this long fail; partial progress restarts
    // it — the blocking twin of the AMPED write-stall re-arm.
    let _ = stream.set_write_timeout(cfg.write_stall_timeout);
    let mut parser = flash_http::RequestParser::new();
    let mut buf = [0u8; 4096];
    // The current read phase started here: reset on every served
    // response and on the idle→header transition (first byte of a new
    // request). Idle and header phases carry different deadlines.
    let mut phase_start = Instant::now();
    let mut in_header = parser.buffered() > 0;
    // Reload generation this worker's docroot reflects. The cfg it
    // was spawned with is a clone of the accept thread's original —
    // generation 0's docroot, however many reloads have been
    // published since — so the epoch starts at 0 and the first loop
    // turn applies any pending reload before a request is served.
    // (Starting at `lifecycle.reload_gen()` would skip the swap and
    // serve — and cache — pre-reload content on post-reload
    // connections.)
    let mut epoch = 0u64;
    // Responses served so far: a fresh connection (none yet) gets
    // grace to send its first request during drain; an idle
    // keep-alive closes at once.
    let mut served = 0u64;
    loop {
        match lifecycle.phase() {
            PHASE_STOPPING => return,
            // Draining and idle between requests: close. The blocking
            // read below is capped at 200 ms, so an idle keep-alive
            // reaches this check within that cadence of the drain
            // starting. Buffered pipelined bytes are served first.
            PHASE_DRAINING if served > 0 && parser.buffered() == 0 => return,
            _ => {}
        }
        let generation = lifecycle.reload_gen();
        if generation != epoch {
            if let Some(root) = lifecycle.reload_docroot() {
                cfg.docroot = root;
            }
            // First worker to observe the new generation flushes the
            // shared cache; the generation lives under the cache lock,
            // so the flush happens exactly once and no pre-reload
            // insert can land after it (inserts are epoch-checked).
            let mut locked = cache.lock();
            if locked.generation != generation {
                locked.cache = ContentCache::new(cfg.cache_bytes);
                locked.generation = generation;
            }
            drop(locked);
            epoch = generation;
        }
        // Apply a pending access-log rotation: the first worker to
        // observe the bump wins the swap and reopens the shared
        // writer; the rest see the generation already applied.
        if let Some(l) = log {
            let g = lifecycle.log_gen();
            if l.gen_seen.swap(g, Ordering::AcqRel) != g {
                l.writer.lock().reopen();
            }
        }
        // Serve any request already buffered (keep-alive pipelining)
        // before blocking on the socket for more bytes.
        let req = match parser.feed(&[]) {
            ParseStatus::Done(r) => r,
            ParseStatus::Error(_) => {
                let _ = respond_error(&mut stream, Status::BadRequest, false);
                return;
            }
            ParseStatus::Incomplete => {
                let now_in_header = parser.buffered() > 0;
                if now_in_header != in_header {
                    in_header = now_in_header;
                    phase_start = Instant::now();
                }
                let deadline = if in_header {
                    cfg.header_read_timeout
                } else {
                    cfg.idle_timeout
                };
                if let Some(t) = deadline {
                    if phase_start.elapsed() >= t {
                        return; // slow header sender or idle keep-alive
                    }
                }
                let n = match stream.read(&mut buf) {
                    Ok(0) => return,
                    Ok(n) => n,
                    Err(ref e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => return,
                };
                match parser.feed(&buf[..n]) {
                    ParseStatus::Done(r) => r,
                    ParseStatus::Incomplete => continue,
                    ParseStatus::Error(_) => {
                        let _ = respond_error(&mut stream, Status::BadRequest, false);
                        return;
                    }
                }
            }
        };
        let keep = req.keep_alive();
        let head_only = req.method == Method::Head;
        let req_start = Instant::now();
        // The in-band observability endpoints, same contract as the
        // AMPED shards: counted under `metrics_requests`, never
        // `requests`, so scraping cannot perturb what it reports.
        if cfg.metrics_endpoint && req.path.starts_with("/.flash/") {
            let ok = serve_metrics_mt(&mut stream, shard, &req.path, keep, head_only);
            shard.metrics_requests.fetch_add(1, Ordering::Relaxed);
            if !ok || !keep {
                return;
            }
            served += 1;
            phase_start = Instant::now();
            in_header = parser.buffered() > 0;
            continue;
        }
        if req.method == Method::Post {
            let _ = respond_error(&mut stream, Status::NotImplemented, head_only);
            return;
        }
        // Dynamic-prefix routing, after the `/.flash/` endpoints above
        // (so a prefix covering `/` can never shadow them) and before
        // the static resolve: dynamic responses never touch the cache
        // or the filesystem.
        let dynamic = cfg
            .dynamic_prefix
            .as_deref()
            .is_some_and(|p| req.path.starts_with(p));
        let (ok, status_code, bytes_out, tier) = if dynamic {
            serve_dynamic_mt(&mut stream, pool, &cfg, shard, &req, req_start)
        } else {
            let mut path = req.path.clone();
            if path.ends_with('/') {
                path.push_str("index.html");
            }
            let cond = RequestCond::from_request(&req);
            // Resolve the representation against the shared variant cache
            // (gzip slot first for gzip-accepting clients), loading through
            // the shared mechanical executor on a miss — only this
            // connection stalls on the disk. The resolved resource then
            // goes through the same response plane as the AMPED shards:
            // the planner, not this driver, decides 200/206/304/416.
            let resolved = resolve_resource(&cache, &cfg, shard, epoch, &path, cond.accept_gzip);
            // Each arm writes the header first and records TTFB on its
            // success — with blocking sockets that write IS the first
            // response byte on the wire.
            let ttfb = || {
                shard
                    .hist_ttfb
                    .record(metrics::nanos_since(req_start, Instant::now()));
            };
            match resolved {
                Ok((resource, body_tier)) => {
                    let plan = match &resource {
                        MtResource::Cached(e) => {
                            let res: Resource<'_, Arc<File>> = Resource::Cached(e);
                            plan_response(&res, &path, &cond, keep, body_tier, shard)
                        }
                        MtResource::File {
                            file,
                            len,
                            mtime,
                            variant,
                            has_gzip,
                            etag,
                            header_keep,
                            header_close,
                        } => {
                            let res = Resource::File {
                                file,
                                len: *len,
                                mtime: *mtime,
                                variant: *variant,
                                has_gzip: *has_gzip,
                                etag,
                                header_keep,
                                header_close,
                            };
                            plan_response(&res, &path, &cond, keep, body_tier, shard)
                        }
                    };
                    let status = plan.status.code();
                    let tier = plan.tier;
                    match write_plan(&mut stream, plan, head_only, shard, &ttfb) {
                        Ok(n) => (true, status, n, tier),
                        Err(_) => (false, status, 0, tier),
                    }
                }
                Err(status) => match respond_error(&mut stream, status, head_only) {
                    Ok(n) => {
                        ttfb();
                        (true, status.code(), n, Tier::Error)
                    }
                    Err(_) => (false, status.code(), 0, Tier::Error),
                },
            }
        };
        if ok {
            let latency = metrics::nanos_since(req_start, Instant::now());
            shard.requests.fetch_add(1, Ordering::Relaxed);
            shard.hist_request.record(latency);
            if let Some(l) = log {
                let mut batch = vec![AccessRecord {
                    host: req.host.clone().unwrap_or_default(),
                    method: match req.method {
                        Method::Get => "GET",
                        Method::Head => "HEAD",
                        Method::Post => "POST",
                    },
                    path: req.path.clone(),
                    status: status_code,
                    bytes: bytes_out,
                    latency_us: latency / 1_000,
                    tier,
                }];
                l.writer.lock().drain(&mut batch);
            }
        }
        if !ok || !keep {
            return;
        }
        served += 1;
        phase_start = Instant::now();
        in_header = parser.buffered() > 0;
    }
}

/// Serves one dynamic request inline on the connection thread — the
/// blocking twin of the AMPED shard's streaming path. The whole
/// worker exchange (checkout, request line, frame loop) runs right
/// here, each `DATA` frame forwarded to the client as one HTTP chunk
/// the moment it arrives. [`NetConfig::dynamic_deadline`] bounds
/// worker *silence* (re-armed on every frame), matching the shard's
/// `DynamicWait` semantics: a wedged worker yields a `504` while
/// nothing has been written yet, or a severed connection mid-stream —
/// the client sees chunked framing with no terminator, a detectable
/// truncation. Dynamic responses carry no validators and honour no
/// conditional or `Range` headers. Returns the same
/// `(ok, status, bytes, tier)` tuple as the static arms.
fn serve_dynamic_mt(
    stream: &mut TcpStream,
    pool: &WorkerPool,
    cfg: &NetConfig,
    shard: &Arc<ShardStats>,
    req: &Request,
    req_start: Instant,
) -> (bool, u16, u64, Tier) {
    shard.dynamic_requests.fetch_add(1, Ordering::Relaxed);
    let keep = req.keep_alive();
    let head_only = req.method == Method::Head;
    let header = ResponseHeader::build_chunked(Status::Ok, "text/plain", keep, true);
    let record_ttfb = || {
        shard
            .hist_ttfb
            .record(metrics::nanos_since(req_start, Instant::now()));
    };
    if head_only {
        // Headers only: no worker exchange, no chunked framing at all
        // (mirrors the shard tier, where HEAD never opens the stream).
        return match stream.write_all(header.as_bytes()) {
            Ok(()) => {
                record_ttfb();
                (
                    true,
                    Status::Ok.code(),
                    header.as_bytes().len() as u64,
                    Tier::Dynamic,
                )
            }
            Err(_) => (false, Status::Ok.code(), 0, Tier::Dynamic),
        };
    }
    let (worker, retired) = pool.checkout();
    let bump = |retired: u64| {
        if retired > 0 {
            shard.worker_respawns.fetch_add(retired, Ordering::Relaxed);
        }
    };
    let mut worker = match worker {
        Ok(w) => w,
        Err(_) => {
            // Cannot even spawn the worker program.
            bump(retired);
            return match respond_error(stream, Status::InternalError, false) {
                Ok(n) => {
                    record_ttfb();
                    (true, Status::InternalError.code(), n, Tier::Error)
                }
                Err(_) => (false, Status::InternalError.code(), 0, Tier::Error),
            };
        }
    };
    let wait_start = Instant::now();
    if worker
        .sock
        .write_all(format!("GET {}\n", req.path).as_bytes())
        .is_err()
    {
        drop(worker); // kills
        bump(retired + 1);
        return match respond_error(stream, Status::InternalError, false) {
            Ok(n) => {
                record_ttfb();
                (true, Status::InternalError.code(), n, Tier::Error)
            }
            Err(_) => (false, Status::InternalError.code(), 0, Tier::Error),
        };
    }
    // Silence deadline: `armed` resets on every worker event, and the
    // frame reader's poll tick trips the stop predicate when the gap
    // since the last event exceeds `dynamic_deadline`.
    let armed = Cell::new(Instant::now());
    let stop = || {
        cfg.dynamic_deadline
            .is_some_and(|d| armed.get().elapsed() >= d)
    };
    let mut reader = appworker::FrameReader::new(&worker.sock, &stop);
    let mut n = 0u64;
    let mut first_event = true;
    let mut header_written = false;
    let mut client_dead = false;
    // Loop exits (EOF, deadline, oversized line, framing corruption,
    // or a hard socket error) are classified below the loop.
    while let Ok(Some(line)) = reader.read_line() {
        armed.set(Instant::now());
        if first_event {
            first_event = false;
            shard
                .hist_worker_wait
                .record(metrics::nanos_since(wait_start, Instant::now()));
        }
        if line == b"END" {
            // Clean end: the worker survives. The client write may
            // still fail — that closes the connection, not the worker.
            drop(reader);
            pool.checkin(worker);
            bump(retired);
            let mut ok = true;
            if !header_written {
                ok = stream.write_all(header.as_bytes()).is_ok();
                if ok {
                    record_ttfb();
                    n += header.as_bytes().len() as u64;
                }
            }
            let ok = ok && stream.write_all(chunked::TERMINATOR).is_ok();
            if ok {
                n += chunked::TERMINATOR.len() as u64;
            }
            return (ok, Status::Ok.code(), n, Tier::Dynamic);
        }
        let Some(len) = appworker::parse_data_header(&line) else {
            break; // framing corruption — a crash
        };
        let body = match reader.read_exact(len) {
            Ok(Some(body)) => body,
            Ok(None) | Err(_) => break,
        };
        armed.set(Instant::now());
        if !header_written {
            header_written = true;
            if stream.write_all(header.as_bytes()).is_err() {
                client_dead = true;
                break;
            }
            record_ttfb();
            n += header.as_bytes().len() as u64;
        }
        if body.is_empty() {
            // A zero-length chunk would terminate the chunked body.
            continue;
        }
        let size = chunked::size_line(body.len());
        if stream.write_all(&size).is_err()
            || stream.write_all(&body).is_err()
            || stream.write_all(chunked::CRLF).is_err()
        {
            client_dead = true;
            break;
        }
        n += (size.len() + body.len() + chunked::CRLF.len()) as u64;
    }
    // The exchange broke: worker crash/garbage, silence deadline, or
    // the client vanished mid-stream. All paths kill the worker — a
    // kill is the only way to resync the framing (and for a vanished
    // client, the shard path cancels the exchange the same way).
    let timed_out = !client_dead && reader.stopped();
    drop(reader);
    drop(worker); // kills
    bump(retired + 1);
    if timed_out {
        shard.dynamic_timeouts.fetch_add(1, Ordering::Relaxed);
        if !header_written {
            // Wedged before the first byte: the 504 the shard tier
            // produces when its DynamicWait deadline fires.
            return match respond_error(stream, Status::GatewayTimeout, false) {
                Ok(k) => {
                    record_ttfb();
                    (true, Status::GatewayTimeout.code(), k, Tier::Error)
                }
                Err(_) => (false, Status::GatewayTimeout.code(), 0, Tier::Error),
            };
        }
    } else if !client_dead && !header_written {
        // Crashed before producing anything: a plain 500.
        return match respond_error(stream, Status::InternalError, false) {
            Ok(k) => {
                record_ttfb();
                (true, Status::InternalError.code(), k, Tier::Error)
            }
            Err(_) => (false, Status::InternalError.code(), 0, Tier::Error),
        };
    }
    // Mid-stream failure: sever. The unterminated chunked body is the
    // client's truncation signal.
    (false, Status::Ok.code(), n, Tier::Dynamic)
}

/// Serves `GET /.flash/metrics` (Prometheus text) or `/.flash/stats`
/// (JSON) from the MT worker's own thread; any other `/.flash/` path
/// is a 404. Returns whether the write succeeded.
fn serve_metrics_mt(
    stream: &mut TcpStream,
    shard: &Arc<ShardStats>,
    path: &str,
    keep: bool,
    head_only: bool,
) -> bool {
    let one = std::slice::from_ref(shard);
    let payload = match path {
        "/.flash/metrics" => Some(("text/plain; version=0.0.4", metrics::render_prometheus(one))),
        "/.flash/stats" => Some(("application/json", metrics::render_json(one))),
        _ => None,
    };
    match payload {
        Some((ctype, body)) => {
            let hdr = ResponseHeader::build(Status::Ok, ctype, body.len() as u64, keep, true);
            stream.write_all(hdr.as_bytes()).is_ok()
                && (head_only || stream.write_all(body.as_bytes()).is_ok())
        }
        None => respond_error(stream, Status::NotFound, head_only).is_ok(),
    }
}

/// A resolved representation on the MT path: a shared-cache entry, or
/// an open descriptor (with its plain-200 headers pre-rendered) bound
/// for the blocking `sendfile` window loop.
enum MtResource {
    Cached(Arc<Entry>),
    File {
        file: Arc<File>,
        len: u64,
        mtime: Option<i64>,
        variant: Variant,
        has_gzip: bool,
        etag: String,
        header_keep: Bytes,
        header_close: Bytes,
    },
}

/// A synthetic [`HelperJob`] for inline execution: the MT path has no
/// helper pool, so the job exists only to carry the variant and the
/// core's tier threshold to the shared executor.
fn inline_job(cfg: &NetConfig, key: &str, kind: JobKind, variant: Variant) -> HelperJob {
    let url_path = cache::split_variant_key(key).0;
    HelperJob {
        path: key.to_string(),
        fs_path: cfg.docroot.join(url_path.trim_start_matches('/')),
        kind,
        variant,
        inline_max: cfg.sendfile_threshold_bytes,
        epoch: 0,
        token: 0,
        cancel: Arc::new(AtomicBool::new(false)),
    }
}

/// Consults one slot of the shared variant cache, revalidating a
/// stale hit inline (blocking is this server's whole idiom): a
/// matching re-stat restarts the TTL clock, a mismatch evicts — the
/// same policy the AMPED shards apply through their helper pool.
fn check_slot(
    cache: &Arc<Mutex<SharedCache>>,
    cfg: &NetConfig,
    shard: &Arc<ShardStats>,
    key: &str,
    variant: Variant,
) -> Option<Arc<Entry>> {
    // The lookup's lock guard must drop before the stale arm runs: it
    // re-locks to refresh/invalidate.
    let looked_up = cache.lock().cache.lookup(key, cfg.cache_revalidate_ttl);
    match looked_up {
        Lookup::Hit(e) => Some(e),
        Lookup::Stale(e) => {
            match fsjob::exec_stat(&inline_job(cfg, key, JobKind::Revalidate, variant)) {
                Ok((len, mtime)) if e.mtime == mtime && e.body.len() as u64 == len => {
                    cache.lock().cache.refresh(key);
                    shard.revalidations.fetch_add(1, Ordering::Relaxed);
                    Some(e)
                }
                _ => {
                    cache.lock().cache.invalidate(key);
                    shard.stale_evicted.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        }
        Lookup::Miss => None,
    }
}

/// Resolves the representation to serve for `path`: the gzip cache
/// slot first for gzip-accepting clients (with the identity slot
/// answering when it knows no `.gz` sibling exists), then a blocking
/// load through the shared executor — which negotiates the variant,
/// applies the tier threshold, and reports what actually loaded.
/// Mirrors the AMPED shard's routing exactly, minus the parking.
fn resolve_resource(
    cache: &Arc<Mutex<SharedCache>>,
    cfg: &NetConfig,
    shard: &Arc<ShardStats>,
    epoch: u64,
    path: &str,
    accept_gzip: bool,
) -> Result<(MtResource, Tier), Status> {
    let (key, want) = if accept_gzip {
        let gz_key = cache::variant_key(path, Variant::Gzip);
        if let Some(e) = check_slot(cache, cfg, shard, &gz_key, Variant::Gzip) {
            shard.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((MtResource::Cached(e), Tier::Hit));
        }
        // An identity hit that *knows* no sibling exists serves as-is;
        // anything else goes through a gzip-preference load.
        if let Lookup::Hit(e) = cache.lock().cache.lookup(path, cfg.cache_revalidate_ttl) {
            if !e.has_gzip {
                shard.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((MtResource::Cached(e), Tier::Hit));
            }
        }
        (gz_key, Variant::Gzip)
    } else {
        if let Some(e) = check_slot(cache, cfg, shard, path, Variant::Identity) {
            shard.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((MtResource::Cached(e), Tier::Hit));
        }
        (path.to_string(), Variant::Identity)
    };
    match fsjob::exec_load(&inline_job(cfg, &key, JobKind::Load, want)) {
        Ok(LoadResult {
            data: FileData::Bytes { body, mtime },
            variant,
            has_gzip,
        }) => {
            let e = Entry::build_variant(path, body, mtime, variant, has_gzip);
            // Epoch check under the lock: bytes read against a
            // pre-reload docroot must not land in the post-reload
            // cache. This connection is still served — its request
            // predates the swap. The insert key follows the variant
            // that actually loaded (a gzip preference may have fallen
            // back to identity).
            let mut locked = cache.lock();
            if locked.generation == epoch {
                locked
                    .cache
                    .insert(cache::variant_key(path, variant), Arc::clone(&e));
            }
            drop(locked);
            Ok((MtResource::Cached(e), Tier::Miss))
        }
        Ok(LoadResult {
            data: FileData::Fd { file, len, mtime },
            variant,
            has_gzip,
        }) => {
            let (header_keep, header_close, etag) =
                cache::header_pair(path, len, mtime, variant, has_gzip);
            Ok((
                MtResource::File {
                    file,
                    len,
                    mtime,
                    variant,
                    has_gzip,
                    etag,
                    header_keep,
                    header_close,
                },
                Tier::Sendfile,
            ))
        }
        Err(err) => Err(match err.kind() {
            io::ErrorKind::NotFound => Status::NotFound,
            io::ErrorKind::PermissionDenied => Status::Forbidden,
            _ => Status::InternalError,
        }),
    }
}

/// Transmits one planned response on the blocking socket: header
/// segments first (TTFB lands on their success), then the body window
/// — in-memory bytes as a straight write, a file window through
/// `sendfile(2)` under `SO_SNDTIMEO` (a send that cannot move a byte
/// for the write-stall timeout fails the response, the blocking twin
/// of the AMPED write-stall deadline). Returns the bytes put on the
/// wire for the access log.
fn write_plan(
    stream: &mut TcpStream,
    plan: ResponsePlan<Arc<File>>,
    head_only: bool,
    shard: &Arc<ShardStats>,
    ttfb: &impl Fn(),
) -> io::Result<u64> {
    let mut n = 0u64;
    for seg in &plan.header {
        stream.write_all(seg)?;
        n += seg.len() as u64;
    }
    ttfb();
    if head_only {
        return Ok(n);
    }
    match plan.body {
        BodySource::Bytes(b) => {
            stream.write_all(&b)?;
            n += b.len() as u64;
        }
        BodySource::File {
            file,
            mut offset,
            len,
        } => {
            let mut remaining = len;
            while remaining > 0 {
                match crate::sendfile::send_file(stream.as_raw_fd(), &file, &mut offset, remaining)
                {
                    // The file shrank after fstat: the promised
                    // Content-Length cannot be honoured; drop the
                    // connection, as the AMPED tier does.
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "file shrank mid-send",
                        ))
                    }
                    Ok(k) => {
                        shard.sendfile_calls.fetch_add(1, Ordering::Relaxed);
                        shard.bytes_sendfile.fetch_add(k as u64, Ordering::Relaxed);
                        remaining -= k as u64;
                        n += k as u64;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        BodySource::Empty => {}
        // Streaming bodies never reach write_plan in this driver: the
        // dynamic tier runs its own inline exchange (serve_dynamic_mt)
        // and writes chunked frames directly.
        BodySource::Stream => {}
    }
    Ok(n)
}

/// Writes an error response; returns the bytes put on the wire (for
/// the access log).
fn respond_error(stream: &mut TcpStream, status: Status, head_only: bool) -> io::Result<u64> {
    let body = Bytes::from(error_body(status));
    let hdr = ResponseHeader::build(status, "text/html", body.len() as u64, false, true);
    stream.write_all(hdr.as_bytes())?;
    let mut n = hdr.as_bytes().len() as u64;
    if !head_only {
        stream.write_all(&body)?;
        n += body.len() as u64;
    }
    Ok(n)
}
