//! A real, runnable Flash-style web server on actual sockets.
//!
//! Two servers built from the shared `flash-http` machinery:
//!
//! * [`server::Server`] — **AMPED**: a poll(2) event loop (one small FFI
//!   shim in [`poll`], no external I/O crates) that never blocks on disk;
//!   helper threads perform all filesystem work and signal completion
//!   over a socketpair, the modern analogue of the paper's helper
//!   processes and IPC pipes.
//! * [`mt::MtServer`] — **MT**: thread-per-connection with blocking I/O
//!   and a shared, locked content cache, for comparison.
//!
//! Substitutions from the 1999 original (documented in DESIGN.md):
//! helper *threads* instead of forked processes (§3.4 permits both), and
//! an application-level content cache instead of `mmap`+`mincore` (§5.7
//! describes this fallback for systems without usable residency tests).
//!
//! # Quick start
//!
//! ```no_run
//! use flash_net::{NetConfig, Server};
//!
//! let server = Server::start("127.0.0.1:8080", NetConfig::new("./public")).unwrap();
//! println!("serving on http://{}", server.addr());
//! // ... later:
//! server.stop();
//! ```

pub mod cache;
pub mod mt;
pub mod poll;
pub mod server;

pub use cache::{ContentCache, Entry};
pub use mt::MtServer;
pub use server::{NetConfig, Server, ServerStats};
