//! A real, runnable Flash-style web server on actual sockets — the
//! paper's AMPED architecture, sharded across modern cores.
//!
//! Two servers built from the shared `flash-http` machinery:
//!
//! * [`server::Server`] — **sharded AMPED**:
//!   `NetConfig::event_loops` independent event-loop shards (default
//!   `min(cores, 8)`) with a **pluggable accept path**
//!   ([`server::NetConfig::accept_mode`], resolved by [`sock`]): in
//!   the default reuseport mode (Linux; `Auto`, overridable with
//!   `FLASH_ACCEPT_MODE=single|reuseport`) **each shard owns its own
//!   `SO_REUSEPORT` listener** registered in its own event backend —
//!   the kernel load-balances connection setup across all shards, no
//!   acceptor thread serializes it, and no cross-thread dealing hop
//!   precedes a request; backpressure is local (a shard at
//!   [`server::NetConfig::max_conns_per_shard`], or out of
//!   descriptors, quiesces its listener interest and re-arms as slots
//!   free — `accept_backpressure` counts it). The portable single
//!   mode keeps a lightweight acceptor thread dealing connections
//!   round-robin to the shards. Each
//!   shard multiplexes its connections through the pluggable
//!   **readiness subsystem** in [`event`]: an [`EventBackend`] trait
//!   with an edge-triggered `epoll(7)` implementation (Linux; raw FFI,
//!   `EPOLLIN|EPOLLOUT|EPOLLET`, incremental `epoll_ctl` interest
//!   updates — O(ready fds) per iteration) and a portable `poll(2)`
//!   fallback (one small FFI shim in [`poll`], no external I/O crates;
//!   O(watched fds) per iteration), selected by
//!   [`server::NetConfig::backend`] (`Auto` = epoll on Linux,
//!   overridable with `FLASH_EVENT_BACKEND=poll|epoll`). The loop is
//!   written to the **edge-triggered contract** (see [`event`]): reads
//!   drain to `EWOULDBLOCK`, write interest is armed only while a send
//!   is in flight, and a voluntary mid-`sendfile` yield re-arms the
//!   consumed edge. Every connection carries a **per-state deadline**
//!   in its shard's hashed **timing wheel** ([`timer`]; the paper's
//!   §6.4 slow-WAN-client concern): a header-read deadline from the
//!   first request byte ([`server::NetConfig::header_read_timeout`],
//!   default 15 s — slowloris senders; deliberately *not* refreshed by
//!   trickled bytes), a write-progress deadline re-armed on every byte
//!   of forward progress ([`server::NetConfig::write_stall_timeout`],
//!   default 30 s — stalled readers, on both the `writev` and
//!   `sendfile` paths), and the keep-alive idle timeout
//!   ([`server::NetConfig::idle_timeout`], default 30 s) between
//!   requests; each knob is `Option` (`None` disables that class). The
//!   wheel sets the backend's wait timeout ("next wheel tick, or
//!   block") and expires in **O(expired)** — no connection-table scan
//!   — with each cause counted separately (`read_timeouts`,
//!   `write_stall_timeouts`, `idle_reaped` in [`server::ServerStats`]).
//!   The MT server honours the same knobs through blocking-socket
//!   timeouts. Conditional requests are answered: 200s carry
//!   `Last-Modified`, a strong `ETag`, and a real, per-second-cached
//!   `Date`; `If-None-Match` / `If-Modified-Since` validators get a
//!   bodyless `304 Not Modified` (the `not_modified` counter), single
//!   `Range` requests a windowed `206`, and gzip-accepting clients a
//!   precompressed sibling when one exists — all without moving an
//!   unneeded body byte on either tier (see *The send plane* below for
//!   the precedence rules). Shards never
//!   block on disk and own a **private**
//!   [`ContentCache`] so the request path takes no locks. A **shared
//!   helper pool** performs all filesystem work, popping its per-shard
//!   job lanes round-robin so one cold-cache shard cannot starve the
//!   others; completions route back to the owning shard over per-shard
//!   queues with coalesced socketpair wake-ups (one wake byte per
//!   burst, not per job — the modern analogue of the paper's IPC
//!   pipes). The body path is **two-tier**: small files are cached
//!   pre-rendered and go out in a single gathered `writev(2)` (see
//!   [`writev`]) with partial-write resumption tracked across segment
//!   boundaries, while bodies above
//!   [`server::NetConfig::sendfile_threshold_bytes`] (default
//!   256 KiB) bypass the content cache entirely and stream from the
//!   kernel page cache with `sendfile(2)` (see [`sendfile`]) — so the
//!   in-memory cache budget holds only the small-file hot set, and a
//!   multi-gigabyte response costs no userspace memory at all.
//!   Oversized entries are likewise refused at cache admission
//!   ([`cache::MAX_ENTRY_DIVISOR`]), so one huge body can never churn
//!   a shard's working set. Cached entries do not outlive the files
//!   they were rendered from: a hit older than
//!   [`server::NetConfig::cache_revalidate_ttl`] (default 2 s) is
//!   re-stat'ed by a helper before it is trusted — unchanged files
//!   revalidate for free (`revalidations`), changed or deleted ones
//!   are evicted and reloaded (`stale_evicted`).
//! * [`mt::MtServer`] — **MT**: thread-per-connection with blocking
//!   I/O and a shared, locked content cache, for comparison (the §3.2
//!   trade-off discussion, measurable with `cargo bench -p
//!   flash-bench --bench net_throughput`).
//!
//! Substitutions from the 1999 original (documented in DESIGN.md):
//! helper *threads* instead of forked processes (§3.4 permits both),
//! an application-level content cache instead of `mmap`+`mincore`
//! (§5.7 describes this fallback for systems without usable residency
//! tests), and N event-loop shards instead of one process — the paper
//! predates multicore; per-core loops are how its single-loop design
//! scales while keeping every invariant intact *within* a shard.
//!
//! # Architecture: one protocol core, two drivers
//!
//! The AMPED server is layered **sans-IO**: everything the paper is
//! *about* — request parsing, the cache/helper handoff, completion
//! routing, deadlines, drain — lives in a protocol core that performs
//! no syscalls, reads no clocks, and names no file descriptors. The
//! core is driven through three narrow seams, and everything
//! platform-shaped plugs in underneath:
//!
//! ```text
//!              ┌────────────────────────────────────────────────┐
//!              │            protocol core   [`conn`]            │
//!              │  Conn<Io> state machine · ShardCore: cache,    │
//!              │  waiter lists, job tokens, completion routing, │
//!              │  deadline policy, drain · check_invariants()   │
//!              └───────┬──────────────┬──────────────┬──────────┘
//!        seams:     ConnIo        HelperPort      Wheel + `now`
//!              (read/writev/   (submit job;     (every Instant is
//!               sendfile on     completions      a parameter; the
//!               Io::FileRef)    come back as     core never reads
//!                               plain values)    a clock)
//!              ┌───────┴──────────────┴──────────────┴──────────┐
//!   driver #1  │  real shards  [`server`] — sockets, a helper   │
//!              │  pool, socketpair wakeups, readiness via       │
//!              │  [`event`]: epoll (Linux) or poll fallback     │
//!              ├────────────────────────────────────────────────┤
//!   driver #2  │  deterministic sim  [`sim`] — scripted         │
//!              │  endpoints, an event calendar + seeded RNG     │
//!              │  (`flash-simcore`), simulated time, injected   │
//!              │  faults, invariants checked every event        │
//!              └────────────────────────────────────────────────┘
//! ```
//!
//! Driver #1 is the production server described above; its loop only
//! moves bytes and readiness, so every behavior worth testing lives
//! below the seams. Driver #2 replays millions of connections in
//! seconds of wall time: same-seed runs are **bit-identical** (the
//! report's fingerprint folds every response byte), and the fault mix
//! — partial writes, trickled headers, disk stalls, wedged helpers,
//! EMFILE storms, mid-run reloads — runs against the *same* core the
//! real sockets drive. `cargo run --release --example sim_replay`
//! is the CI entry point; `crates/net/tests/conn_machine.rs` uses the
//! same seams to prove byte-boundary independence exhaustively.
//!
//! ## How to add a fault to the sim
//!
//! Faults are driver-side behaviors, never core changes — the core
//! must already survive them, that's the point:
//!
//! 1. **Add a knob** to [`sim::FaultPlan`] (a probability or
//!    magnitude), defaulted into `FaultPlan::heavy()` so the CI replay
//!    exercises it.
//! 2. **Express it at a seam.** Transport faults live in the sim's
//!    `ConnIo` (shrink the write window for partial writes, delay or
//!    fragment inbox refills for slow clients); helper faults live in
//!    job dispatch (stretch the completion delay for disk stalls or
//!    wedges, drop the completion after reaping for cancellations);
//!    resource faults live in admission (refuse an accept for EMFILE).
//! 3. **Consume randomness deterministically**: draw from the single
//!    `SimRng` only inside event handlers (never during iteration over
//!    a hash map), and schedule effects through the event calendar so
//!    a seed fully determines the interleaving.
//! 4. **Assert the consequence**, not just survival: add a counter to
//!    the report if the fault has an observable outcome, and extend
//!    the in-file tests so a fault that stops firing fails loudly.
//!    `ShardCore::check_invariants` runs between events either way —
//!    leaked slots, stale-epoch cache inserts, or orphaned deadlines
//!    from the new fault fail the replay without further wiring.
//!
//! # The send plane: one response planner, every driver
//!
//! Every response body — on either tier, from any driver — is a byte
//! window `[offset, offset + len)` over a **body source**: a cached
//! entry's bytes or an opaque file reference ([`conn::BodySource`]).
//! One pure function ([`conn::plan::plan_response`]) turns a resource
//! plus the request's conditional snapshot into a
//! [`conn::ResponsePlan`] — status, header segments, windowed source —
//! and one queuing step hands the plan to the tier machinery (gathered
//! `writev` segments, or a `sendfile` window with partial-send
//! resumption and the fairness budget). The real shards, the MT
//! server, and the deterministic sim all serve `200`/`206`/`304`/`416`
//! through this single plane; a driver implements only "send this
//! window".
//!
//! Conditional precedence (RFC 9110 §13.2.2), identical everywhere:
//!
//! | Request carries | Decision |
//! |---|---|
//! | `If-None-Match` (present at all) | Compare against the representation's `ETag` (`*` matches anything); **`If-Modified-Since` is ignored entirely** |
//! | `If-Modified-Since` only | `304` iff the validator is at least as new as the file's mtime |
//! | `Range` + `If-Range` | The range applies only if the strong validator matches (or `If-Range` is absent); otherwise the full `200` |
//! | `Range`, satisfiable | `206 Partial Content` with `Content-Range: bytes a-b/len` (`range_requests`) |
//! | `Range`, unsatisfiable | `416` with `Content-Range: bytes */len` (`range_unsatisfiable`) — the connection stays open |
//! | `Range`, malformed or multi-range | Dropped at parse time → the full `200` |
//! | *(any of the above on a dynamic-prefix path)* | **Ignored entirely** — dynamic responses have no validators and no byte-addressable representation; the full `200` streams chunked (see *The dynamic tier*) |
//!
//! `ETag`s are strong and derived from `(mtime, length)` —
//! deterministic, cheap, and they change exactly when `Last-Modified`
//! would. The gzip representation's tag appends `-gz`, so the two
//! representations never share a validator.
//!
//! **Precompressed variants**: a sibling `path + ".gz"` discovered at
//! helper open time is served to `Accept-Encoding: gzip` clients under
//! `Content-Encoding: gzip` + `Vary: Accept-Encoding`, with the
//! sibling's *own* length, mtime, and `ETag` (the headers describe the
//! bytes actually sent). The identity file is opened first even for a
//! gzip preference — a missing resource `404`s identically for every
//! client, and a sibling-only `.gz` is never served. The content cache
//! keys the two representations separately ([`cache::variant_key`]:
//! `path + "\0gz"`; NUL cannot survive path normalization, so variant
//! keys cannot collide with real paths), and each cached identity
//! entry remembers whether a sibling existed so later gzip-accepting
//! clients route without a disk probe. Tier policy — the `sendfile`
//! threshold — rides on the helper job itself
//! ([`conn::HelperJob::inline_max`]), so job executors stay
//! mechanical: the AMPED helper pool and the MT server share one real
//! filesystem executor ([`fsjob`]), and the sim mirrors its mechanics
//! against the in-memory file table.
//!
//! # The dynamic tier: persistent workers, chunked streaming
//!
//! Paths under [`server::NetConfig::dynamic_prefix`] (builder:
//! `dynamic_prefix("/app/")`) bypass the filesystem entirely and are
//! answered by a pool of **persistent worker processes**
//! ([`appworker::WorkerPool`]) — the paper's CGI concern (§2.2,
//! `FileKind::Cgi` in the workload model) without fork-per-request:
//! each worker is spawned once over a `socketpair(2)` (its stdin *and*
//! stdout are the same socket), checked out per request, and checked
//! back in after a clean exchange. A worker that crashes, emits
//! garbage, or misses its deadline is killed and discarded; the next
//! checkout spawns a replacement (`worker_respawns`).
//!
//! The wire protocol is deliberately tiny. Server → worker, one line:
//! `<METHOD> <path>\n`. Worker → server, a frame stream:
//!
//! ```text
//! DATA <len>\n<len bytes>     (repeated; each frame = one HTTP chunk)
//! END\n                       (clean completion)
//! ```
//!
//! EOF or a malformed frame before `END` is a crash. Each `DATA` frame
//! is relayed to the client as one `Transfer-Encoding: chunked` chunk
//! ([`flash_http::chunked`]); `END` sends the `0\r\n\r\n` terminator.
//! Because the body length is unknown when the header goes out,
//! dynamic responses carry **no `Content-Length`, no `Last-Modified`,
//! no `ETag`, and no range surface** — `If-None-Match`,
//! `If-Modified-Since`, `Range`, and `If-Range` are all ignored on a
//! dynamic path (there is no representation to validate against), and
//! `HEAD` sends the chunked header plan with zero body bytes and no
//! worker consulted. The reserved `/.flash/*` endpoints keep
//! precedence over any dynamic prefix, including `/` itself.
//!
//! Worker silence is bounded by
//! [`server::NetConfig::dynamic_deadline`] (default 10 s), riding the
//! same timing wheel as the other deadline classes: expiry **before
//! the first frame** yields a `504 Gateway Timeout`; expiry
//! **mid-stream** severs the connection, leaving the truncation
//! visible on the wire (no chunked terminator) — a 504 after bytes of
//! a 200 have been sent would be a lie. Either way the wedged worker
//! is killed via the helper-job cancellation token and counted in
//! `dynamic_timeouts` + `worker_respawns`.
//!
//! All three drivers serve the tier: the AMPED shards relay frames
//! through the helper pool as streaming completions
//! ([`conn::DynEvent`] under a single job token), the MT server runs
//! the exchange inline on the connection thread, and the deterministic
//! sim models per-endpoint compute times from the workload's
//! `FileKind::Cgi` specs — dynamic fraction, wedges, and worker
//! crashes are all folded into its bit-identical fingerprint.
//!
//! # Lifecycle: drain, signals, and generation handoff
//!
//! A production server's restarts and deploys must be non-events. The
//! lifecycle subsystem ([`lifecycle`], [`handoff`]) gives both servers
//! a real one:
//!
//! ```text
//!            SIGTERM / drain()              last conn done
//!             (or deadline)                 (or deadline)
//!  serving ───────────────────▶ draining ───────────────────▶ exited
//!     │                            ▲
//!     │ SIGHUP / reload_docroot()  │  accepting stops, idle
//!     │ (config swaps in place,    │  keep-alives close at once,
//!     │  no connection dropped)    │  in-flight responses and
//!     └──▶ serving                 │  pipelined requests finish
//!
//!  serving ── SIGINT / stop_now() ──▶ exited   (immediate teardown)
//! ```
//!
//! | Signal    | Action                                               |
//! |-----------|------------------------------------------------------|
//! | `SIGTERM` | Drain: stop accepting, finish in-flight work, exit   |
//! | `SIGHUP`  | Reload: swap docroot + flush caches, drop no conn    |
//! | `SIGINT`  | Stop now: immediate teardown, severing connections   |
//!
//! Signals are delivered with the classic **self-pipe trick**
//! ([`lifecycle::Signals`]): an async-signal-safe handler writes the
//! signal number to a nonblocking socketpair and the orchestrator
//! (your main thread) reads it at leisure and calls
//! [`Server::drain`](server::Server::drain),
//! [`Server::reload_docroot`](server::Server::reload_docroot), or
//! [`Server::stop_now`](server::Server::stop_now).
//!
//! **Generation handoff** makes the restart itself zero-downtime: the
//! old process sends duplicates of its listening sockets
//! ([`Server::handoff_listeners`](server::Server::handoff_listeners))
//! over a unix control socket with `SCM_RIGHTS`
//! ([`handoff::send_listeners`] / [`handoff::recv_listeners`], or the
//! [`handoff::HandoffControl`] rendezvous), the new process adopts
//! them with [`Server::start_inherited`](server::Server::start_inherited),
//! and only then does the old generation drain. Because the *kernel
//! sockets* move — not just the port via a fresh `SO_REUSEPORT` bind —
//! the accept backlog survives the switch in both accept modes and no
//! SYN or queued connection is ever reset. See
//! `examples/graceful_restart.rs` for the full choreography under
//! load.
//!
//! # Observability: the flight recorder
//!
//! Every number the server knows about itself lives in one place: the
//! metrics **registry** in [`stats`]. Each per-shard `AtomicU64` on
//! [`ShardStats`] has exactly one [`stats::Desc`] (name, kind, merge
//! rule, help), each latency histogram one [`stats::HistDesc`] — the
//! [`ServerStats`] getters, the Prometheus exposition, and the JSON
//! document all read through the same descriptors, so an exported
//! metric can never drift from its getter. Shards write with relaxed
//! atomics on their own cache lines (no locks, no contention on the
//! request path); readers merge per-shard values on demand (counters
//! sum, `loop_stall_max_us` takes the max).
//!
//! Latency is recorded in **log-bucketed histograms**
//! ([`Histogram`]: 64 power-of-two nanosecond buckets, so a quantile
//! read off a merged snapshot is within one bucket — ≤ 2× relative
//! error — of the exact sample quantile, and bucket-wise merging of
//! per-shard snapshots equals the histogram of the merged stream).
//! Recording happens inside the sans-IO core with `Instant`s passed in
//! as parameters, so the real shards, the MT server, and the
//! deterministic sim produce the *same* histograms — the sim in
//! simulated time, bit-identical per seed, with the four
//! [`HistSummary`] digests folded into its fingerprinted report.
//!
//! ## Scalar metrics
//!
//! | Metric | Kind | What it counts |
//! |---|---|---|
//! | `requests` | counter | Completed responses (any status), excluding `/.flash/` responses |
//! | `metrics_requests` | counter | Responses served by the `/.flash/*` endpoints |
//! | `accepted` | counter | Connections accepted and dealt to shards |
//! | `helper_jobs` | counter | Disk jobs dispatched after miss coalescing |
//! | `cache_hits` | counter | Responses served from the content cache |
//! | `writev_calls` | counter | Gathered `writev(2)` calls on the send path |
//! | `sendfile_calls` | counter | `sendfile(2)` calls on the large-body path |
//! | `bytes_sendfile` | counter | Body bytes transmitted via `sendfile(2)` |
//! | `cache_used_bytes` | gauge | Bytes resident in the content caches |
//! | `wait_calls` / `wait_events` | counter | Readiness waits and the events they returned |
//! | `idle_reaped` | counter | Keep-alives closed by the idle deadline |
//! | `read_timeouts` | counter | Connections closed by the header-read deadline |
//! | `write_stall_timeouts` | counter | Connections closed by the write-progress deadline |
//! | `not_modified` | counter | `304 Not Modified` responses |
//! | `range_requests` | counter | Well-formed single-range requests reaching a file response |
//! | `range_unsatisfiable` | counter | Range requests answered `416 Range Not Satisfiable` |
//! | `accept_backpressure` | counter | Accept throttles (fd exhaustion / accept failure) |
//! | `revalidations` | counter | Re-stats confirming a past-TTL entry unchanged |
//! | `stale_evicted` | counter | Entries evicted because a re-stat saw them change |
//! | `helper_wait_timeouts` | counter | Waiters closed by the helper-completion deadline |
//! | `jobs_cancelled` | counter | In-flight jobs cancelled after their last waiter left |
//! | `dynamic_requests` | counter | Requests routed to the dynamic tier by the configured prefix |
//! | `worker_respawns` | counter | Workers killed and replaced after a crash or deadline kill |
//! | `dynamic_timeouts` | counter | Dynamic requests that hit `dynamic_deadline` (504 pre-header, severed mid-stream) |
//! | `draining` | gauge | Shards currently in drain mode |
//! | `drained_conns` | counter | Connections retired by a drain |
//! | `loop_stalls` | counter | Iterations whose non-wait time exceeded [`server::NetConfig::loop_stall_threshold`] |
//! | `loop_stall_max_us` | gauge (max) | High-water per-iteration non-wait time, µs |
//! | `phase_{wait,accept,read,respond,completions,timers}_us` | counter | Cumulative µs per event-loop phase |
//!
//! Histograms (nanoseconds): `request_latency_nanos` (request parsed →
//! final response byte queued), `ttfb_nanos` (request parsed → first
//! byte accepted by the transport), `helper_wait_nanos` (parked
//! `Waiting` → completion delivered), `conn_lifetime_nanos` (accept →
//! close, any reason), `worker_wait_nanos` (dynamic dispatch → first
//! worker frame delivered).
//!
//! The `phase_*` counters and the **stall watchdog** are the direct
//! probe of the AMPED contract that the event loop never blocks: each
//! iteration's non-wait time is split across the six phases, its
//! maximum is kept in `loop_stall_max_us`, and any iteration busier
//! than `loop_stall_threshold` (default 100 ms) increments
//! `loop_stalls` — a nonzero value means some phase performed blocking
//! work on the event thread.
//!
//! ## Endpoints
//!
//! With [`server::NetConfig::metrics_endpoint`] enabled (builder:
//! `with_metrics_endpoint(true)`), both servers answer two reserved
//! paths in-band on every shard, served from the counters without
//! touching cache or helpers:
//!
//! * `GET /.flash/metrics` — Prometheus text exposition
//!   (`text/plain; version=0.0.4`): every scalar as
//!   `flash_<name> <value>` with `# HELP`/`# TYPE`, every histogram as
//!   cumulative `flash_<name>_bucket{le="<nanos>"}` lines plus `_sum`
//!   and `_count`.
//! * `GET /.flash/stats` — the same registry as one JSON document:
//!   `{"counters": {...}, "gauges": {...}, "histograms": {"<name>":
//!   {"count", "sum_nanos", "p50_nanos", "p99_nanos"}}}`.
//!
//! These responses count only `metrics_requests`, never `requests` —
//! scrapes don't perturb the workload numbers they report.
//!
//! ## Access log
//!
//! [`server::NetConfig::access_log_path`] (builder:
//! `with_access_log(path)`) turns on a structured per-response log,
//! one line per completed response in common-log field order with
//! latency and serving tier appended:
//!
//! ```text
//! host - - [unix_ts] "METHOD path" status bytes latency_us tier
//! ```
//!
//! where `tier` is `hit`, `miss`, `sendfile`, `not_modified`, or
//! `error`. The core stages records clock-free; each shard batches
//! them into a single `write_all` against an `O_APPEND` descriptor at
//! the end of its loop iteration, so concurrent shards (or MT worker
//! threads) interleave whole batches — never fragments of a line. The
//! logrotate handshake is
//! [`Server::rotate_access_logs`](server::Server::rotate_access_logs)
//! (typically mapped from `SIGHUP` alongside the reload): rename the
//! file, signal, and every writer reopens the configured path.
//!
//! # Quick start
//!
//! ```no_run
//! use flash_net::{NetConfig, Server};
//!
//! // NetConfig::new gives working defaults; the validating builder
//! // rejects inconsistent combinations before any socket is opened.
//! let cfg = NetConfig::builder("./public")
//!     .dynamic_prefix("/app/")
//!     .metrics_endpoint(true)
//!     .build()
//!     .unwrap();
//! let server = Server::start("127.0.0.1:8080", cfg).unwrap();
//! println!("serving on http://{}", server.addr());
//! println!("event-loop shards: {}", server.stats().per_shard().len());
//! // ... later: finish what's in flight, bounded by drain_timeout.
//! server.drain();
//! ```
//!
//! Code that only *operates* a server — batteries, lifecycle
//! harnesses, examples comparing the two architectures — can start
//! either one behind the shared [`ServeHandle`] surface instead:
//! `handle::start(ServerKind::Amped | ServerKind::Mt, addr, cfg)`
//! returns a `Box<dyn ServeHandle>` with `local_addr` / `stats` /
//! `reload_docroot` / `drain` / `stop`.

pub mod appworker;
pub mod cache;
pub mod conn;
pub mod event;
pub mod fsjob;
pub mod handle;
pub mod handoff;
pub mod lifecycle;
pub mod mt;
pub mod poll;
pub mod report;
pub mod sendfile;
pub mod server;
pub mod sim;
pub mod sock;
pub mod stats;
pub mod timer;
pub mod writev;

pub use appworker::WorkerPool;
pub use cache::{ContentCache, Entry};
pub use event::{BackendChoice, BackendKind, EventBackend};
pub use handle::{ServeHandle, ServerKind};
pub use handoff::{recv_listeners, request_listeners, send_listeners, HandoffControl};
pub use lifecycle::{send_to_self, Signal, Signals};
pub use mt::MtServer;
pub use report::BenchReport;
pub use server::{ConfigError, NetConfig, NetConfigBuilder, Server, ServerStats, ShardStats};
pub use sock::{AcceptMode, AcceptModeKind};
pub use stats::{HistSnapshot, HistSummary, Histogram};
