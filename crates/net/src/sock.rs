//! Listening-socket construction and accept-path mode selection.
//!
//! One place builds every listening socket the servers use — the AMPED
//! acceptor's, the MT server's, and (the point of this module) the
//! **per-shard `SO_REUSEPORT` listeners** that let each event-loop
//! shard accept its own connections with no acceptor thread in
//! between. `SO_REUSEPORT` must be set *before* `bind(2)`, which
//! `std::net::TcpListener` cannot express, so on Linux the socket is
//! assembled through the same thin-FFI style as [`crate::poll`] and
//! [`crate::writev`]; other platforms fall back to `std` (and never
//! request reuseport — see [`resolve_accept_mode`]).
//!
//! Mode selection mirrors the readiness backend's
//! ([`crate::event::resolve`]): [`AcceptMode::Auto`] resolves to
//! per-shard reuseport listeners on Linux — where the kernel hashes
//! incoming connections across all sockets bound to the port — and to
//! the single acceptor thread elsewhere, overridable with
//! `FLASH_ACCEPT_MODE=single|reuseport`; `ReusePort`/`Single` pin a
//! mode and ignore the environment (modulo the platform floor:
//! reuseport requested where the kernel does not load-balance it
//! degrades to the acceptor thread rather than failing).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};

/// How the server distributes `accept(2)` work (see
/// [`crate::server::NetConfig::accept_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AcceptMode {
    /// Platform default — per-shard `SO_REUSEPORT` listeners on Linux,
    /// the single acceptor thread elsewhere — overridable with
    /// `FLASH_ACCEPT_MODE=single|reuseport`.
    #[default]
    Auto,
    /// Pin per-shard reuseport listeners (degrades to the acceptor
    /// thread on platforms without load-balancing `SO_REUSEPORT`).
    /// Ignores the environment.
    ReusePort,
    /// Pin the single acceptor thread dealing connections round-robin
    /// to the shards. Ignores the environment.
    Single,
}

/// Which concrete accept path an [`AcceptMode`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptModeKind {
    /// Each shard owns a `SO_REUSEPORT` listener registered in its own
    /// event backend; the kernel load-balances accepts.
    ReusePort,
    /// One acceptor thread owns the only listener and deals accepted
    /// connections to the shards over channels.
    Single,
}

impl AcceptModeKind {
    /// Lower-case name, matching the `FLASH_ACCEPT_MODE` values.
    pub fn name(self) -> &'static str {
        match self {
            AcceptModeKind::ReusePort => "reuseport",
            AcceptModeKind::Single => "single",
        }
    }
}

const ENV_ACCEPT_MODE: &str = "FLASH_ACCEPT_MODE";

/// `SO_REUSEPORT` exists on the BSDs too, but only Linux (≥3.9) hashes
/// connections across the sockets sharing the port — which is the
/// entire point here, so only Linux gets it by default.
fn platform_has_reuseport() -> bool {
    cfg!(any(target_os = "linux", target_os = "android"))
}

/// Resolves a choice to the accept path that will actually run,
/// applying the `FLASH_ACCEPT_MODE` override (only to `Auto`) and the
/// platform floor (reuseport requested where the kernel does not
/// load-balance it degrades to the acceptor thread).
pub fn resolve_accept_mode(choice: AcceptMode) -> AcceptModeKind {
    let want = match choice {
        AcceptMode::Single => AcceptModeKind::Single,
        AcceptMode::ReusePort => AcceptModeKind::ReusePort,
        AcceptMode::Auto => match std::env::var(ENV_ACCEPT_MODE).ok().as_deref() {
            Some("single") => AcceptModeKind::Single,
            Some("reuseport") => AcceptModeKind::ReusePort,
            // Unknown values fall through to the platform default
            // rather than aborting a running server over a typo.
            _ => {
                if platform_has_reuseport() {
                    AcceptModeKind::ReusePort
                } else {
                    AcceptModeKind::Single
                }
            }
        },
    };
    if want == AcceptModeKind::ReusePort && !platform_has_reuseport() {
        AcceptModeKind::Single
    } else {
        want
    }
}

/// Per-connection socket options shared by every accept path (the
/// AMPED acceptor, the per-shard reuseport drain, and the MT spawner):
/// nonblocking for the event loops, and `TCP_NODELAY` because one
/// gathered write per response makes Nagle pointless — disabling it
/// removes the delayed-ACK interaction on keep-alive connections.
pub fn apply_conn_options(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)?;
    let _ = stream.set_nodelay(true);
    Ok(())
}

/// Binds a nonblocking listener on `addr`. With `reuseport`, the
/// socket gets `SO_REUSEPORT` before `bind(2)` so any number of
/// listeners — one per shard — can share the port and have the kernel
/// spread incoming connections across them. All listeners get
/// `SO_REUSEADDR`, so a restart does not trip over old connections in
/// `TIME_WAIT`.
pub fn bind_listener(addr: SocketAddr, reuseport: bool) -> io::Result<TcpListener> {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    {
        ffi::bind_listener(addr, reuseport)
    }
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    {
        // No load-balancing reuseport off Linux; resolve_accept_mode
        // never asks for it there, so std's builder suffices.
        debug_assert!(!reuseport, "reuseport listeners are Linux-only");
        let _ = reuseport;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(listener)
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod ffi {
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::unix::io::FromRawFd;

    const AF_INET: core::ffi::c_int = 2;
    const AF_INET6: core::ffi::c_int = 10;
    const SOCK_STREAM: core::ffi::c_int = 1;
    const SOCK_NONBLOCK: core::ffi::c_int = 0o4000;
    const SOCK_CLOEXEC: core::ffi::c_int = 0o2000000;
    const SOL_SOCKET: core::ffi::c_int = 1;
    const SO_REUSEADDR: core::ffi::c_int = 2;
    const SO_REUSEPORT: core::ffi::c_int = 15;

    /// Accept backlog. Large enough that a burst arriving while a
    /// shard services existing connections queues in the kernel
    /// instead of seeing RSTs.
    const BACKLOG: core::ffi::c_int = 1024;

    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        /// Network byte order.
        port: u16,
        /// Network byte order.
        addr: u32,
        zero: [u8; 8],
    }

    #[repr(C)]
    struct SockAddrIn6 {
        family: u16,
        /// Network byte order.
        port: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    unsafe extern "C" {
        fn socket(
            domain: core::ffi::c_int,
            ty: core::ffi::c_int,
            protocol: core::ffi::c_int,
        ) -> core::ffi::c_int;
        fn setsockopt(
            fd: core::ffi::c_int,
            level: core::ffi::c_int,
            optname: core::ffi::c_int,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> core::ffi::c_int;
        fn bind(
            fd: core::ffi::c_int,
            addr: *const core::ffi::c_void,
            addrlen: u32,
        ) -> core::ffi::c_int;
        fn listen(fd: core::ffi::c_int, backlog: core::ffi::c_int) -> core::ffi::c_int;
        fn close(fd: core::ffi::c_int) -> core::ffi::c_int;
    }

    fn set_flag(fd: core::ffi::c_int, opt: core::ffi::c_int) -> io::Result<()> {
        let one: core::ffi::c_int = 1;
        // SAFETY: `one` outlives the call; the kernel reads exactly
        // `optlen` bytes from it.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                &one as *const _ as *const core::ffi::c_void,
                std::mem::size_of::<core::ffi::c_int>() as u32,
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    pub fn bind_listener(addr: SocketAddr, reuseport: bool) -> io::Result<TcpListener> {
        let family = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let result = (|| {
            set_flag(fd, SO_REUSEADDR)?;
            if reuseport {
                set_flag(fd, SO_REUSEPORT)?;
            }
            let rc = match addr {
                SocketAddr::V4(v4) => {
                    let sa = SockAddrIn {
                        family: AF_INET as u16,
                        port: v4.port().to_be(),
                        addr: u32::from_ne_bytes(v4.ip().octets()),
                        zero: [0; 8],
                    };
                    // SAFETY: `sa` is a valid, correctly sized
                    // sockaddr_in the kernel only reads.
                    unsafe {
                        bind(
                            fd,
                            &sa as *const _ as *const core::ffi::c_void,
                            std::mem::size_of::<SockAddrIn>() as u32,
                        )
                    }
                }
                SocketAddr::V6(v6) => {
                    let sa = SockAddrIn6 {
                        family: AF_INET6 as u16,
                        port: v6.port().to_be(),
                        flowinfo: v6.flowinfo(),
                        addr: v6.ip().octets(),
                        scope_id: v6.scope_id(),
                    };
                    // SAFETY: as above, for sockaddr_in6.
                    unsafe {
                        bind(
                            fd,
                            &sa as *const _ as *const core::ffi::c_void,
                            std::mem::size_of::<SockAddrIn6>() as u32,
                        )
                    }
                }
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: plain syscall on the fd we own.
            if unsafe { listen(fd, BACKLOG) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        })();
        match result {
            // SAFETY: fd is a fresh listening socket we exclusively
            // own; TcpListener takes over closing it.
            Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
            Err(e) => {
                // SAFETY: fd came from socket() above and has not been
                // handed to any owner.
                unsafe { close(fd) };
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn pinned_modes_ignore_environment() {
        assert_eq!(
            resolve_accept_mode(AcceptMode::Single),
            AcceptModeKind::Single
        );
        if platform_has_reuseport() {
            assert_eq!(
                resolve_accept_mode(AcceptMode::ReusePort),
                AcceptModeKind::ReusePort
            );
        } else {
            assert_eq!(
                resolve_accept_mode(AcceptMode::ReusePort),
                AcceptModeKind::Single
            );
        }
    }

    #[test]
    fn bound_listener_accepts_and_frees_its_port() {
        let l = bind_listener("127.0.0.1:0".parse().unwrap(), false).unwrap();
        let addr = l.local_addr().unwrap();
        let mut c = TcpStream::connect(addr).unwrap();
        // Nonblocking listener: the connection may need a beat to land.
        let (mut s, _) = loop {
            match l.accept() {
                Ok(pair) => break pair,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(e) => panic!("accept: {e}"),
            }
        };
        apply_conn_options(&s).unwrap();
        s.write_all(b"ok").unwrap();
        drop(s);
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"ok");
        // Dropping the listener frees the port for an immediate rebind.
        drop(l);
        let l2 = bind_listener(addr, false).unwrap();
        assert_eq!(l2.local_addr().unwrap(), addr);
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    #[test]
    fn reuseport_listeners_share_a_port() {
        let a = bind_listener("127.0.0.1:0".parse().unwrap(), true).unwrap();
        let addr = a.local_addr().unwrap();
        // A second (and third) listener on the same port must bind.
        let b = bind_listener(addr, true).unwrap();
        let c = bind_listener(addr, true).unwrap();
        assert_eq!(b.local_addr().unwrap(), addr);
        assert_eq!(c.local_addr().unwrap(), addr);
        // Without reuseport the same bind must fail while a holds it.
        assert!(bind_listener(addr, false).is_err());
    }
}
