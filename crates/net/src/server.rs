//! The real AMPED web server, sharded across cores: N independent
//! event loops (one per core by default, capped at 8), each a faithful
//! copy of the paper's single-process architecture (§3.4, §5), plus a
//! shared helper pool for disk I/O.
//!
//! Layout:
//!
//! * the **accept path** is pluggable ([`NetConfig::accept_mode`],
//!   resolved by [`crate::sock`]): in the default **reuseport** mode
//!   (Linux) every shard owns its own `SO_REUSEPORT` listening socket
//!   registered in its own event backend — the kernel hashes incoming
//!   connections across the listeners, each shard drains its accepts
//!   to `EWOULDBLOCK` under the ET contract, and there is **no
//!   acceptor thread and no dealing hop**. Backpressure is local: a
//!   shard at [`NetConfig::max_conns_per_shard`] (or hitting
//!   `EMFILE`/`ENFILE` — counted as `accept_backpressure`) drops its
//!   listener's read interest, letting the backlog queue in the
//!   kernel or hash to its siblings, and re-arms the moment a slot
//!   frees. The portable **single** fallback keeps the previous
//!   shape: a lightweight acceptor thread owns the only listening
//!   socket and deals accepted connections round-robin to the shards
//!   over per-shard channels, waking each target through its wake
//!   socketpair; it blocks in its own readiness backend with no
//!   polling timeout — shutdown arrives as a byte on a dedicated stop
//!   pipe;
//! * each **shard** is the paper's event loop on the pluggable
//!   readiness subsystem ([`crate::event`]): connections are
//!   registered once with an [`EventBackend`] (edge-triggered `epoll`
//!   on Linux, `poll(2)` elsewhere — [`NetConfig::backend`]) and their
//!   interest is adjusted incrementally as the [`Conn`] state machine
//!   moves (read interest while parsing, write interest only while a
//!   send is in flight, none while a helper works). The loop is
//!   written to the edge-triggered contract — drain reads to
//!   `EWOULDBLOCK`, re-arm after a voluntary yield — which is also
//!   correct under the level-triggered fallback. Each shard never
//!   touches the filesystem and owns a private [`ContentCache`] — no
//!   cross-shard locking anywhere on the request path. Every
//!   connection carries a **per-state deadline** in the shard's hashed
//!   timing wheel ([`crate::timer`], §6.4's slow-WAN-client defense):
//!   a header-read deadline from the first byte of a request
//!   ([`NetConfig::header_read_timeout`], slowloris senders), a
//!   write-progress deadline re-armed on every byte of forward
//!   progress ([`NetConfig::write_stall_timeout`], stalled readers —
//!   covering both the `writev` and `sendfile` paths), and the
//!   keep-alive idle timeout ([`NetConfig::idle_timeout`]) between
//!   requests. The wheel drives the backend's wait timeout ("next
//!   wheel tick, or block") and expires in O(expired), never by
//!   scanning the connection table;
//! * the **helper pool** is shared (disk parallelism is a global
//!   resource): a miss enqueues a job in its shard's lane of the
//!   [`JobQueue`], and helpers pop the lanes **round-robin by shard**
//!   — a cold-cache shard flooding its lane cannot starve the other
//!   shards' disk latency. The finishing helper routes the completion
//!   back to that shard's done queue, coalescing wake-up bytes so a
//!   burst of completions costs one pipe write, not one per job. The
//!   helpers also run **cache revalidation**: a content-cache hit
//!   older than [`NetConfig::cache_revalidate_ttl`] parks like a miss
//!   while a helper re-stats the file (open+`fstat`, no read) — a
//!   matching (length, mtime) restarts the TTL clock and serves the
//!   waiters from memory (`revalidations`), a mismatch evicts the
//!   stale entry and reloads (`stale_evicted`), so a file edited in
//!   place stops being served — and 304-validated — from stale bytes
//!   within the TTL;
//! * the send path is **two-tier and zero-copy at both tiers**: small
//!   bodies are queued as their cached header and body segments and
//!   transmitted with a single gathered `writev(2)` (see
//!   [`crate::writev`]), with partial-write resumption tracked across
//!   segment boundaries; bodies above
//!   [`NetConfig::sendfile_threshold_bytes`] never enter the content
//!   cache at all — the helper hands the shard an open fd, the shard
//!   sends the header with `writev` and the body with `sendfile(2)`
//!   (see [`crate::sendfile`]) straight from the kernel page cache,
//!   resuming partial sends from the same per-connection state.
//!
//! With `event_loops = 1` the behavior is byte-identical to the
//! original single-loop server; with N shards the same architecture
//! simply runs N times, the way per-core executor designs scale a
//! uniprocessor event loop.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::conn::machine::{sync_deadline, Conn};
use crate::conn::{ConnIo, ConnState, Done, Drive, HelperJob, HelperPort, ProtoConfig, ShardCore};
use crate::event::{new_backend, BackendChoice, BackendKind, Event, EventBackend, Interest};
use crate::lifecycle::{LifecycleShared, PHASE_DRAINING, PHASE_STOPPING};
use crate::sendfile::send_file;
use crate::sock::{self, AcceptMode, AcceptModeKind};
use crate::stats::{self as metrics, AccessLogWriter, HistSnapshot};
use crate::timer::{tick_for, TimerWheel};
use crate::writev::writev_fd;

pub use crate::conn::{DeadlineKind, ShardStats};

/// A connection over the real transport: the sans-IO state machine
/// ([`crate::conn::machine::Conn`]) bound to a nonblocking socket.
type NetConn = Conn<SockIo>;

/// The real transport behind [`ConnIo`]: a nonblocking `TcpStream`,
/// with gathered writes via `writev(2)` and large bodies via
/// `sendfile(2)` against shared `Arc<File>` handles.
pub(crate) struct SockIo {
    pub(crate) stream: TcpStream,
}

impl ConnIo for SockIo {
    type FileRef = Arc<File>;

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
        writev_fd(self.stream.as_raw_fd(), bufs)
    }

    fn sendfile(&mut self, file: &Arc<File>, offset: &mut u64, max: u64) -> io::Result<usize> {
        send_file(self.stream.as_raw_fd(), file, offset, max)
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Directory served as the document root.
    pub docroot: PathBuf,
    /// Number of helper threads (the AMPED helper pool, shared by all
    /// shards).
    pub helpers: usize,
    /// Total content-cache capacity in bytes, divided evenly among the
    /// shards.
    pub cache_bytes: u64,
    /// Number of independent event-loop shards. Default:
    /// `min(available cores, 8)`.
    pub event_loops: usize,
    /// Bodies strictly larger than this bypass the content cache and
    /// are served from the kernel page cache with `sendfile(2)` (see
    /// [`crate::sendfile`]). Default 256 KiB — roughly where the cost
    /// of one more copy through userspace overtakes the cost of the
    /// extra syscall, and past the sweet spot of cache residency.
    pub sendfile_threshold_bytes: u64,
    /// Readiness backend (see [`crate::event`]): `Auto` (default)
    /// resolves to edge-triggered `epoll` on Linux and `poll` elsewhere,
    /// overridable with `FLASH_EVENT_BACKEND=poll|epoll`; `Epoll`/`Poll`
    /// pin a backend and ignore the environment.
    pub backend: BackendChoice,
    /// Keep-alive connections with no request in flight and no bytes
    /// received for this long are closed by their shard, so dead
    /// clients stop pinning descriptors and connection slots. `None`
    /// disables reaping. Default 30 s.
    pub idle_timeout: Option<Duration>,
    /// A connection that has begun a request (first header byte
    /// received) must deliver the complete header within this long or
    /// be closed — the slowloris-sender defense; the deadline is armed
    /// once per request and deliberately **not** re-armed by further
    /// trickled bytes. `None` disables it. Default 15 s.
    pub header_read_timeout: Option<Duration>,
    /// A connection mid-response must accept at least one byte of the
    /// response every interval this long or be closed — the stalled-
    /// reader defense, covering both the `writev` and `sendfile`
    /// paths. Unlike the header deadline it **re-arms on every byte of
    /// forward progress**, so an arbitrarily large body is fine as
    /// long as the peer keeps draining. `None` disables it.
    /// Default 30 s.
    pub write_stall_timeout: Option<Duration>,
    /// How `accept(2)` work is distributed (see [`crate::sock`]):
    /// `Auto` (default) resolves to per-shard `SO_REUSEPORT` listeners
    /// on Linux — every shard accepts from its own listener registered
    /// in its own event backend, no acceptor thread, no dealing hop —
    /// and to the single acceptor thread elsewhere, overridable with
    /// `FLASH_ACCEPT_MODE=single|reuseport`; `ReusePort`/`Single` pin
    /// a mode and ignore the environment.
    pub accept_mode: AcceptMode,
    /// Per-shard connection cap, enforced on the reuseport accept path
    /// as **local backpressure**: a shard at its cap unregisters its
    /// listener's read interest (new connections queue in the kernel
    /// backlog or hash to other shards) and re-arms the moment a slot
    /// frees. Default 8192.
    pub max_conns_per_shard: usize,
    /// Content-cache hits older than this re-stat the file (via the
    /// helper pool — the shard still never touches the filesystem)
    /// before serving: an mtime/size mismatch evicts the entry and
    /// reloads, so a file edited in place stops being served — and
    /// 304-validated — from stale cached bytes within the TTL. `None`
    /// trusts cached entries forever (the pre-revalidation behavior).
    /// Default 2 s.
    pub cache_revalidate_ttl: Option<Duration>,
    /// How long a drain ([`Server::drain`], SIGTERM) waits for
    /// existing connections to finish before the shards exit anyway.
    /// In-flight responses (including multi-gigabyte `sendfile`
    /// bodies) and pipelined keep-alive requests already buffered are
    /// served to completion within this bound; whatever is still open
    /// at the deadline is severed. Default 30 s.
    pub drain_timeout: Duration,
    /// A connection whose request is owned by a helper (`Waiting`)
    /// must receive its completion within this long or be closed —
    /// the wedged-disk/wedged-helper defense, the fourth timing-wheel
    /// deadline class. Without it a helper stuck in `open(2)` on a
    /// dead NFS mount (or a FIFO, or a hung CGI successor) pins the
    /// waiter's fd and slot forever. `None` disables it.
    /// Default 60 s — deliberately above every disk-latency spike a
    /// healthy system produces.
    pub helper_wait_timeout: Option<Duration>,
    /// Serve `GET /.flash/metrics` (Prometheus text exposition) and
    /// `GET /.flash/stats` (JSON) from the shards themselves — no
    /// sidecar thread; the scrape rides the normal parse/respond path
    /// and counts under `metrics_requests`, never `requests`. Off by
    /// default (the `/.flash/` prefix stays ordinary docroot space
    /// until opted in).
    pub metrics_endpoint: bool,
    /// Event-loop stall watchdog threshold: a loop iteration whose
    /// **non-wait** time (accept + read + respond + completions +
    /// timers) exceeds this counts as a `loop_stalls` event, and the
    /// `loop_stall_max_us` gauge tracks the high-water mark either
    /// way. This is the direct probe for the one pathology AMPED
    /// exists to prevent — a blocked event loop. Default 100 ms.
    pub loop_stall_threshold: Duration,
    /// Structured access log: each shard buffers one record per
    /// completed response and appends batched lines to this file
    /// (`None` disables logging). Reopened on SIGHUP via
    /// [`Server::rotate_access_logs`] and on every docroot reload.
    pub access_log_path: Option<PathBuf>,
    /// Requests whose path starts with this prefix are routed to the
    /// dynamic tier: a persistent worker process
    /// ([`crate::appworker`]) generates the body, streamed back as
    /// `Transfer-Encoding: chunked`. The reserved `/.flash/` namespace
    /// always wins over this rule — even a prefix of `/` cannot shadow
    /// the metrics endpoints. `None` (default) disables the tier.
    pub dynamic_prefix: Option<String>,
    /// A connection waiting on a dynamic worker must receive the next
    /// streaming event within this long or the request fails: 504 if
    /// no body bytes have been sent yet, a severed connection
    /// mid-stream — and the wedged worker is killed and respawned
    /// either way. Re-armed per event, so it bounds worker *silence*,
    /// not total response time. The fifth timing-wheel deadline class.
    /// `None` disables it. Default 10 s.
    pub dynamic_deadline: Option<Duration>,
    /// The worker command line (argv): spawned once per worker over a
    /// `socketpair(2)` and reused across requests. `None` (default)
    /// uses the built-in `/bin/sh` echo worker
    /// ([`crate::appworker::DEFAULT_WORKER_SCRIPT`]).
    pub dynamic_command: Option<Vec<String>>,
}

impl NetConfig {
    /// A config serving `docroot` with sensible defaults.
    pub fn new(docroot: impl Into<PathBuf>) -> Self {
        NetConfig {
            docroot: docroot.into(),
            helpers: 4,
            cache_bytes: 64 * 1024 * 1024,
            event_loops: default_event_loops(),
            sendfile_threshold_bytes: 256 * 1024,
            backend: BackendChoice::Auto,
            idle_timeout: Some(Duration::from_secs(30)),
            header_read_timeout: Some(Duration::from_secs(15)),
            write_stall_timeout: Some(Duration::from_secs(30)),
            accept_mode: AcceptMode::Auto,
            max_conns_per_shard: 8192,
            cache_revalidate_ttl: Some(Duration::from_secs(2)),
            drain_timeout: Duration::from_secs(30),
            helper_wait_timeout: Some(Duration::from_secs(60)),
            metrics_endpoint: false,
            loop_stall_threshold: Duration::from_millis(100),
            access_log_path: None,
            dynamic_prefix: None,
            dynamic_deadline: Some(Duration::from_secs(10)),
            dynamic_command: None,
        }
    }

    /// A validating builder over the same defaults (see
    /// [`NetConfigBuilder`]): `NetConfig::builder(root).build()?` is
    /// `NetConfig::new(root)` plus a consistency check.
    pub fn builder(docroot: impl Into<PathBuf>) -> NetConfigBuilder {
        NetConfigBuilder {
            cfg: NetConfig::new(docroot),
        }
    }

    /// The consistency check behind [`NetConfigBuilder::build`],
    /// callable on a hand-assembled config too.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn nonzero(n: u64, what: &'static str) -> Result<(), ConfigError> {
            if n == 0 {
                return Err(ConfigError(format!("{what} must be nonzero")));
            }
            Ok(())
        }
        nonzero(self.event_loops as u64, "event_loops")?;
        nonzero(self.helpers as u64, "helpers")?;
        nonzero(self.cache_bytes, "cache_bytes")?;
        nonzero(self.max_conns_per_shard as u64, "max_conns_per_shard")?;
        if self.drain_timeout.is_zero() {
            return Err(ConfigError(
                "drain_timeout of zero would sever every connection at drain entry".into(),
            ));
        }
        for (t, name) in [
            (self.idle_timeout, "idle_timeout"),
            (self.header_read_timeout, "header_read_timeout"),
            (self.write_stall_timeout, "write_stall_timeout"),
            (self.helper_wait_timeout, "helper_wait_timeout"),
            (self.cache_revalidate_ttl, "cache_revalidate_ttl"),
            (self.dynamic_deadline, "dynamic_deadline"),
        ] {
            if t == Some(Duration::ZERO) {
                return Err(ConfigError(format!(
                    "{name} of Some(0) would expire every connection instantly — use None to disable"
                )));
            }
        }
        // The largest cacheable body per shard is an ADMISSION bound
        // (cache slice / MAX_ENTRY_DIVISOR); a sendfile threshold
        // above it leaves a dead band of bodies too big to cache yet
        // too small for sendfile — every such hit re-reads the disk.
        let shard_cache = (self.cache_bytes / self.event_loops.max(1) as u64).max(1);
        let max_entry = shard_cache / crate::cache::MAX_ENTRY_DIVISOR;
        if self.sendfile_threshold_bytes > max_entry {
            return Err(ConfigError(format!(
                "sendfile_threshold_bytes ({}) exceeds the largest cacheable entry \
                 ({max_entry} = cache_bytes / event_loops / {}): bodies in between \
                 would neither cache nor sendfile",
                self.sendfile_threshold_bytes,
                crate::cache::MAX_ENTRY_DIVISOR,
            )));
        }
        if let Some(p) = &self.dynamic_prefix {
            if !p.starts_with('/') {
                return Err(ConfigError(format!(
                    "dynamic_prefix {p:?} must start with '/' (request paths always do)"
                )));
            }
        }
        if let Some(cmd) = &self.dynamic_command {
            if cmd.is_empty() {
                return Err(ConfigError(
                    "dynamic_command must name a program (use None for the built-in worker)".into(),
                ));
            }
        }
        Ok(())
    }

    /// Same config pinned to `n` event-loop shards.
    pub fn with_event_loops(mut self, n: usize) -> Self {
        self.event_loops = n.max(1);
        self
    }

    /// Same config with the large-body cutover at `bytes`.
    pub fn with_sendfile_threshold(mut self, bytes: u64) -> Self {
        self.sendfile_threshold_bytes = bytes;
        self
    }

    /// Same config pinned to a readiness backend.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Same config with the idle keep-alive reap threshold (`None`
    /// disables reaping).
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Same config with the slow-header deadline (`None` disables it).
    pub fn with_header_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.header_read_timeout = timeout;
        self
    }

    /// Same config with the write-progress deadline (`None` disables
    /// it).
    pub fn with_write_stall_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_stall_timeout = timeout;
        self
    }

    /// Same config pinned to an accept-path mode.
    pub fn with_accept_mode(mut self, mode: AcceptMode) -> Self {
        self.accept_mode = mode;
        self
    }

    /// Same config with the per-shard connection cap.
    pub fn with_max_conns_per_shard(mut self, cap: usize) -> Self {
        self.max_conns_per_shard = cap.max(1);
        self
    }

    /// Same config with the content-cache revalidation TTL (`None`
    /// trusts cached entries until eviction).
    pub fn with_cache_revalidate_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.cache_revalidate_ttl = ttl;
        self
    }

    /// Same config with the graceful-drain deadline.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Same config with the helper-completion deadline (`None`
    /// disables it).
    pub fn with_helper_wait_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.helper_wait_timeout = timeout;
        self
    }

    /// Same config with the in-band `/.flash/metrics` + `/.flash/stats`
    /// endpoints switched on or off.
    pub fn with_metrics_endpoint(mut self, on: bool) -> Self {
        self.metrics_endpoint = on;
        self
    }

    /// Same config with the event-loop stall watchdog threshold.
    pub fn with_loop_stall_threshold(mut self, threshold: Duration) -> Self {
        self.loop_stall_threshold = threshold;
        self
    }

    /// Same config writing a structured access log to `path`.
    pub fn with_access_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.access_log_path = Some(path.into());
        self
    }

    /// Same config routing paths under `prefix` to the dynamic tier.
    pub fn with_dynamic_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.dynamic_prefix = Some(prefix.into());
        self
    }

    /// Same config with the dynamic worker-silence deadline (`None`
    /// disables it).
    pub fn with_dynamic_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.dynamic_deadline = deadline;
        self
    }

    /// Same config with a custom worker command line.
    pub fn with_dynamic_command(mut self, argv: Vec<String>) -> Self {
        self.dynamic_command = Some(argv);
        self
    }
}

/// A rejected [`NetConfig`] — what was inconsistent and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Validating construction for [`NetConfig`]: the same defaults as
/// [`NetConfig::new`], one chainable setter per field, and a
/// [`NetConfigBuilder::build`] that rejects inconsistent combinations
/// (zero shard/helper/cap counts, `Some(0)` timeouts that would expire
/// everything instantly, a `drain_timeout` of zero, a sendfile
/// threshold above the largest cacheable entry, a dynamic prefix that
/// cannot match any request path) instead of starting a server that
/// can only misbehave.
///
/// ```no_run
/// # use flash_net::NetConfig;
/// let cfg = NetConfig::builder("/srv/www")
///     .event_loops(2)
///     .metrics_endpoint(true)
///     .build()
///     .expect("consistent config");
/// ```
#[derive(Debug, Clone)]
pub struct NetConfigBuilder {
    cfg: NetConfig,
}

impl NetConfigBuilder {
    pub fn helpers(mut self, n: usize) -> Self {
        self.cfg.helpers = n;
        self
    }

    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cfg.cache_bytes = bytes;
        self
    }

    pub fn event_loops(mut self, n: usize) -> Self {
        self.cfg.event_loops = n;
        self
    }

    pub fn sendfile_threshold_bytes(mut self, bytes: u64) -> Self {
        self.cfg.sendfile_threshold_bytes = bytes;
        self
    }

    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.cfg.backend = backend;
        self
    }

    pub fn idle_timeout(mut self, t: Option<Duration>) -> Self {
        self.cfg.idle_timeout = t;
        self
    }

    pub fn header_read_timeout(mut self, t: Option<Duration>) -> Self {
        self.cfg.header_read_timeout = t;
        self
    }

    pub fn write_stall_timeout(mut self, t: Option<Duration>) -> Self {
        self.cfg.write_stall_timeout = t;
        self
    }

    pub fn accept_mode(mut self, mode: AcceptMode) -> Self {
        self.cfg.accept_mode = mode;
        self
    }

    pub fn max_conns_per_shard(mut self, cap: usize) -> Self {
        self.cfg.max_conns_per_shard = cap;
        self
    }

    pub fn cache_revalidate_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.cfg.cache_revalidate_ttl = ttl;
        self
    }

    pub fn drain_timeout(mut self, t: Duration) -> Self {
        self.cfg.drain_timeout = t;
        self
    }

    pub fn helper_wait_timeout(mut self, t: Option<Duration>) -> Self {
        self.cfg.helper_wait_timeout = t;
        self
    }

    pub fn metrics_endpoint(mut self, on: bool) -> Self {
        self.cfg.metrics_endpoint = on;
        self
    }

    pub fn loop_stall_threshold(mut self, t: Duration) -> Self {
        self.cfg.loop_stall_threshold = t;
        self
    }

    pub fn access_log_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.access_log_path = Some(path.into());
        self
    }

    pub fn dynamic_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.cfg.dynamic_prefix = Some(prefix.into());
        self
    }

    pub fn dynamic_deadline(mut self, t: Option<Duration>) -> Self {
        self.cfg.dynamic_deadline = t;
        self
    }

    pub fn dynamic_command(mut self, argv: Vec<String>) -> Self {
        self.cfg.dynamic_command = Some(argv);
        self
    }

    /// Validates and returns the config, or says exactly what is
    /// inconsistent.
    pub fn build(self) -> Result<NetConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// `min(available cores, 8)` — beyond 8 loops the acceptor itself
/// becomes the bottleneck before the loops do.
pub fn default_event_loops() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Counters for a running server: per-shard atomics, aggregated on
/// read so the hot path never contends on a shared cacheline.
///
/// Every getter delegates to the same [`crate::stats`] registry
/// descriptor the exporters ([`Self::render_prometheus`],
/// [`Self::render_json`]) iterate, so a counter cannot exist here
/// without appearing in the scrape output (or vice versa).
#[derive(Debug)]
pub struct ServerStats {
    shards: Vec<Arc<ShardStats>>,
}

impl ServerStats {
    pub(crate) fn new(shards: Vec<Arc<ShardStats>>) -> Self {
        ServerStats { shards }
    }

    /// Completed responses across all shards (excludes `/.flash/*`
    /// scrapes — those count under [`Self::metrics_requests`]).
    pub fn requests(&self) -> u64 {
        metrics::REQUESTS.merged(&self.shards)
    }

    /// `/.flash/metrics` + `/.flash/stats` responses served, across
    /// shards — kept out of `requests` so scraping never perturbs the
    /// workload counters it reports.
    pub fn metrics_requests(&self) -> u64 {
        metrics::METRICS_REQUESTS.merged(&self.shards)
    }

    /// Connections accepted across all shards.
    pub fn accepted(&self) -> u64 {
        metrics::ACCEPTED.merged(&self.shards)
    }

    /// Helper jobs dispatched across all shards.
    pub fn helper_jobs(&self) -> u64 {
        metrics::HELPER_JOBS.merged(&self.shards)
    }

    /// Content-cache hits across all shards.
    pub fn cache_hits(&self) -> u64 {
        metrics::CACHE_HITS.merged(&self.shards)
    }

    /// Gathered writes issued across all shards.
    pub fn writev_calls(&self) -> u64 {
        metrics::WRITEV_CALLS.merged(&self.shards)
    }

    /// `sendfile(2)` calls issued across all shards.
    pub fn sendfile_calls(&self) -> u64 {
        metrics::SENDFILE_CALLS.merged(&self.shards)
    }

    /// Body bytes served via `sendfile(2)` across all shards.
    pub fn bytes_sendfile(&self) -> u64 {
        metrics::BYTES_SENDFILE.merged(&self.shards)
    }

    /// Bytes currently resident in the content caches, summed over
    /// shards. Large-body responses must leave this untouched.
    pub fn cache_used_bytes(&self) -> u64 {
        metrics::CACHE_USED_BYTES.merged(&self.shards)
    }

    /// Readiness `wait` calls across all shards.
    pub fn wait_calls(&self) -> u64 {
        metrics::WAIT_CALLS.merged(&self.shards)
    }

    /// Readiness events delivered across all shards.
    pub fn wait_events(&self) -> u64 {
        metrics::WAIT_EVENTS.merged(&self.shards)
    }

    /// Gauge: mean readiness events per `wait` call — how much work
    /// each kernel crossing amortizes. Rises with load (and with the
    /// epoll backend under many-connection workloads, where a wait
    /// returns only the ready descriptors instead of scanning all).
    pub fn events_per_wait(&self) -> f64 {
        let calls = self.wait_calls();
        if calls == 0 {
            return 0.0;
        }
        self.wait_events() as f64 / calls as f64
    }

    /// Keep-alive connections closed by the idle deadline, across shards.
    pub fn idle_reaped(&self) -> u64 {
        metrics::IDLE_REAPED.merged(&self.shards)
    }

    /// Connections closed by the header-read deadline, across shards.
    pub fn read_timeouts(&self) -> u64 {
        metrics::READ_TIMEOUTS.merged(&self.shards)
    }

    /// Connections closed by the write-progress deadline, across shards.
    pub fn write_stall_timeouts(&self) -> u64 {
        metrics::WRITE_STALL_TIMEOUTS.merged(&self.shards)
    }

    /// `304 Not Modified` responses served, across shards.
    pub fn not_modified(&self) -> u64 {
        metrics::NOT_MODIFIED.merged(&self.shards)
    }

    /// Well-formed single-range requests that reached a file response
    /// (satisfiable or not), across shards.
    pub fn range_requests(&self) -> u64 {
        metrics::RANGE_REQUESTS.merged(&self.shards)
    }

    /// Range requests answered `416 Range Not Satisfiable`, across
    /// shards.
    pub fn range_unsatisfiable(&self) -> u64 {
        metrics::RANGE_UNSATISFIABLE.merged(&self.shards)
    }

    /// Accept-path backpressure events (listener throttled on
    /// `EMFILE`/`ENFILE` or accept failure), across shards.
    pub fn accept_backpressure(&self) -> u64 {
        metrics::ACCEPT_BACKPRESSURE.merged(&self.shards)
    }

    /// Successful cache revalidations (re-stat matched), across shards.
    pub fn revalidations(&self) -> u64 {
        metrics::REVALIDATIONS.merged(&self.shards)
    }

    /// Cache entries evicted as stale by a revalidation re-stat,
    /// across shards.
    pub fn stale_evicted(&self) -> u64 {
        metrics::STALE_EVICTED.merged(&self.shards)
    }

    /// `Waiting` connections closed by the helper-completion deadline,
    /// across shards.
    pub fn helper_wait_timeouts(&self) -> u64 {
        metrics::HELPER_WAIT_TIMEOUTS.merged(&self.shards)
    }

    /// Helper jobs cancelled because their last waiter was reaped
    /// before the completion landed, across shards: the job is skipped
    /// if still queued, and a completion that already ran is dropped
    /// by its stale token — neither populates the cache nor wakes a
    /// reused slot.
    pub fn jobs_cancelled(&self) -> u64 {
        metrics::JOBS_CANCELLED.merged(&self.shards)
    }

    /// Requests routed to the dynamic tier by the configured prefix,
    /// across shards.
    pub fn dynamic_requests(&self) -> u64 {
        metrics::DYNAMIC_REQUESTS.merged(&self.shards)
    }

    /// Application workers retired (crashed, garbled, cancel-killed,
    /// or found dead at checkout) and replaced, across shards.
    pub fn worker_respawns(&self) -> u64 {
        metrics::WORKER_RESPAWNS.merged(&self.shards)
    }

    /// Dynamic requests that hit `dynamic_deadline` (504 before the
    /// header, a severed connection mid-stream), across shards.
    pub fn dynamic_timeouts(&self) -> u64 {
        metrics::DYNAMIC_TIMEOUTS.merged(&self.shards)
    }

    /// Gauge: how many shards are currently in drain mode.
    pub fn draining_shards(&self) -> u64 {
        metrics::DRAINING.merged(&self.shards)
    }

    /// Connections retired by drains (idle keep-alives closed at
    /// drain entry + keep-alives closed after their final response),
    /// across shards.
    pub fn drained_conns(&self) -> u64 {
        metrics::DRAINED_CONNS.merged(&self.shards)
    }

    /// Event-loop iterations whose non-wait time exceeded
    /// [`NetConfig::loop_stall_threshold`], across shards — the AMPED
    /// "the event loop must never block" invariant, measured.
    pub fn loop_stalls(&self) -> u64 {
        metrics::LOOP_STALLS.merged(&self.shards)
    }

    /// Gauge: worst single-iteration non-wait time observed by any
    /// shard, in microseconds (high-water mark, max over shards).
    pub fn loop_stall_max_us(&self) -> u64 {
        metrics::LOOP_STALL_MAX_US.merged(&self.shards)
    }

    /// Request latency histogram (first request byte → response fully
    /// flushed), merged across shards.
    pub fn request_latency(&self) -> HistSnapshot {
        metrics::HIST_REQUEST.merged(&self.shards)
    }

    /// Time-to-first-byte histogram (first request byte → first
    /// response byte accepted by the socket), merged across shards.
    pub fn ttfb(&self) -> HistSnapshot {
        metrics::HIST_TTFB.merged(&self.shards)
    }

    /// Helper-job wait histogram (parked in `Waiting` → completion
    /// delivered), merged across shards.
    pub fn helper_wait(&self) -> HistSnapshot {
        metrics::HIST_HELPER_WAIT.merged(&self.shards)
    }

    /// Worker-wait histogram (dynamic request dispatched → first
    /// worker event delivered), merged across shards.
    pub fn worker_wait(&self) -> HistSnapshot {
        metrics::HIST_WORKER_WAIT.merged(&self.shards)
    }

    /// Connection lifetime histogram (accept → close), merged across
    /// shards.
    pub fn conn_lifetime(&self) -> HistSnapshot {
        metrics::HIST_LIFETIME.merged(&self.shards)
    }

    /// The full Prometheus text exposition — exactly what
    /// `GET /.flash/metrics` serves.
    pub fn render_prometheus(&self) -> String {
        metrics::render_prometheus(&self.shards)
    }

    /// The full JSON stats document — exactly what
    /// `GET /.flash/stats` serves.
    pub fn render_json(&self) -> String {
        metrics::render_json(&self.shards)
    }

    /// The per-shard counters (index = shard id).
    pub fn per_shard(&self) -> &[Arc<ShardStats>] {
        &self.shards
    }
}

/// Handle to a running server; dropping it does **not** stop the
/// server — call [`Server::stop`] (drain with a short grace),
/// [`Server::drain`] (graceful, bounded by
/// [`NetConfig::drain_timeout`]), or [`Server::stop_now`] (immediate).
///
/// # Lifecycle
///
/// ```text
///            SIGHUP: reload_docroot() — connections undisturbed
///               ┌───┐
///               ▼   │
///  ┌─────────────────┐  drain()/SIGTERM   ┌──────────────┐  all conns done
///  │     serving     │ ─────────────────► │   draining   │ ─────┬─────────► exited
///  └─────────────────┘                    └──────────────┘      │
///               │                               │ drain_timeout │
///               │ stop_now()/SIGINT             ▼               │
///               └─────────────────────────► exited ◄────────────┘
/// ```
///
/// Draining shards quiesce their listeners (reuseport) or the
/// acceptor stops (single mode), idle keep-alive connections are
/// closed at once, and everything mid-request — in-flight `sendfile`
/// bodies, pipelined keep-alive bursts — is served to completion or
/// the deadline. For zero-downtime restarts, hand the listener set to
/// the next generation first (see [`crate::handoff`] and
/// [`Server::handoff_listeners`]), start it with
/// [`Server::start_inherited`], then drain this one: the kernel
/// sockets (and their accept backlogs) survive the switch, in both
/// accept modes.
pub struct Server {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    backend: BackendKind,
    accept_mode: AcceptModeKind,
    /// Accept-path stop flag (the acceptor thread and the shared
    /// accept loop); shards take their orders from `lifecycle`.
    shutdown: Arc<AtomicBool>,
    lifecycle: Arc<LifecycleShared>,
    drain_timeout: Duration,
    /// Duplicates of every listening socket this server accepts from
    /// (plus any extras inherited from a previous generation), held
    /// for handoff: passing these to the next generation keeps the
    /// kernel sockets — and their backlogs — alive across the switch.
    /// Dropped when the server handle is consumed, so a plain
    /// stop/drain still releases the port.
    handoff: Vec<TcpListener>,
    shard_wakes: Vec<WakeHandle>,
    /// `Some` only in single-acceptor mode; reuseport shards are woken
    /// for shutdown through their ordinary wake pipes.
    acceptor_stop: Option<UnixStream>,
    jobs: Arc<JobQueue>,
    acceptor_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    helper_threads: Vec<JoinHandle<()>>,
}

/// The write side of a shard's wake socketpair, with a coalescing
/// flag: a producer writes the wake byte only when it is the first to
/// make the shard's work queues non-empty since the shard last
/// drained, so a burst of completions floods neither the pipe nor the
/// shard's event loop.
#[derive(Clone)]
struct WakeHandle {
    tx: Arc<UnixStream>,
    pending: Arc<AtomicBool>,
}

impl WakeHandle {
    fn new(tx: UnixStream) -> Self {
        WakeHandle {
            tx: Arc::new(tx),
            pending: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Wakes the shard unless a wake is already pending.
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            let _ = (&*self.tx).write_all(b".");
        }
    }

    /// Unconditional wake (shutdown path — must never be elided).
    fn wake_force(&self) {
        let _ = (&*self.tx).write_all(b"q");
    }
}

/// One queued unit of helper work: the protocol core's [`HelperJob`]
/// plus the driver-side routing tag — which shard's done queue the
/// completion goes back to.
struct Job {
    /// Which shard's done queue the completion routes back to.
    shard: usize,
    job: HelperJob,
}

/// The real [`HelperPort`]: wraps each submitted job with its shard's
/// routing tag and pushes it into that shard's lane of the shared
/// [`JobQueue`].
struct PoolPort {
    jobs: Arc<JobQueue>,
    shard: usize,
}

impl HelperPort for PoolPort {
    fn submit(&mut self, job: HelperJob) {
        self.jobs.push(Job {
            shard: self.shard,
            job,
        });
    }
}

/// The shared helper-pool queue: one FIFO lane per shard, popped
/// **round-robin by shard**. A single global FIFO let one cold-cache
/// shard fill the queue and make every other shard's misses wait
/// behind its backlog; rotating over lanes bounds any shard's
/// head-of-line damage to one job per rotation while preserving FIFO
/// order within a shard.
struct JobQueue {
    lanes: Mutex<JobLanes>,
    ready: Condvar,
}

struct JobLanes {
    queues: Vec<VecDeque<Job>>,
    /// Next lane to serve; advances past each lane that yields a job.
    cursor: usize,
    queued: usize,
    closed: bool,
}

impl JobQueue {
    fn new(n_shards: usize) -> Arc<JobQueue> {
        Arc::new(JobQueue {
            lanes: Mutex::new(JobLanes {
                queues: (0..n_shards).map(|_| VecDeque::new()).collect(),
                cursor: 0,
                queued: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn push(&self, job: Job) {
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        if lanes.closed {
            return;
        }
        let lane = job.shard;
        lanes.queues[lane].push_back(job);
        lanes.queued += 1;
        drop(lanes);
        self.ready.notify_one();
    }

    /// Blocks for the next job in shard-rotation order; `None` once
    /// the queue is closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = pop_round_robin(&mut lanes) {
                return Some(job);
            }
            if lanes.closed {
                return None;
            }
            lanes = self.ready.wait(lanes).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Wakes every blocked helper; subsequent pops drain then end.
    fn close(&self) {
        self.lanes.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// Takes the next job starting at the rotation cursor, advancing the
/// cursor past the lane served so consecutive pops visit lanes fairly.
fn pop_round_robin(lanes: &mut JobLanes) -> Option<Job> {
    if lanes.queued == 0 {
        return None;
    }
    let n = lanes.queues.len();
    for k in 0..n {
        let lane = (lanes.cursor + k) % n;
        if let Some(job) = lanes.queues[lane].pop_front() {
            lanes.cursor = (lane + 1) % n;
            lanes.queued -= 1;
            return Some(job);
        }
    }
    None
}

/// Token for the shard's wake pipe (never a valid connection token:
/// connection tokens carry a slot in the high half, and slot 2^32-1
/// with fd 2^32-1 cannot occur).
const WAKE_TOKEN: u64 = u64::MAX;

/// Token for a shard's own `SO_REUSEPORT` listener — the slot half is
/// 2^32-1, which a real connection slot can never reach, so it can
/// never collide with a connection token (nor with [`WAKE_TOKEN`],
/// whose fd half differs).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Packs a connection's identity into an event token: slot index in
/// the high 32 bits, descriptor number in the low 32. The fd half lets
/// the loop reject stale events after a slot is recycled — the same
/// guard the old poll loop kept via its parallel fd array.
fn conn_token(slot: usize, fd: RawFd) -> u64 {
    ((slot as u64) << 32) | (fd as u32 as u64)
}

fn token_slot(token: u64) -> usize {
    (token >> 32) as usize
}

fn token_fd(token: u64) -> RawFd {
    token as u32 as RawFd
}

impl Server {
    /// Binds `addr` and starts the event-loop shards, the shared
    /// helper pool and — in single-acceptor mode only — the acceptor
    /// thread. In reuseport mode every shard owns its own
    /// `SO_REUSEPORT` listener, registered in that shard's event
    /// backend before its thread exists.
    pub fn start(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<Server> {
        let req_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Server::start_impl(Some(req_addr), Vec::new(), cfg)
    }

    /// Starts a server on listening sockets inherited from a previous
    /// generation (see [`crate::handoff`]) instead of binding fresh
    /// ones — the kernel sockets, and every connection queued in
    /// their backlogs, carry over from the old generation, so the
    /// switch drops nothing even in the `Single`/non-reuseport mode
    /// where a same-port rebind is impossible.
    ///
    /// In single mode the first inherited listener serves; in
    /// reuseport mode the inherited set is dealt to the shards in
    /// order, and if there are fewer listeners than shards the
    /// remainder bind fresh `SO_REUSEPORT` siblings on the same port.
    /// Inherited listeners beyond what the accept path needs are not
    /// closed — they stay in this server's handoff set
    /// ([`Server::handoff_listeners`]), because closing the last
    /// duplicate of a listening socket RSTs its queued connections;
    /// still, matching `event_loops` across generations is the
    /// clean configuration.
    pub fn start_inherited(cfg: NetConfig, inherited: Vec<TcpListener>) -> io::Result<Server> {
        if inherited.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "start_inherited requires at least one listener",
            ));
        }
        Server::start_impl(None, inherited, cfg)
    }

    fn start_impl(
        req_addr: Option<SocketAddr>,
        inherited: Vec<TcpListener>,
        cfg: NetConfig,
    ) -> io::Result<Server> {
        let accept_mode = sock::resolve_accept_mode(cfg.accept_mode);
        let shutdown = Arc::new(AtomicBool::new(false));
        let lifecycle = Arc::new(LifecycleShared::new());
        let n_shards = cfg.event_loops.max(1);
        let backend = crate::event::resolve(cfg.backend);

        // Inherited fds came in via SCM_RIGHTS as dups of the old
        // generation's listeners; dup shares the open file
        // description, so they are already nonblocking — asserted
        // here anyway, because a blocking listener would wedge a
        // whole shard on one spurious readiness event.
        for l in &inherited {
            l.set_nonblocking(true)?;
        }
        let mut inherited = inherited.into_iter();

        // All listeners are bound (or adopted) before any thread
        // exists, so an unbindable port is a clean start() error. In
        // reuseport mode the first bind fixes the port (addr may
        // carry port 0) and the remaining shards bind the resolved
        // address.
        let (addr, single_listener, shard_listeners) = match accept_mode {
            AcceptModeKind::Single => {
                let l = match inherited.next() {
                    Some(l) => l,
                    None => sock::bind_listener(req_addr.expect("addr or listeners"), false)?,
                };
                let bound = l.local_addr()?;
                (bound, Some(l), Vec::new())
            }
            AcceptModeKind::ReusePort => {
                let first = match inherited.next() {
                    Some(l) => l,
                    None => sock::bind_listener(req_addr.expect("addr or listeners"), true)?,
                };
                let bound = first.local_addr()?;
                let mut listeners = vec![first];
                for _ in 1..n_shards {
                    listeners.push(match inherited.next() {
                        Some(l) => l,
                        // Fewer inherited listeners than shards: the
                        // rest bind fresh reuseport siblings (the
                        // inherited sockets carry SO_REUSEPORT, so
                        // the shared bind is permitted).
                        None => sock::bind_listener(bound, true)?,
                    });
                }
                (bound, None, listeners)
            }
        };

        // The handoff set: one duplicate of every listener the accept
        // path uses, plus inherited extras (closing the last dup of a
        // listening socket would RST its queued connections — extras
        // ride along to the next generation instead).
        let mut handoff = Vec::new();
        for l in single_listener.iter().chain(shard_listeners.iter()) {
            handoff.push(l.try_clone()?);
        }
        handoff.extend(inherited);
        let mut shard_listeners = shard_listeners.into_iter();

        let shard_stats: Vec<Arc<ShardStats>> = (0..n_shards)
            .map(|_| Arc::new(ShardStats::default()))
            .collect();
        let stats = Arc::new(ServerStats {
            shards: shard_stats.clone(),
        });

        // One shared helper queue with per-shard lanes; per-shard done
        // queues and wake pipes routing completions back. The conn
        // channels exist only in single-acceptor mode — reuseport
        // shards accept for themselves, so there is no dealing hop and
        // no wake byte per accepted connection.
        let jobs = JobQueue::new(n_shards);
        let mut conn_txs = Vec::with_capacity(n_shards);
        let mut done_txs = Vec::with_capacity(n_shards);
        let mut shard_wakes = Vec::with_capacity(n_shards);
        let mut shard_threads = Vec::with_capacity(n_shards);
        let mut shard_setups = Vec::with_capacity(n_shards);
        for shard_id in 0..n_shards {
            let conn_rx = if accept_mode == AcceptModeKind::Single {
                let (conn_tx, conn_rx) = unbounded::<TcpStream>();
                conn_txs.push(conn_tx);
                Some(conn_rx)
            } else {
                None
            };
            let (done_tx, done_rx) = unbounded::<Done<Arc<File>>>();
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            let wake = WakeHandle::new(wake_tx);
            done_txs.push(done_tx);
            shard_wakes.push(wake.clone());
            shard_setups.push((shard_id, conn_rx, done_rx, wake_rx, wake));
        }

        // The dynamic tier's worker pool, shared by every helper
        // thread (spawning is lazy — a server with no dynamic_prefix
        // never forks anything).
        let workers = Arc::new(crate::appworker::WorkerPool::new(
            cfg.dynamic_command
                .clone()
                .unwrap_or_else(crate::appworker::WorkerPool::default_command),
        ));
        let mut helper_threads = Vec::new();
        for i in 0..cfg.helpers.max(1) {
            let queue = Arc::clone(&jobs);
            let txs = done_txs.clone();
            let wakes = shard_wakes.clone();
            let pool = Arc::clone(&workers);
            let helper_stats = shard_stats.clone();
            helper_threads.push(
                std::thread::Builder::new()
                    .name(format!("flash-helper-{i}"))
                    .spawn(move || helper_main(queue, txs, wakes, pool, helper_stats))?,
            );
        }
        drop(done_txs);

        // Each shard gets an equal slice of the cache budget: private
        // caches mean zero lock traffic at the cost of N-way
        // duplication of the hottest entries.
        //
        // Everything fallible from the first shard spawn onward runs
        // inside this labeled block: once any shard thread exists, a
        // later failure must tear the spawned ones down (below) rather
        // than `?` straight out — an abandoned shard would otherwise
        // keep its SO_REUSEPORT listener bound for the process
        // lifetime and spin on its dead wake pipe.
        let shard_cache_bytes = (cfg.cache_bytes / n_shards as u64).max(1);
        let setup: io::Result<(Option<UnixStream>, Option<JoinHandle<()>>)> = 'setup: {
            for (shard_id, conn_rx, done_rx, wake_rx, wake) in shard_setups {
                // The backend is created and the wake pipe (and, in
                // reuseport mode, this shard's listener) registered
                // HERE so a failure (epoll watch limits, fd
                // exhaustion) aborts start() with an error instead of
                // leaving a silently dead shard.
                let mut shard_backend = new_backend(cfg.backend);
                if let Err(e) =
                    shard_backend.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
                {
                    break 'setup Err(e);
                }
                let listener = shard_listeners.next();
                if let Some(l) = &listener {
                    if let Err(e) =
                        shard_backend.register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                    {
                        break 'setup Err(e);
                    }
                }
                let proto = ProtoConfig {
                    docroot: cfg.docroot.clone(),
                    idle_timeout: cfg.idle_timeout,
                    header_read_timeout: cfg.header_read_timeout,
                    write_stall_timeout: cfg.write_stall_timeout,
                    helper_wait_timeout: cfg.helper_wait_timeout,
                    cache_revalidate_ttl: cfg.cache_revalidate_ttl,
                    sendfile_threshold: cfg.sendfile_threshold_bytes,
                    metrics_endpoint: cfg.metrics_endpoint,
                    dynamic_prefix: cfg.dynamic_prefix.clone(),
                    dynamic_deadline: cfg.dynamic_deadline,
                    access_log: cfg.access_log_path.is_some(),
                };
                let mut core = ShardCore::new(
                    shard_id,
                    shard_cache_bytes,
                    proto,
                    Arc::clone(&shard_stats[shard_id]),
                );
                // Every shard can see its siblings' counters, so a
                // `/.flash/metrics` scrape answered by any one shard
                // reports the whole server.
                core.export = shard_stats.clone();
                let ctx = ShardCtx {
                    core,
                    port: PoolPort {
                        jobs: Arc::clone(&jobs),
                        shard: shard_id,
                    },
                    cfg: cfg.clone(),
                    live_conns: 0,
                };
                let lifecycle2 = Arc::clone(&lifecycle);
                let spawned = std::thread::Builder::new()
                    .name(format!("flash-shard-{shard_id}"))
                    .spawn(move || {
                        shard_loop(
                            ctx,
                            conn_rx,
                            done_rx,
                            wake_rx,
                            wake,
                            listener,
                            shard_backend,
                            lifecycle2,
                        )
                    });
                match spawned {
                    Ok(t) => shard_threads.push(t),
                    Err(e) => break 'setup Err(e),
                }
            }

            match single_listener {
                None => Ok((None, None)),
                Some(listener) => {
                    let (acceptor_stop, stop_rx) = match UnixStream::pair() {
                        Ok(pair) => pair,
                        Err(e) => break 'setup Err(e),
                    };
                    // Same principle: listener + stop pipe registered
                    // before the thread exists, so a deaf acceptor is a
                    // start() error.
                    let accept_backend =
                        match prepare_accept_backend(cfg.backend, &listener, &stop_rx) {
                            Ok(b) => b,
                            Err(e) => break 'setup Err(e),
                        };
                    let shutdown2 = Arc::clone(&shutdown);
                    let accept_stats = shard_stats.clone();
                    let acceptor_wakes = shard_wakes.clone();
                    let spawned = std::thread::Builder::new()
                        .name("flash-acceptor".into())
                        .spawn(move || {
                            let mut dealer = ShardDealer {
                                conn_txs,
                                wakes: acceptor_wakes,
                                stats: accept_stats,
                                next: 0,
                            };
                            run_accept_loop(&listener, accept_backend, &shutdown2, &mut dealer);
                            drop(stop_rx); // keep the read side alive until exit
                        });
                    match spawned {
                        Ok(t) => Ok((Some(acceptor_stop), Some(t))),
                        Err(e) => break 'setup Err(e),
                    }
                }
            }
        };
        let (acceptor_stop, acceptor_thread) = match setup {
            Ok(v) => v,
            Err(e) => {
                // Partial start: stop and join every thread spawned so
                // far, exactly like stop_now() — the per-shard
                // listeners close with their loops, so the port is
                // released before the error is returned.
                lifecycle.stop_now();
                shutdown.store(true, Ordering::SeqCst);
                for wake in &shard_wakes {
                    wake.wake_force();
                }
                for t in shard_threads {
                    let _ = t.join();
                }
                jobs.close();
                for t in helper_threads {
                    let _ = t.join();
                }
                return Err(e);
            }
        };

        Ok(Server {
            addr,
            stats,
            backend,
            accept_mode,
            shutdown,
            lifecycle,
            drain_timeout: cfg.drain_timeout,
            handoff,
            shard_wakes,
            acceptor_stop,
            jobs,
            acceptor_thread,
            shard_threads,
            helper_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters, aggregated over shards on read.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The readiness backend this server resolved to at start.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The accept-path mode this server resolved to at start.
    pub fn accept_mode(&self) -> AcceptModeKind {
        self.accept_mode
    }

    /// The handoff set: duplicates of every listening socket this
    /// server accepts from. Send these to the next generation
    /// ([`crate::handoff::send_listeners`]) before draining this one —
    /// the kernel sockets and their accept backlogs then survive the
    /// generation switch.
    pub fn handoff_listeners(&self) -> &[TcpListener] {
        &self.handoff
    }

    /// Grace period [`Server::stop`] allows in-flight responses: long
    /// enough for any response already being written to go out whole
    /// on a healthy link, short enough that tests and tools calling
    /// `stop()` stay snappy.
    const STOP_GRACE: Duration = Duration::from_secs(1);

    /// Drains gracefully, bounded by [`NetConfig::drain_timeout`]:
    /// accepting stops everywhere, idle keep-alive connections are
    /// closed at once, connections mid-request — including in-flight
    /// `sendfile` bodies and pipelined keep-alive bursts already
    /// buffered — are served to completion, and each shard exits when
    /// its last connection finishes (or the deadline severs the rest).
    /// This is the SIGTERM order in the lifecycle diagram above.
    pub fn drain(self) {
        let grace = self.drain_timeout;
        self.drain_for(grace);
    }

    /// [`Server::drain`] with an explicit grace bound.
    pub fn drain_for(mut self, grace: Duration) {
        self.lifecycle.begin_drain(Instant::now() + grace);
        // This generation's claim on the port ends now: the handoff
        // dups close here (and each shard closes its own listener as
        // it observes the drain). A next generation that already
        // received inherited dups keeps the kernel sockets — and
        // their accept backlogs — alive; without one, a fresh
        // `SO_REUSEPORT` bind fully owns the port while we drain
        // instead of sharing the hash group with sockets nobody is
        // accepting from.
        self.handoff.clear();
        self.halt_accept_and_join();
    }

    /// Stops the server through the drain path with a short bounded
    /// grace (min of [`NetConfig::drain_timeout`] and 1 s): a response
    /// already being written goes out whole instead of being truncated
    /// mid-body, idle connections close immediately, and anything
    /// slower than the grace is severed. Tests that need today's
    /// instant teardown use [`Server::stop_now`].
    pub fn stop(self) {
        let grace = self.drain_timeout.min(Self::STOP_GRACE);
        self.drain_for(grace);
    }

    /// Stops immediately, severing in-flight connections — the
    /// SIGINT order, and the pre-drain `stop()` behavior.
    pub fn stop_now(mut self) {
        self.lifecycle.stop_now();
        self.halt_accept_and_join();
    }

    /// Publishes a new document root: every shard swaps its config
    /// and flushes its content cache between drives — in-flight
    /// requests finish undisturbed, the next request on every
    /// connection (including currently open keep-alives) is served
    /// from the new root. This is the SIGHUP order; completions from
    /// jobs dispatched before the swap are served to their waiters
    /// but not cached (epoch-checked), so pre-reload bytes cannot
    /// poison the post-reload cache.
    pub fn reload_docroot(&self, docroot: impl Into<PathBuf>) {
        self.lifecycle.publish_reload(docroot.into());
        for wake in &self.shard_wakes {
            wake.wake();
        }
    }

    /// Asks every shard to reopen its access-log file at the
    /// configured path — the logrotate handshake: rename the file,
    /// send SIGHUP (or call this), and the shards close the renamed
    /// inode and append to a fresh one. Records are batched per loop
    /// iteration and written with a single `O_APPEND` write each, so
    /// no line is lost or torn across the swap. A no-op unless
    /// [`NetConfig::access_log_path`] is set.
    pub fn rotate_access_logs(&self) {
        self.lifecycle.rotate_logs();
        for wake in &self.shard_wakes {
            wake.wake();
        }
    }

    /// Wakes everything and joins all threads. Every listener — the
    /// acceptor's or the per-shard reuseport set — is owned by the
    /// thread it serves and closed before that thread is joined, and
    /// the handoff duplicates drop with `self`, so when the caller
    /// returns the port is fully released and rebindable (unless a
    /// next generation holds inherited duplicates — the point of
    /// handoff).
    fn halt_accept_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks with no timeout; its stop pipe is the
        // only thing that can wake it.
        if let Some(stop) = &self.acceptor_stop {
            let _ = (&*stop).write_all(b"q");
        }
        for wake in &self.shard_wakes {
            wake.wake_force();
        }
        if let Some(t) = self.acceptor_thread.take() {
            let _ = t.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        // Shards are gone — no producer remains; release the helpers.
        self.jobs.close();
        for t in self.helper_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Token for an accept loop's listener registration.
const ACCEPT_LISTENER_TOKEN: u64 = 0;
/// Token for an accept loop's stop pipe.
const ACCEPT_STOP_TOKEN: u64 = 1;

/// Creates an accept loop's readiness backend with the listener and
/// stop pipe already registered — called on the *starting* thread so a
/// registration failure surfaces as a start error rather than a
/// silently deaf accept thread.
pub(crate) fn prepare_accept_backend(
    choice: BackendChoice,
    listener: &TcpListener,
    stop_rx: &UnixStream,
) -> io::Result<Box<dyn EventBackend>> {
    let mut backend = new_backend(choice);
    stop_rx.set_nonblocking(true)?;
    backend.register(listener.as_raw_fd(), ACCEPT_LISTENER_TOKEN, Interest::READ)?;
    backend.register(stop_rx.as_raw_fd(), ACCEPT_STOP_TOKEN, Interest::READ)?;
    Ok(backend)
}

/// What an accept loop does with each connection (and between drains);
/// the loop mechanics — wait, drain, retry — are shared between the
/// AMPED acceptor (deal to shards) and the MT server (spawn a worker).
pub(crate) trait AcceptSink {
    /// Called once per accepted connection.
    fn on_conn(&mut self, stream: TcpStream);
    /// Called once per wait/drain cycle (worker reaping and the like).
    fn after_drain(&mut self) {}
}

/// The accept loop over a prepared backend (see
/// [`prepare_accept_backend`]): blocks with an infinite timeout — the
/// stop pipe is the shutdown signal, so no polling interval is burned
/// while idle and shutdown latency is one pipe write, not a timeout
/// expiry — and drains accepts to `EWOULDBLOCK` per readiness cycle.
/// An accept failure other than `EWOULDBLOCK` (EMFILE/ENFILE under fd
/// exhaustion) bounds the next wait to a short retry instead: the
/// readiness edge is consumed but connections may still be queued, and
/// an edge-triggered backend reports each arrival only once.
pub(crate) fn run_accept_loop(
    listener: &TcpListener,
    mut backend: Box<dyn EventBackend>,
    shutdown: &AtomicBool,
    sink: &mut dyn AcceptSink,
) {
    let mut events: Vec<Event> = Vec::new();
    let mut retry_accept = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let timeout = if retry_accept { 10 } else { -1 };
        if backend.wait(&mut events, timeout).is_err() {
            continue;
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if events.iter().any(|e| e.token == ACCEPT_LISTENER_TOKEN) || retry_accept {
            retry_accept = false;
            loop {
                match listener.accept() {
                    Ok((stream, _)) => sink.on_conn(stream),
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        retry_accept = true;
                        break;
                    }
                }
            }
        }
        sink.after_drain();
    }
}

/// The AMPED acceptor's sink: deals accepted connections round-robin
/// to the shards, waking each target through its wake pipe.
struct ShardDealer {
    conn_txs: Vec<Sender<TcpStream>>,
    wakes: Vec<WakeHandle>,
    stats: Vec<Arc<ShardStats>>,
    next: usize,
}

impl AcceptSink for ShardDealer {
    fn on_conn(&mut self, stream: TcpStream) {
        if sock::apply_conn_options(&stream).is_err() {
            return;
        }
        if self.conn_txs[self.next].send(stream).is_ok() {
            self.stats[self.next]
                .accepted
                .fetch_add(1, Ordering::Relaxed);
            self.wakes[self.next].wake();
        }
        self.next = (self.next + 1) % self.conn_txs.len();
    }
}

/// Shared helper pool: pops jobs and hands each to the shared
/// mechanical executor ([`crate::fsjob`]), routing the completion back
/// to the shard that requested it. No tier or variant policy lives
/// here — the job carries it all.
fn helper_main(
    jobs: Arc<JobQueue>,
    done_txs: Vec<Sender<Done<Arc<File>>>>,
    wakes: Vec<WakeHandle>,
    workers: Arc<crate::appworker::WorkerPool>,
    stats: Vec<Arc<ShardStats>>,
) {
    // `pop` rotates over the per-shard lanes; `None` means the server
    // closed the queue at shutdown.
    while let Some(Job { shard, job }) = jobs.pop() {
        // A job whose last waiter was reaped while it sat in the queue
        // needs no disk work and no completion: its pending entry is
        // already gone, so a Done would die on token mismatch anyway.
        if job.is_cancelled() {
            continue;
        }
        // Dynamic jobs are multi-event streams the single-shot
        // filesystem executor cannot express: the worker exchange runs
        // here, on this helper thread, emitting one completion per
        // frame under the job's single token.
        if job.kind == crate::conn::JobKind::Dynamic {
            let tx = &done_txs[shard];
            let wake = &wakes[shard];
            let retired = crate::appworker::run_job(&workers, &job, &mut |ev| {
                if tx
                    .send(Done {
                        path: job.path.clone(),
                        data: crate::conn::DoneData::Dynamic(ev),
                        epoch: job.epoch,
                        token: job.token,
                    })
                    .is_ok()
                {
                    wake.wake();
                }
            });
            if retired > 0 {
                stats[shard]
                    .worker_respawns
                    .fetch_add(retired, Ordering::Relaxed);
            }
            continue;
        }
        let data = crate::fsjob::exec_job(&job);
        if done_txs[shard]
            .send(Done {
                path: job.path,
                data,
                epoch: job.epoch,
                token: job.token,
            })
            .is_err()
        {
            continue;
        }
        wakes[shard].wake();
    }
}

/// One shard's driver-side state: the transport-agnostic protocol
/// core plus everything only this driver owns — the helper-pool port,
/// the full (driver-level) config, and the accept gate's odometer.
struct ShardCtx {
    core: ShardCore,
    port: PoolPort,
    cfg: NetConfig,
    /// Connections currently occupying slots — the accept gate's
    /// odometer: at [`NetConfig::max_conns_per_shard`] the shard's
    /// listener interest is dropped; any close below the cap re-arms
    /// it.
    live_conns: usize,
}

/// Bounded retry cadence while a shard's listener is throttled with
/// room available (the EMFILE/ENFILE case): the re-arm is driven by
/// the wait timeout rather than an event, because fd headroom can
/// reappear without any readiness edge on this shard's descriptors.
const ACCEPT_RETRY_MS: i32 = 50;

/// One event-loop shard: the paper's AMPED loop on the pluggable
/// readiness backend, over this shard's private connection set.
///
/// Written to the edge-triggered contract (see [`crate::event`]):
/// every drive runs the connection until `EWOULDBLOCK`, interest is
/// reconciled with the state machine after each drive, and a voluntary
/// yield (the `sendfile` fairness budget) re-arms the descriptor so
/// the consumed writability edge is redelivered.
///
/// In reuseport mode (`listener` is `Some`) the shard also owns a
/// `SO_REUSEPORT` listener under [`LISTENER_TOKEN`]: accepts drain to
/// `EWOULDBLOCK` like any other read source, and **backpressure is
/// local** — at the connection cap (or on `EMFILE`/`ENFILE`) the
/// listener's read interest is dropped, so pending connections stay
/// in the kernel backlog (or hash to other shards), and the interest
/// is re-armed the moment a slot frees. The re-arm leans on the
/// backend contract that `modify` redelivers a still-true readiness
/// condition, so a backlog that filled while throttled surfaces as a
/// fresh event.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    mut ctx: ShardCtx,
    // `Some` only in single-acceptor mode (the dealing channel).
    conn_rx: Option<Receiver<TcpStream>>,
    done_rx: Receiver<Done<Arc<File>>>,
    mut wake_rx: UnixStream,
    wake: WakeHandle,
    // `Some` only in reuseport mode: this shard's own listener, owned
    // (and therefore closed) by this loop — dropped at drain entry or
    // on return, before Server::stop's join observes the thread gone,
    // so the port is free once stop() returns.
    mut listener: Option<TcpListener>,
    // Created by Server::start with the wake pipe already registered,
    // so backend failures abort startup instead of killing one shard.
    mut backend: Box<dyn EventBackend>,
    lifecycle: Arc<LifecycleShared>,
) {
    let mut conns: Vec<Option<NetConn>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut completed: Vec<usize> = Vec::new();
    // Per-state deadlines live in a hashed timing wheel keyed by the
    // same slot+fd tokens the event backend uses. The tick is an
    // eighth of the smallest configured timeout, so rounding (≤1 tick)
    // plus wait cadence (≤1 tick) keeps expiry within ~1.25× the
    // configured deadline; expiry work is O(expired), never a scan of
    // the connection table.
    let cfg_timeouts = [
        ctx.cfg.idle_timeout,
        ctx.cfg.header_read_timeout,
        ctx.cfg.write_stall_timeout,
        ctx.cfg.helper_wait_timeout,
        ctx.cfg.dynamic_deadline,
    ];
    let mut wheel = TimerWheel::new(tick_for(cfg_timeouts.into_iter().flatten()));
    let mut expired: Vec<u64> = Vec::new();
    // Whether the listener's READ interest is currently armed in the
    // backend (registered armed by Server::start).
    let mut listener_armed = listener.is_some();
    // The drain deadline, captured once when the shard observes the
    // draining phase (begin_drain stores it before flipping the
    // phase, so it is always visible here).
    let mut drain_deadline: Option<Instant> = None;
    // Flight-recorder state: the access-log writer (None unless
    // configured) and the rotation generation last applied.
    let mut access_log = ctx.cfg.access_log_path.clone().map(AccessLogWriter::open);
    let mut log_gen_seen = lifecycle.log_gen();
    let stall_threshold = ctx.cfg.loop_stall_threshold;

    loop {
        match lifecycle.phase() {
            PHASE_STOPPING => {
                if ctx.core.draining {
                    ctx.core.stats.draining.store(0, Ordering::Relaxed);
                }
                if let Some(w) = access_log.as_mut() {
                    w.drain(&mut ctx.core.access_log);
                }
                return;
            }
            PHASE_DRAINING if !ctx.core.draining => {
                drain_deadline = lifecycle.drain_deadline();
                // The listener CLOSES here, not merely quiesces: an
                // open reuseport socket keeps its place in the
                // kernel's hash group even with no one accepting, so
                // keeping it would blackhole the connections hashed to
                // it. A next generation holding inherited handoff dups
                // keeps the kernel socket (and its backlog) alive;
                // without one, fresh binds now fully own the port.
                if let Some(l) = listener.take() {
                    let _ = backend.deregister(l.as_raw_fd());
                }
                listener_armed = false;
                enter_drain(&mut conns, &mut ctx, &mut *backend, &mut wheel);
            }
            _ => {}
        }
        if ctx.core.draining
            && (ctx.live_conns == 0 || drain_deadline.is_some_and(|d| Instant::now() >= d))
        {
            // Drained clean — or the deadline severs whatever is left
            // (conns drop with the loop's locals on return).
            ctx.core.stats.draining.store(0, Ordering::Relaxed);
            if let Some(w) = access_log.as_mut() {
                w.drain(&mut ctx.core.access_log);
            }
            return;
        }
        // Apply a published SIGHUP reload the shard has not seen yet.
        // The swap happens between drives, so in-flight requests
        // finish undisturbed and the next request on every connection
        // — including open keep-alives — sees the new root.
        let generation = lifecycle.reload_gen();
        if generation != ctx.core.epoch {
            ctx.core
                .apply_reload(lifecycle.reload_docroot(), generation);
            // A docroot reload is also a log boundary: reopen so a
            // rotation bundled with the SIGHUP takes effect here too.
            if let Some(w) = access_log.as_mut() {
                w.reopen();
            }
        }
        // Apply a pending access-log rotation (logrotate renamed the
        // file, then asked us to reopen the path).
        let log_gen = lifecycle.log_gen();
        if log_gen != log_gen_seen {
            log_gen_seen = log_gen;
            if let Some(w) = access_log.as_mut() {
                w.reopen();
            }
        }
        // Sleep until the next wheel tick could expire something; with
        // nothing armed, block — new work always arrives as a wake
        // byte or a readiness event. A throttled listener with room to
        // re-arm (the EMFILE case: headroom can return without any
        // local readiness edge) bounds the wait to a retry cadence on
        // top of whatever the wheel asks for.
        let mut wait_ms = wheel.next_timeout_ms(Instant::now()).unwrap_or(-1);
        if listener.is_some()
            && !listener_armed
            && !ctx.core.draining
            && ctx.live_conns < ctx.cfg.max_conns_per_shard
            && !(0..=ACCEPT_RETRY_MS).contains(&wait_ms)
        {
            wait_ms = ACCEPT_RETRY_MS;
        }
        // While draining, never sleep past the drain deadline — the
        // severing check above must run when it lands even if every
        // remaining connection is quietly mid-transfer.
        if let Some(d) = drain_deadline {
            let left = d
                .saturating_duration_since(Instant::now())
                .as_millis()
                .min(i32::MAX as u128) as i32;
            let left = left.max(1);
            if wait_ms < 0 || wait_ms > left {
                wait_ms = left;
            }
        }
        let wait_begin = Instant::now();
        if backend.wait(&mut events, wait_ms).is_err() {
            continue;
        }
        // Everything from here to the bottom of the loop is non-wait
        // time — the span the stall watchdog measures, phase by phase.
        let loop_start = Instant::now();
        ctx.core.stats.phase_wait_us.fetch_add(
            loop_start.duration_since(wait_begin).as_micros() as u64,
            Ordering::Relaxed,
        );
        let mut mark = loop_start;
        ctx.core.stats.wait_calls.fetch_add(1, Ordering::Relaxed);
        ctx.core
            .stats
            .wait_events
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        let mut accept_ready = false;
        if events.iter().any(|e| e.token == WAKE_TOKEN) {
            // Drain the pipe completely (edge-triggered: this event
            // may be the only notification for any number of bytes).
            let mut sink = [0u8; 256];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            // Clear the coalescing flag *before* draining the queues:
            // anything enqueued after this point writes a fresh wake
            // byte, so completions cannot be lost.
            wake.pending.store(false, Ordering::Release);
            if let Some(conn_rx) = &conn_rx {
                while let Ok(stream) = conn_rx.try_recv() {
                    admit_conn(stream, &mut conns, &mut ctx, &mut *backend, &mut wheel);
                }
            }
            lap(&ctx.core.stats.phase_accept_us, &mut mark);
            completed.clear();
            while let Ok(done) = done_rx.try_recv() {
                ctx.core.complete_job(
                    done,
                    &mut conns,
                    &mut completed,
                    &mut ctx.port,
                    Instant::now(),
                );
            }
            lap(&ctx.core.stats.phase_completions_us, &mut mark);
            // Completions flipped their waiters to Writing with the
            // socket unarmed; drive them now — the socket is almost
            // always writable, so the common case finishes here
            // without ever arming write interest.
            for idx in completed.drain(..) {
                drive_and_sync(idx, &mut conns, &mut ctx, &mut *backend, &mut wheel);
            }
            lap(&ctx.core.stats.phase_respond_us, &mut mark);
        }
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                continue;
            }
            if ev.token == LISTENER_TOKEN {
                // Drained below, after existing connections are
                // serviced and expiries may have freed slots.
                accept_ready = true;
                continue;
            }
            let idx = token_slot(ev.token);
            let fd = token_fd(ev.token);
            // The wake-pipe drain above can close a connection and let
            // its slot be reused by a new stream — with a recycled
            // kernel fd number, even. The event in hand describes the
            // *old* registration, so only drive the slot if it still
            // holds the exact fd the token was minted with.
            let live = conns
                .get(idx)
                .and_then(|c| c.as_ref())
                .is_some_and(|c| c.io.stream.as_raw_fd() == fd);
            if live {
                drive_and_sync(idx, &mut conns, &mut ctx, &mut *backend, &mut wheel);
            }
        }
        lap(&ctx.core.stats.phase_read_us, &mut mark);
        // Expire deadlines last: anything the drives above just
        // re-armed is already accounted for (single-threaded, so the
        // wheel is exactly consistent with the connection table here).
        wheel.expire(Instant::now(), &mut expired);
        for token in expired.drain(..) {
            let idx = token_slot(token);
            let fd = token_fd(token);
            // Same stale-token guard as readiness events: only close
            // the slot if it still holds the connection the deadline
            // was armed for.
            let Some(conn) = conns
                .get_mut(idx)
                .and_then(|c| c.as_mut())
                .filter(|c| c.io.stream.as_raw_fd() == fd)
            else {
                continue;
            };
            let kind = conn.deadline;
            if kind == DeadlineKind::DynamicWait {
                // The worker went silent past dynamic_deadline. The
                // shared expiry logic purges the waiter — raising the
                // job's cancel flag, which makes the helper kill and
                // respawn the wedged worker — and either queues a 504
                // (no body bytes sent yet: drive it out) or reports
                // the stream unsalvageable (sever the slot).
                if ctx.core.expire_dynamic_wait(idx, &mut conns) {
                    drive_and_sync(idx, &mut conns, &mut ctx, &mut *backend, &mut wheel);
                } else if let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) {
                    ctx.core.note_close(conn, Instant::now());
                    let _ = backend.deregister(fd);
                    conns[idx] = None;
                    ctx.live_conns = ctx.live_conns.saturating_sub(1);
                }
                continue;
            }
            let counter = match kind {
                DeadlineKind::Idle => &ctx.core.stats.idle_reaped,
                DeadlineKind::Header => &ctx.core.stats.read_timeouts,
                DeadlineKind::WriteStall => &ctx.core.stats.write_stall_timeouts,
                DeadlineKind::HelperWait => &ctx.core.stats.helper_wait_timeouts,
                DeadlineKind::DynamicWait => unreachable!("handled above"),
                // An expiry for a conn with no armed class can only be
                // a stale token that survived validation by fd reuse;
                // leave the connection alone.
                DeadlineKind::None => continue,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            ctx.core.note_close(conn, Instant::now());
            let _ = backend.deregister(fd);
            conns[idx] = None;
            ctx.live_conns = ctx.live_conns.saturating_sub(1);
            if kind == DeadlineKind::HelperWait {
                // The reaped connection was parked on a waiter list;
                // remove it (cancelling the job if it was the last
                // waiter) so the completion — which may still arrive —
                // cannot be delivered to whatever connection reuses
                // this slot.
                ctx.core.purge_waiter(idx);
            }
        }
        lap(&ctx.core.stats.phase_timers_us, &mut mark);
        // Accept last: the drives and expiries above may have freed
        // slots, so the gate decision below sees this iteration's
        // final occupancy.
        // (`listener` is already `None` by drain entry, so a draining
        // shard can neither re-arm nor accept here.)
        if let Some(l) = &listener {
            if !listener_armed && ctx.live_conns < ctx.cfg.max_conns_per_shard {
                // Re-arm: `modify` redelivers a still-pending backlog
                // as a fresh readiness event (ET contract), and the
                // level-triggered backend re-reports it on the next
                // wait — either way the accepts resume without a new
                // connection having to arrive.
                if backend
                    .modify(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                    .is_ok()
                {
                    listener_armed = true;
                }
            } else if accept_ready && listener_armed {
                listener_armed = drain_accepts(l, &mut conns, &mut ctx, &mut *backend, &mut wheel);
            }
        }
        lap(&ctx.core.stats.phase_accept_us, &mut mark);
        // Flush this iteration's access records in one append, then
        // close the watchdog ledger: everything since the wait
        // returned was time the event loop spent NOT listening — the
        // one quantity AMPED exists to keep small.
        if let Some(w) = access_log.as_mut() {
            w.drain(&mut ctx.core.access_log);
        }
        let busy = Instant::now().duration_since(loop_start);
        ctx.core
            .stats
            .loop_stall_max_us
            .fetch_max(busy.as_micros() as u64, Ordering::Relaxed);
        if busy >= stall_threshold {
            ctx.core.stats.loop_stalls.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Adds the time since `*mark` to `counter` and advances the mark —
/// the per-phase ledger behind the event-loop stall watchdog.
fn lap(counter: &std::sync::atomic::AtomicU64, mark: &mut Instant) {
    let now = Instant::now();
    counter.fetch_add(
        now.duration_since(*mark).as_micros() as u64,
        Ordering::Relaxed,
    );
    *mark = now;
}

/// Drains a shard's own listener to `EWOULDBLOCK` under the ET
/// contract, admitting and immediately driving each connection.
/// Stops early — dropping the listener's read interest — at the
/// shard's connection cap or on an accept failure (`EMFILE`/`ENFILE`
/// under fd exhaustion, counted as `accept_backpressure`); pending
/// connections then wait in the kernel backlog (or hash to another
/// shard's listener) until this shard re-arms. Returns whether the
/// listener interest is still armed.
fn drain_accepts(
    listener: &TcpListener,
    conns: &mut Vec<Option<NetConn>>,
    ctx: &mut ShardCtx,
    backend: &mut dyn EventBackend,
    wheel: &mut TimerWheel,
) -> bool {
    loop {
        if ctx.live_conns >= ctx.cfg.max_conns_per_shard {
            return !quiesce_listener(listener, backend);
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if sock::apply_conn_options(&stream).is_err() {
                    continue;
                }
                ctx.core.stats.accepted.fetch_add(1, Ordering::Relaxed);
                admit_conn(stream, conns, ctx, backend, wheel);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            // A connection that died while queued in the backlog is
            // not backpressure — skip it and keep draining. Neither is
            // a signal landing mid-accept: retry immediately.
            Err(ref e)
                if e.kind() == io::ErrorKind::ConnectionAborted
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => {
                // EMFILE/ENFILE (or another persistent failure):
                // accepting again immediately would fail immediately.
                // Count it and back off; the shard loop retries on the
                // ACCEPT_RETRY_MS cadence and on every freed slot.
                ctx.core
                    .stats
                    .accept_backpressure
                    .fetch_add(1, Ordering::Relaxed);
                return !quiesce_listener(listener, backend);
            }
        }
    }
}

/// Drops a listener's read interest (keeping the registration).
/// Returns whether the interest was actually dropped — if the
/// `modify` itself fails the listener stays armed and accepting simply
/// retries on the next event.
fn quiesce_listener(listener: &TcpListener, backend: &mut dyn EventBackend) -> bool {
    backend
        .modify(listener.as_raw_fd(), LISTENER_TOKEN, Interest::NONE)
        .is_ok()
}

/// Flips a shard into drain: the listener's read interest is dropped
/// for good (its backlog belongs to whoever holds the handoff dup),
/// and **idle** keep-alive connections — parked between requests with
/// nothing buffered, nothing queued, and at least one response already
/// delivered — are closed at once instead of waiting out their idle
/// timeout. Everything else (mid-request, pipelined bytes buffered,
/// response in flight, or so fresh no response has been produced yet)
/// is left to finish under the drain deadline.
fn enter_drain(
    conns: &mut [Option<NetConn>],
    ctx: &mut ShardCtx,
    backend: &mut dyn EventBackend,
    wheel: &mut TimerWheel,
) {
    ctx.core.begin_drain();
    for idx in 0..conns.len() {
        let reading = conns[idx]
            .as_ref()
            .is_some_and(|c| matches!(c.state, ConnState::Reading));
        if !reading {
            continue;
        }
        // Drive before judging: a pipelined burst already sitting in
        // the socket buffer has not reached the parser yet, and a
        // connection must not be severed with honourable requests in
        // its receive queue. The drive reads to EWOULDBLOCK and — with
        // `draining` already set — closes the connection itself after
        // its final response goes out.
        drive_and_sync(idx, conns, ctx, backend, wheel);
        let Some(conn) = conns[idx].as_ref() else {
            continue;
        };
        // Still Reading with nothing anywhere after the drive: a
        // genuinely idle keep-alive (at least one response served) —
        // close it now rather than waiting out its idle timeout. A
        // fresh connection (no response yet) keeps its grace to send
        // the request it connected for.
        let idle = matches!(conn.state, ConnState::Reading)
            && conn.parser.buffered() == 0
            && conn.out.is_empty()
            && conn.sendfile.is_none()
            && conn.progress > 0;
        if idle {
            let fd = conn.io.stream.as_raw_fd();
            ctx.core.note_close(conn, Instant::now());
            let _ = backend.deregister(fd);
            wheel.cancel(conn_token(idx, fd));
            conns[idx] = None;
            ctx.live_conns = ctx.live_conns.saturating_sub(1);
            ctx.core.stats.drained_conns.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Places a freshly dealt connection in a slot, registers it with the
/// backend, and drives it immediately — its request bytes are usually
/// in flight already, so waiting for the first readiness event would
/// add a wait's latency for nothing.
fn admit_conn(
    stream: TcpStream,
    conns: &mut Vec<Option<NetConn>>,
    ctx: &mut ShardCtx,
    backend: &mut dyn EventBackend,
    wheel: &mut TimerWheel,
) {
    let fd = stream.as_raw_fd();
    let mut conn = Conn::new(SockIo { stream });
    conn.opened_at = Some(Instant::now());
    let idx = match conns.iter_mut().position(|c| c.is_none()) {
        Some(i) => {
            conns[i] = Some(conn);
            i
        }
        None => {
            conns.push(Some(conn));
            conns.len() - 1
        }
    };
    if backend
        .register(fd, conn_token(idx, fd), Interest::READ)
        .is_err()
    {
        // A connection the backend cannot watch can never progress.
        conns[idx] = None;
        return;
    }
    ctx.live_conns += 1;
    drive_and_sync(idx, conns, ctx, backend, wheel);
}

/// Drives one connection, then reconciles the backend *and* the
/// timing wheel with the result: deregisters and disarms a closed
/// connection, re-arms interest when the state machine moved, syncs
/// the per-state deadline, and forces an edge re-check after a
/// voluntary yield.
fn drive_and_sync(
    idx: usize,
    conns: &mut [Option<NetConn>],
    ctx: &mut ShardCtx,
    backend: &mut dyn EventBackend,
    wheel: &mut TimerWheel,
) {
    let Some(fd) = conns
        .get(idx)
        .and_then(|c| c.as_ref())
        .map(|c| c.io.stream.as_raw_fd())
    else {
        return;
    };
    let outcome = ctx
        .core
        .drive_conn(idx, conns, &mut ctx.port, Instant::now());
    let token = conn_token(idx, fd);
    match conns.get(idx).and_then(|c| c.as_ref()) {
        None => {
            // Deregister even though close() would eventually unhook
            // it: the poll backend keeps a userspace table that would
            // otherwise hand a recycled fd number to the kernel. The
            // wheel entry must go for the same reason — the token will
            // be reminted when the slot is reused.
            let _ = backend.deregister(fd);
            wheel.cancel(token);
            ctx.live_conns = ctx.live_conns.saturating_sub(1);
        }
        Some(conn) => {
            let want = crate::conn::machine::desired_interest(&conn.state);
            if want != conn.interest {
                if backend.modify(fd, token, want).is_ok() {
                    if let Some(c) = conns[idx].as_mut() {
                        c.interest = want;
                    }
                } else {
                    // Unwatchable means unreachable: drop it. If it
                    // just went Waiting, its waiter index must go too —
                    // the inbound helper completion would otherwise be
                    // served to whatever connection reuses the slot.
                    ctx.core.note_close(conn, Instant::now());
                    conns[idx] = None;
                    let _ = backend.deregister(fd);
                    wheel.cancel(token);
                    ctx.live_conns = ctx.live_conns.saturating_sub(1);
                    if want == Interest::NONE {
                        ctx.core.purge_waiter(idx);
                    }
                    return;
                }
            } else if matches!(outcome, Drive::Yielded) && backend.rearm(fd, token, want).is_err() {
                // A consumed edge that cannot be re-armed is a
                // permanent stall under ET: the connection can never
                // progress, so close it rather than pin its fd and
                // slot forever.
                ctx.core.note_close(conn, Instant::now());
                conns[idx] = None;
                let _ = backend.deregister(fd);
                wheel.cancel(token);
                ctx.live_conns = ctx.live_conns.saturating_sub(1);
                return;
            }
            if let Some(conn) = conns[idx].as_mut() {
                sync_deadline(conn, token, &ctx.core.cfg, wheel, Instant::now());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Variant;
    use crate::conn::JobKind;

    #[test]
    fn default_event_loops_bounded() {
        let n = default_event_loops();
        assert!((1..=8).contains(&n));
    }

    #[test]
    fn conn_token_roundtrips_slot_and_fd() {
        for (slot, fd) in [(0usize, 0), (3, 17), (100_000, 1023), (1, i32::MAX)] {
            let t = conn_token(slot, fd);
            assert_eq!(token_slot(t), slot);
            assert_eq!(token_fd(t), fd);
            assert_ne!(t, WAKE_TOKEN);
        }
    }

    fn job_for(shard: usize) -> Job {
        Job {
            shard,
            job: HelperJob {
                path: format!("/{shard}"),
                fs_path: PathBuf::new(),
                kind: JobKind::Load,
                variant: Variant::Identity,
                inline_max: u64::MAX,
                epoch: 0,
                token: 0,
                cancel: Arc::new(AtomicBool::new(false)),
            },
        }
    }

    #[test]
    fn job_queue_rotates_across_shards() {
        let q = JobQueue::new(3);
        // Shard 0 floods its lane; shard 2 queues two jobs.
        for _ in 0..4 {
            q.push(job_for(0));
        }
        q.push(job_for(2));
        q.push(job_for(2));
        let mut order = Vec::new();
        {
            let mut lanes = q.lanes.lock().unwrap();
            while let Some(job) = pop_round_robin(&mut lanes) {
                order.push(job.shard);
            }
        }
        // Rotation bounds shard 0's head-of-line damage to one job per
        // visit: the starved shard is served every other pop, not
        // after the whole backlog.
        assert_eq!(order, vec![0, 2, 0, 2, 0, 0]);
    }

    #[test]
    fn job_queue_preserves_fifo_within_a_shard() {
        let q = JobQueue::new(2);
        for i in 0..3 {
            q.push(Job {
                shard: 0,
                job: HelperJob {
                    path: format!("/a{i}"),
                    fs_path: PathBuf::new(),
                    kind: JobKind::Load,
                    variant: Variant::Identity,
                    inline_max: u64::MAX,
                    epoch: 0,
                    token: i as u64,
                    cancel: Arc::new(AtomicBool::new(false)),
                },
            });
        }
        let mut lanes = q.lanes.lock().unwrap();
        let paths: Vec<String> = std::iter::from_fn(|| pop_round_robin(&mut lanes))
            .map(|j| j.job.path)
            .collect();
        assert_eq!(paths, vec!["/a0", "/a1", "/a2"]);
    }

    #[test]
    fn job_queue_close_releases_poppers() {
        let q = JobQueue::new(1);
        q.push(job_for(0));
        q.close();
        // Closed but not drained: the queued job still comes out...
        assert!(q.pop().is_some());
        // ...then pops end instead of blocking forever.
        assert!(q.pop().is_none());
        // And pushes after close are refused.
        q.push(job_for(0));
        assert!(q.pop().is_none());
    }
}
